//! Offline stand-in for `criterion`: the same macro and builder API shape
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `Bencher::iter`), backed by a
//! simple wall-clock harness instead of criterion's statistical machinery.
//!
//! Each benchmark warms up briefly, then runs `sample_size` samples of auto-scaled iteration
//! batches within the configured measurement time and reports the median, minimum and maximum
//! nanoseconds per iteration on stdout.  Good enough to (re)generate the order-of-magnitude
//! rows in `EXPERIMENTS.md`; restore crates.io criterion (one line in the root `Cargo.toml`)
//! when publication-grade statistics are needed.

use std::fmt::{self, Display};
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked work.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Entry point handed to every benchmark function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(name, f);
    }
}

/// A benchmark identifier: a function name, a bare parameter, or both.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter, rendered `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { label: format!("{}/{parameter}", name.into()) }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the time budget for the measurement phase.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the time budget for the warm-up phase.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    fn run<F>(&self, label: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full_name =
            if self.name.is_empty() { label.to_string() } else { format!("{}/{label}", self.name) };
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&full_name);
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), f);
        self
    }

    /// Runs a benchmark that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (printing happens per-benchmark; this exists for API parity).
    pub fn finish(&mut self) {}
}

/// Drives timed iterations of one benchmark routine.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<R, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> R,
    {
        // Warm-up, and estimate the cost of one iteration as we go.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || iters == 0 {
            std_black_box(routine());
            iters += 1;
            if iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters as f64;

        // Scale the batch so that sample_size samples fit the measurement budget.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            self.samples_ns.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Times `routine` on a fresh value from `setup`; only `routine` is measured.
    pub fn iter_with_setup<I, R, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        // Setup can be expensive, so measure one routine call per sample.
        let warm_deadline = Instant::now() + self.warm_up_time;
        loop {
            let input = setup();
            std_black_box(routine(input));
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        self.samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples_ns[self.samples_ns.len() / 2];
        let min = self.samples_ns[0];
        let max = self.samples_ns[self.samples_ns.len() - 1];
        println!(
            "{name:<50} median {}  (min {}, max {}, {} samples)",
            format_ns(median),
            format_ns(min),
            format_ns(max),
            self.samples_ns.len()
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.2} s ", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, like `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, like `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(30));
        group.warm_up_time(Duration::from_millis(5));
        let mut ran = false;
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn iter_with_setup_only_times_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("setup");
        group.sample_size(2);
        group.warm_up_time(Duration::from_millis(1));
        group.bench_with_input(BenchmarkId::new("vec", 8), &8usize, |b, &n| {
            b.iter_with_setup(|| vec![1u8; n], |v| v.len());
        });
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("seed", 40).to_string(), "seed/40");
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
    }
}
