//! Persistence of a whole database through the `seed-storage` engine.
//!
//! The database is serialized with the storage crate's binary codec into a handful of keys
//! (`schema`, `objects`, `relationships`, `inherits`, `versions`, `meta`) written in a single
//! storage transaction, so a crash during save never leaves a half-written database; the engine
//! then checkpoints.  Loading rebuilds the schema registry, the data store and the version
//! manager from those blobs.

use std::path::Path;

use seed_schema::{
    AssociationId, AttachedProcedure, Cardinality, ClassId, Domain, RelationshipAttribute, Role,
    Schema, SchemaRegistry,
};
use seed_storage::{Decoder, Encoder, StorageEngine};

use crate::database::Database;
use crate::error::{SeedError, SeedResult};
use crate::history::TransitionRule;
use crate::ident::{ItemId, ObjectId, RelationshipId, VersionId};
use crate::name::ObjectName;
use crate::object::ObjectRecord;
use crate::relationship::RelationshipRecord;
use crate::store::DataStore;
use crate::value::Value;
use crate::version::{ItemSnapshot, VersionInfo, VersionManager};

// --------------------------------------------------------------------------------------------
// Value encoding
// --------------------------------------------------------------------------------------------

fn encode_value(e: &mut Encoder, v: &Value) {
    match v {
        Value::String(s) => {
            e.put_u8(0).put_str(s);
        }
        Value::Integer(i) => {
            e.put_u8(1).put_i64(*i);
        }
        Value::Real(r) => {
            e.put_u8(2).put_f64(*r);
        }
        Value::Boolean(b) => {
            e.put_u8(3).put_bool(*b);
        }
        Value::Date { year, month, day } => {
            e.put_u8(4).put_i64(*year as i64).put_u8(*month).put_u8(*day);
        }
        Value::Symbol(s) => {
            e.put_u8(5).put_str(s);
        }
        Value::Text(s) => {
            e.put_u8(6).put_str(s);
        }
        Value::Undefined => {
            e.put_u8(7);
        }
    }
}

fn decode_value(d: &mut Decoder<'_>) -> SeedResult<Value> {
    Ok(match d.get_u8()? {
        0 => Value::String(d.get_str()?.to_string()),
        1 => Value::Integer(d.get_i64()?),
        2 => Value::Real(d.get_f64()?),
        3 => Value::Boolean(d.get_bool()?),
        4 => Value::Date { year: d.get_i64()? as i32, month: d.get_u8()?, day: d.get_u8()? },
        5 => Value::Symbol(d.get_str()?.to_string()),
        6 => Value::Text(d.get_str()?.to_string()),
        7 => Value::Undefined,
        other => return Err(SeedError::Invalid(format!("unknown value tag {other}"))),
    })
}

// --------------------------------------------------------------------------------------------
// Domain / cardinality / procedure encoding
// --------------------------------------------------------------------------------------------

fn encode_domain(e: &mut Encoder, d: &Domain) {
    match d {
        Domain::String => {
            e.put_u8(0);
        }
        Domain::Integer => {
            e.put_u8(1);
        }
        Domain::Real => {
            e.put_u8(2);
        }
        Domain::Boolean => {
            e.put_u8(3);
        }
        Domain::Date => {
            e.put_u8(4);
        }
        Domain::Text => {
            e.put_u8(5);
        }
        Domain::Enumeration(lits) => {
            e.put_u8(6).put_varint(lits.len() as u64);
            for lit in lits {
                e.put_str(lit);
            }
        }
    }
}

fn decode_domain(d: &mut Decoder<'_>) -> SeedResult<Domain> {
    Ok(match d.get_u8()? {
        0 => Domain::String,
        1 => Domain::Integer,
        2 => Domain::Real,
        3 => Domain::Boolean,
        4 => Domain::Date,
        5 => Domain::Text,
        6 => {
            let n = d.get_varint()? as usize;
            let mut lits = Vec::with_capacity(n);
            for _ in 0..n {
                lits.push(d.get_str()?.to_string());
            }
            Domain::Enumeration(lits)
        }
        other => return Err(SeedError::Invalid(format!("unknown domain tag {other}"))),
    })
}

fn encode_cardinality(e: &mut Encoder, c: &Cardinality) {
    e.put_u32(c.min);
    match c.max {
        Some(m) => {
            e.put_bool(true).put_u32(m);
        }
        None => {
            e.put_bool(false);
        }
    }
}

fn decode_cardinality(d: &mut Decoder<'_>) -> SeedResult<Cardinality> {
    let min = d.get_u32()?;
    let max = if d.get_bool()? { Some(d.get_u32()?) } else { None };
    Cardinality::new(min, max).map_err(SeedError::from)
}

fn encode_procedure(e: &mut Encoder, p: &AttachedProcedure) {
    match p {
        AttachedProcedure::ValueRange { min, max } => {
            e.put_u8(0);
            match min {
                Some(v) => {
                    e.put_bool(true).put_i64(*v);
                }
                None => {
                    e.put_bool(false);
                }
            }
            match max {
                Some(v) => {
                    e.put_bool(true).put_i64(*v);
                }
                None => {
                    e.put_bool(false);
                }
            }
        }
        AttachedProcedure::ValueNotEmpty => {
            e.put_u8(1);
        }
        AttachedProcedure::ValueContains(s) => {
            e.put_u8(2).put_str(s);
        }
        AttachedProcedure::MaxLength(n) => {
            e.put_u8(3).put_varint(*n as u64);
        }
        AttachedProcedure::Named(s) => {
            e.put_u8(4).put_str(s);
        }
    }
}

fn decode_procedure(d: &mut Decoder<'_>) -> SeedResult<AttachedProcedure> {
    Ok(match d.get_u8()? {
        0 => {
            let min = if d.get_bool()? { Some(d.get_i64()?) } else { None };
            let max = if d.get_bool()? { Some(d.get_i64()?) } else { None };
            AttachedProcedure::ValueRange { min, max }
        }
        1 => AttachedProcedure::ValueNotEmpty,
        2 => AttachedProcedure::ValueContains(d.get_str()?.to_string()),
        3 => AttachedProcedure::MaxLength(d.get_varint()? as usize),
        4 => AttachedProcedure::Named(d.get_str()?.to_string()),
        other => return Err(SeedError::Invalid(format!("unknown procedure tag {other}"))),
    })
}

// --------------------------------------------------------------------------------------------
// Schema encoding
// --------------------------------------------------------------------------------------------

fn encode_schema(e: &mut Encoder, schema: &Schema) {
    e.put_str(&schema.name);
    e.put_varint(schema.class_count() as u64);
    for class in schema.classes() {
        e.put_str(&class.name);
        match class.owner {
            Some(o) => {
                e.put_bool(true).put_u32(o.0);
            }
            None => {
                e.put_bool(false);
            }
        }
        encode_cardinality(e, &class.occurrence);
        match &class.domain {
            Some(d) => {
                e.put_bool(true);
                encode_domain(e, d);
            }
            None => {
                e.put_bool(false);
            }
        }
        match class.superclass {
            Some(s) => {
                e.put_bool(true).put_u32(s.0);
            }
            None => {
                e.put_bool(false);
            }
        }
        e.put_bool(class.covering);
        e.put_varint(class.procedures.len() as u64);
        for p in &class.procedures {
            encode_procedure(e, p);
        }
    }
    e.put_varint(schema.association_count() as u64);
    for assoc in schema.associations() {
        e.put_str(&assoc.name);
        e.put_varint(assoc.roles.len() as u64);
        for role in &assoc.roles {
            e.put_str(&role.name).put_u32(role.class.0);
            encode_cardinality(e, &role.cardinality);
        }
        e.put_bool(assoc.acyclic);
        match assoc.superassociation {
            Some(s) => {
                e.put_bool(true).put_u32(s.0);
            }
            None => {
                e.put_bool(false);
            }
        }
        e.put_bool(assoc.covering);
        e.put_varint(assoc.procedures.len() as u64);
        for p in &assoc.procedures {
            encode_procedure(e, p);
        }
        e.put_varint(assoc.attributes.len() as u64);
        for attr in &assoc.attributes {
            e.put_str(&attr.name);
            encode_domain(e, &attr.domain);
            e.put_bool(attr.required);
        }
    }
}

fn decode_schema(d: &mut Decoder<'_>) -> SeedResult<Schema> {
    let name = d.get_str()?.to_string();
    let mut schema = Schema::new(name);
    let class_count = d.get_varint()? as usize;
    struct PendingClass {
        superclass: Option<u32>,
        covering: bool,
        procedures: Vec<AttachedProcedure>,
    }
    let mut pending_classes = Vec::with_capacity(class_count);
    for _ in 0..class_count {
        let name = d.get_str()?.to_string();
        let owner = if d.get_bool()? { Some(ClassId(d.get_u32()?)) } else { None };
        let occurrence = decode_cardinality(d)?;
        let domain = if d.get_bool()? { Some(decode_domain(d)?) } else { None };
        let superclass = if d.get_bool()? { Some(d.get_u32()?) } else { None };
        let covering = d.get_bool()?;
        let proc_count = d.get_varint()? as usize;
        let mut procedures = Vec::with_capacity(proc_count);
        for _ in 0..proc_count {
            procedures.push(decode_procedure(d)?);
        }
        // Classes are encoded in id order, so re-adding them in order reproduces the ids.
        schema.add_class_full(name, owner, occurrence, domain)?;
        pending_classes.push(PendingClass { superclass, covering, procedures });
    }
    for (idx, pending) in pending_classes.into_iter().enumerate() {
        let id = ClassId(idx as u32);
        if let Some(sup) = pending.superclass {
            schema.set_superclass(id, ClassId(sup))?;
        }
        if pending.covering {
            schema.set_class_covering(id, true)?;
        }
        for p in pending.procedures {
            schema.attach_class_procedure(id, p)?;
        }
    }

    let assoc_count = d.get_varint()? as usize;
    struct PendingAssoc {
        superassociation: Option<u32>,
        covering: bool,
        procedures: Vec<AttachedProcedure>,
        attributes: Vec<RelationshipAttribute>,
    }
    let mut pending_assocs = Vec::with_capacity(assoc_count);
    for _ in 0..assoc_count {
        let name = d.get_str()?.to_string();
        let role_count = d.get_varint()? as usize;
        let mut roles = Vec::with_capacity(role_count);
        for _ in 0..role_count {
            let role_name = d.get_str()?.to_string();
            let class = ClassId(d.get_u32()?);
            let cardinality = decode_cardinality(d)?;
            roles.push(Role::new(role_name, class, cardinality));
        }
        let acyclic = d.get_bool()?;
        let superassociation = if d.get_bool()? { Some(d.get_u32()?) } else { None };
        let covering = d.get_bool()?;
        let proc_count = d.get_varint()? as usize;
        let mut procedures = Vec::with_capacity(proc_count);
        for _ in 0..proc_count {
            procedures.push(decode_procedure(d)?);
        }
        let attr_count = d.get_varint()? as usize;
        let mut attributes = Vec::with_capacity(attr_count);
        for _ in 0..attr_count {
            let attr_name = d.get_str()?.to_string();
            let domain = decode_domain(d)?;
            let required = d.get_bool()?;
            attributes.push(RelationshipAttribute::new(attr_name, domain, required));
        }
        schema.add_association(name, roles, acyclic)?;
        pending_assocs.push(PendingAssoc { superassociation, covering, procedures, attributes });
    }
    for (idx, pending) in pending_assocs.into_iter().enumerate() {
        let id = AssociationId(idx as u32);
        if let Some(sup) = pending.superassociation {
            schema.set_superassociation(id, AssociationId(sup))?;
        }
        if pending.covering {
            schema.set_association_covering(id, true)?;
        }
        for p in pending.procedures {
            schema.attach_association_procedure(id, p)?;
        }
        for attr in pending.attributes {
            schema.add_relationship_attribute(id, attr)?;
        }
    }
    Ok(schema)
}

// --------------------------------------------------------------------------------------------
// Record encoding
// --------------------------------------------------------------------------------------------

fn encode_object(e: &mut Encoder, o: &ObjectRecord) {
    e.put_u64(o.id.0).put_u32(o.class.0).put_str(&o.name.to_string());
    match o.parent {
        Some(p) => {
            e.put_bool(true).put_u64(p.0);
        }
        None => {
            e.put_bool(false);
        }
    }
    encode_value(e, &o.value);
    e.put_bool(o.is_pattern).put_bool(o.deleted);
}

fn decode_object(d: &mut Decoder<'_>) -> SeedResult<ObjectRecord> {
    let id = ObjectId(d.get_u64()?);
    let class = ClassId(d.get_u32()?);
    let name = ObjectName::parse(d.get_str()?)?;
    let parent = if d.get_bool()? { Some(ObjectId(d.get_u64()?)) } else { None };
    let value = decode_value(d)?;
    let is_pattern = d.get_bool()?;
    let deleted = d.get_bool()?;
    Ok(ObjectRecord { id, class, name, parent, value, is_pattern, deleted })
}

fn encode_relationship(e: &mut Encoder, r: &RelationshipRecord) {
    e.put_u64(r.id.0).put_u32(r.association.0);
    e.put_varint(r.bindings.len() as u64);
    for (role, obj) in &r.bindings {
        e.put_str(role).put_u64(obj.0);
    }
    e.put_varint(r.attributes.len() as u64);
    for (name, value) in &r.attributes {
        e.put_str(name);
        encode_value(e, value);
    }
    e.put_bool(r.is_pattern).put_bool(r.deleted);
}

fn decode_relationship(d: &mut Decoder<'_>) -> SeedResult<RelationshipRecord> {
    let id = RelationshipId(d.get_u64()?);
    let association = AssociationId(d.get_u32()?);
    let binding_count = d.get_varint()? as usize;
    let mut bindings = Vec::with_capacity(binding_count);
    for _ in 0..binding_count {
        let role = d.get_str()?.to_string();
        let obj = ObjectId(d.get_u64()?);
        bindings.push((role, obj));
    }
    let attr_count = d.get_varint()? as usize;
    let mut record = RelationshipRecord::new(id, association, bindings);
    for _ in 0..attr_count {
        let name = d.get_str()?.to_string();
        let value = decode_value(d)?;
        record.attributes.insert(name, value);
    }
    record.is_pattern = d.get_bool()?;
    record.deleted = d.get_bool()?;
    Ok(record)
}

fn encode_item_id(e: &mut Encoder, item: &ItemId) {
    match item {
        ItemId::Object(o) => {
            e.put_u8(0).put_u64(o.0);
        }
        ItemId::Relationship(r) => {
            e.put_u8(1).put_u64(r.0);
        }
    }
}

fn decode_item_id(d: &mut Decoder<'_>) -> SeedResult<ItemId> {
    Ok(match d.get_u8()? {
        0 => ItemId::Object(ObjectId(d.get_u64()?)),
        1 => ItemId::Relationship(RelationshipId(d.get_u64()?)),
        other => return Err(SeedError::Invalid(format!("unknown item tag {other}"))),
    })
}

fn encode_transition_rule(e: &mut Encoder, rule: &TransitionRule) {
    match rule {
        TransitionRule::NoDeletions => {
            e.put_u8(0);
        }
        TransitionRule::FrozenValues { class } => {
            e.put_u8(1).put_str(class);
        }
        TransitionRule::MonotonicValue { class } => {
            e.put_u8(2).put_str(class);
        }
        TransitionRule::MustDiffer => {
            e.put_u8(3);
        }
    }
}

fn decode_transition_rule(d: &mut Decoder<'_>) -> SeedResult<TransitionRule> {
    Ok(match d.get_u8()? {
        0 => TransitionRule::NoDeletions,
        1 => TransitionRule::FrozenValues { class: d.get_str()?.to_string() },
        2 => TransitionRule::MonotonicValue { class: d.get_str()?.to_string() },
        3 => TransitionRule::MustDiffer,
        other => return Err(SeedError::Invalid(format!("unknown transition-rule tag {other}"))),
    })
}

// --------------------------------------------------------------------------------------------
// Whole-database save / load
// --------------------------------------------------------------------------------------------

/// Saves the database into an open storage engine (single transaction + checkpoint).
pub fn save(db: &Database, engine: &StorageEngine) -> SeedResult<()> {
    let (schemas, store, versions, rules) = db.parts();

    // Schema registry.
    let mut schema_blob = Encoder::new();
    let version_ids = schemas.version_ids();
    schema_blob.put_varint(version_ids.len() as u64);
    schema_blob.put_u32(schemas.current_id().0);
    for vid in &version_ids {
        schema_blob.put_u32(vid.0);
        encode_schema(&mut schema_blob, schemas.get(*vid)?);
    }

    // Objects and relationships (everything, tombstones included).
    let mut objects_blob = Encoder::new();
    let mut objects: Vec<&ObjectRecord> = store.all_objects().collect();
    objects.sort_by_key(|o| o.id);
    objects_blob.put_varint(objects.len() as u64);
    for o in objects {
        encode_object(&mut objects_blob, o);
    }
    let mut rels_blob = Encoder::new();
    let mut rels: Vec<&RelationshipRecord> = store.all_relationships().collect();
    rels.sort_by_key(|r| r.id);
    rels_blob.put_varint(rels.len() as u64);
    for r in rels {
        encode_relationship(&mut rels_blob, r);
    }

    // Inherits links.
    let mut inherits_blob = Encoder::new();
    let links = store.all_inherits_links();
    inherits_blob.put_varint(links.len() as u64);
    for (inheritor, pattern) in links {
        inherits_blob.put_u64(inheritor.0).put_u64(pattern.0);
    }

    // Version manager.
    let mut versions_blob = Encoder::new();
    let (infos, histories, last_created, seq) = versions.export_state();
    versions_blob.put_varint(infos.len() as u64);
    for info in &infos {
        versions_blob.put_str(&info.id.to_string());
        match &info.parent {
            Some(p) => {
                versions_blob.put_bool(true).put_str(&p.to_string());
            }
            None => {
                versions_blob.put_bool(false);
            }
        }
        versions_blob.put_u32(info.schema_version.0);
        versions_blob.put_str(&info.comment);
        versions_blob.put_u64(info.seq);
        versions_blob.put_varint(info.delta_size as u64);
    }
    versions_blob.put_varint(histories.len() as u64);
    for (item, entries) in &histories {
        encode_item_id(&mut versions_blob, item);
        versions_blob.put_varint(entries.len() as u64);
        for (version, snapshot) in entries {
            versions_blob.put_str(&version.to_string());
            match snapshot {
                ItemSnapshot::Object(o) => {
                    versions_blob.put_u8(0);
                    encode_object(&mut versions_blob, o);
                }
                ItemSnapshot::Relationship(r) => {
                    versions_blob.put_u8(1);
                    encode_relationship(&mut versions_blob, r);
                }
            }
        }
    }
    match &last_created {
        Some(v) => {
            versions_blob.put_bool(true).put_str(&v.to_string());
        }
        None => {
            versions_blob.put_bool(false);
        }
    }
    versions_blob.put_u64(seq);

    // Meta: id floors, dirty set, transition rules.
    let mut meta_blob = Encoder::new();
    let (obj_floor, rel_floor) = store.id_floor();
    meta_blob.put_u64(obj_floor).put_u64(rel_floor);
    let dirty: Vec<ItemId> = {
        let mut d: Vec<ItemId> = store.dirty_items().iter().copied().collect();
        d.sort();
        d
    };
    meta_blob.put_varint(dirty.len() as u64);
    for item in &dirty {
        encode_item_id(&mut meta_blob, item);
    }
    meta_blob.put_varint(rules.len() as u64);
    for rule in rules {
        encode_transition_rule(&mut meta_blob, rule);
    }

    let txn = engine.begin()?;
    engine.txn_put(txn, b"seed/schema", schema_blob.as_slice())?;
    engine.txn_put(txn, b"seed/objects", objects_blob.as_slice())?;
    engine.txn_put(txn, b"seed/relationships", rels_blob.as_slice())?;
    engine.txn_put(txn, b"seed/inherits", inherits_blob.as_slice())?;
    engine.txn_put(txn, b"seed/versions", versions_blob.as_slice())?;
    engine.txn_put(txn, b"seed/meta", meta_blob.as_slice())?;
    engine.commit(txn)?;
    engine.checkpoint()?;
    Ok(())
}

/// Loads a database from an open storage engine.
pub fn load(engine: &StorageEngine) -> SeedResult<Database> {
    let get = |key: &[u8]| -> SeedResult<Vec<u8>> {
        engine.get(key)?.ok_or_else(|| {
            SeedError::NotFound(format!("missing key {}", String::from_utf8_lossy(key)))
        })
    };

    // Schema registry.
    let schema_bytes = get(b"seed/schema")?;
    let mut d = Decoder::new(&schema_bytes);
    let version_count = d.get_varint()? as usize;
    let current = d.get_u32()?;
    let mut schemas_list = Vec::with_capacity(version_count);
    for _ in 0..version_count {
        let _vid = d.get_u32()?;
        schemas_list.push(decode_schema(&mut d)?);
    }
    if schemas_list.is_empty() {
        return Err(SeedError::Invalid("persisted database has no schema".to_string()));
    }
    let mut iter = schemas_list.into_iter();
    let mut registry = SchemaRegistry::new(iter.next().expect("non-empty"));
    for schema in iter {
        registry.publish(schema);
    }
    registry.select(seed_schema::SchemaVersionId(current))?;

    // Data store.
    let mut store = DataStore::new();
    let object_bytes = get(b"seed/objects")?;
    let mut d = Decoder::new(&object_bytes);
    let count = d.get_varint()? as usize;
    for _ in 0..count {
        store.insert_object(decode_object(&mut d)?);
    }
    let rel_bytes = get(b"seed/relationships")?;
    let mut d = Decoder::new(&rel_bytes);
    let count = d.get_varint()? as usize;
    for _ in 0..count {
        store.insert_relationship(decode_relationship(&mut d)?);
    }
    let inherits_bytes = get(b"seed/inherits")?;
    let mut d = Decoder::new(&inherits_bytes);
    let count = d.get_varint()? as usize;
    for _ in 0..count {
        let inheritor = ObjectId(d.get_u64()?);
        let pattern = ObjectId(d.get_u64()?);
        store.add_inherits(inheritor, pattern);
    }

    // Version manager.
    let version_bytes = get(b"seed/versions")?;
    let mut d = Decoder::new(&version_bytes);
    let info_count = d.get_varint()? as usize;
    let mut infos = Vec::with_capacity(info_count);
    for _ in 0..info_count {
        let id = VersionId::parse(d.get_str()?)?;
        let parent = if d.get_bool()? { Some(VersionId::parse(d.get_str()?)?) } else { None };
        let schema_version = seed_schema::SchemaVersionId(d.get_u32()?);
        let comment = d.get_str()?.to_string();
        let seq = d.get_u64()?;
        let delta_size = d.get_varint()? as usize;
        infos.push(VersionInfo { id, parent, schema_version, comment, seq, delta_size });
    }
    let history_count = d.get_varint()? as usize;
    let mut histories = Vec::with_capacity(history_count);
    for _ in 0..history_count {
        let item = decode_item_id(&mut d)?;
        let entry_count = d.get_varint()? as usize;
        let mut entries = Vec::with_capacity(entry_count);
        for _ in 0..entry_count {
            let version = VersionId::parse(d.get_str()?)?;
            let snapshot = match d.get_u8()? {
                0 => ItemSnapshot::Object(decode_object(&mut d)?),
                1 => ItemSnapshot::Relationship(decode_relationship(&mut d)?),
                other => return Err(SeedError::Invalid(format!("unknown snapshot tag {other}"))),
            };
            entries.push((version, snapshot));
        }
        histories.push((item, entries));
    }
    let last_created = if d.get_bool()? { Some(VersionId::parse(d.get_str()?)?) } else { None };
    let seq = d.get_u64()?;
    let versions = VersionManager::from_state(infos, histories, last_created, seq);

    // Meta.
    let meta_bytes = get(b"seed/meta")?;
    let mut d = Decoder::new(&meta_bytes);
    let obj_floor = d.get_u64()?;
    let rel_floor = d.get_u64()?;
    store.raise_id_floor(obj_floor, rel_floor);
    // Dirty set: loading re-marked everything dirty through the inserts above; restore the
    // persisted dirty set instead so the next version snapshot stays a true delta.
    store.clear_dirty();
    let dirty_count = d.get_varint()? as usize;
    let mut dirty = Vec::with_capacity(dirty_count);
    for _ in 0..dirty_count {
        dirty.push(decode_item_id(&mut d)?);
    }
    store.mark_dirty_bulk(&dirty);
    let rule_count = d.get_varint()? as usize;
    let mut rules = Vec::with_capacity(rule_count);
    for _ in 0..rule_count {
        rules.push(decode_transition_rule(&mut d)?);
    }

    Ok(Database::from_parts(registry, store, versions, rules))
}

/// Saves a database into a directory (creating or reusing the storage engine files there).
pub fn save_dir(db: &Database, dir: impl AsRef<Path>) -> SeedResult<()> {
    let engine = StorageEngine::open(dir)?;
    save(db, &engine)?;
    engine.close()?;
    Ok(())
}

/// Loads a database from a directory written by [`save_dir`].
pub fn load_dir(dir: impl AsRef<Path>) -> SeedResult<Database> {
    let engine = StorageEngine::open(dir)?;
    let db = load(&engine)?;
    engine.close()?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::NameSegment;
    use seed_schema::figure3_schema;

    fn populated_db() -> Database {
        let mut db = Database::new(figure3_schema());
        db.add_transition_rule(TransitionRule::NoDeletions);
        let alarms = db.create_object("Thing", "Alarms").unwrap();
        let sensor = db.create_object("Action", "Sensor").unwrap();
        db.reclassify_object(alarms, "OutputData").unwrap();
        let rel = db
            .create_relationship_with_attributes(
                "Write",
                &[("to", alarms), ("by", sensor)],
                &[
                    ("NumberOfWrites", Value::Integer(2)),
                    ("ErrorHandling", Value::symbol("repeat")),
                ],
            )
            .unwrap();
        let text = db
            .create_dependent_named(alarms, "Text", NameSegment::plain("Text"), Value::Undefined)
            .unwrap();
        db.create_dependent(text, "Selector", Value::string("Representation")).unwrap();
        db.create_version("1.0 release").unwrap();
        db.set_relationship_attribute(rel, "NumberOfWrites", Value::Integer(3)).unwrap();
        let pattern = db.create_pattern_object("Data", "StandardInput").unwrap();
        db.create_pattern_relationship("Access", &[("from", pattern), ("by", sensor)]).unwrap();
        let consumer = db.create_object("Data", "Consumer").unwrap();
        db.inherit_pattern(consumer, pattern).unwrap();
        db
    }

    #[test]
    fn schema_roundtrips_through_binary_encoding() {
        let schema = figure3_schema();
        let mut e = Encoder::new();
        encode_schema(&mut e, &schema);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        let decoded = decode_schema(&mut d).unwrap();
        assert_eq!(decoded, schema);
        assert!(d.is_exhausted());
    }

    #[test]
    fn values_roundtrip() {
        let values = vec![
            Value::string("Alarms"),
            Value::Integer(-9),
            Value::Real(2.5),
            Value::Boolean(true),
            Value::date(1986, 2, 5).unwrap(),
            Value::symbol("repeat"),
            Value::text("long body"),
            Value::Undefined,
        ];
        for v in values {
            let mut e = Encoder::new();
            encode_value(&mut e, &v);
            let bytes = e.finish();
            let mut d = Decoder::new(&bytes);
            assert_eq!(decode_value(&mut d).unwrap(), v);
        }
    }

    #[test]
    fn database_roundtrips_through_engine() {
        let db = populated_db();
        let engine = StorageEngine::in_memory().unwrap();
        save(&db, &engine).unwrap();
        let loaded = load(&engine).unwrap();

        assert_eq!(loaded.schema().name, "Figure3");
        assert_eq!(loaded.object_count(), db.object_count());
        assert_eq!(loaded.relationship_count(), db.relationship_count());
        assert_eq!(loaded.versions().len(), 1);
        assert_eq!(loaded.transition_rules(), db.transition_rules());
        // Data survived.
        let alarms = loaded.object_by_name("Alarms").unwrap();
        assert_eq!(loaded.schema().class(alarms.class).unwrap().name, "OutputData");
        let rels = loaded.relationships(alarms.id);
        assert_eq!(rels.len(), 1);
        assert_eq!(rels[0].record.attributes.get("NumberOfWrites"), Some(&Value::Integer(3)));
        // Patterns and inheritance survived.
        let consumer = loaded.object_by_name("Consumer").unwrap();
        assert_eq!(loaded.inherited_patterns(consumer.id).len(), 1);
        assert_eq!(loaded.relationships(consumer.id).len(), 1);
        // Version view survived.
        let mut loaded = loaded;
        let v10 = VersionId::parse("1.0").unwrap();
        loaded.select_version(Some(v10)).unwrap();
        let old_rel = loaded.relationships(loaded.object_by_name("Alarms").unwrap().id);
        assert_eq!(old_rel[0].record.attributes.get("NumberOfWrites"), Some(&Value::Integer(2)));
    }

    #[test]
    fn directory_roundtrip() {
        let dir = std::env::temp_dir().join(format!("seed-persist-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = populated_db();
        db.save_to_dir(&dir).unwrap();
        let loaded = Database::open_dir(&dir).unwrap();
        assert_eq!(loaded.object_count(), db.object_count());
        // New objects after reload continue with fresh ids (no collision with stored ones).
        let mut loaded = loaded;
        let new_id = loaded.create_object("Action", "Display").unwrap();
        assert!(loaded.store().all_objects().filter(|o| o.id == new_id).count() == 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loading_from_empty_engine_fails_cleanly() {
        let engine = StorageEngine::in_memory().unwrap();
        assert!(matches!(load(&engine), Err(SeedError::NotFound(_))));
    }
}
