//! E4 — pattern inheritance: cost of reading the materialized view as the number of inheritors
//! grows, and of establishing new inherits-relationships.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn materialized_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4_materialized_reads");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for inheritors in [10usize, 100, 1000] {
        let (db, _pattern, members) = seed_bench::pattern_with_inheritors(inheritors);
        group.bench_with_input(
            BenchmarkId::from_parameter(inheritors),
            &(db, members),
            |b, (db, members)| {
                b.iter(|| {
                    let mut total = 0usize;
                    for m in members {
                        total += db.relationships(*m).len();
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

fn inheritance_setup(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4_inherit_setup");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for inheritors in [10usize, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(inheritors), &inheritors, |b, &n| {
            b.iter(|| {
                let (db, pattern, members) = seed_bench::pattern_with_inheritors(n);
                (db.inheritors_of(pattern).len(), members.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, materialized_reads, inheritance_setup);
criterion_main!(benches);
