//! Legacy whole-database snapshot persistence (the pre-write-through blob layout).
//!
//! This module serializes the *entire* database into a handful of blob keys (`seed/schema`,
//! `seed/objects`, `seed/relationships`, `seed/inherits`, `seed/versions`, `seed/meta`) written
//! in a single storage transaction.  Durability cost is O(database) per save, which is why new
//! code uses the per-item write-through layer in [`crate::durability`] instead; this module is
//! kept for three reasons:
//!
//! 1. [`Database::save_to_dir`] / [`Database::open_dir`] remain the cheap "export a snapshot"
//!    API (and the baseline the E10 benchmark compares write-through against),
//! 2. [`crate::durability`] detects blob databases on [`Database::open_durable`] and migrates
//!    them to the per-item layout via [`load`],
//! 3. its record encoders are the shared per-item codec in [`crate::codec`].

use std::path::Path;

use seed_schema::SchemaRegistry;
use seed_storage::{Decoder, Encoder, StorageEngine};

use crate::codec::{
    decode_item_id, decode_object, decode_relationship, decode_schema, decode_transition_rule,
    encode_item_id, encode_object, encode_relationship, encode_schema, encode_transition_rule,
};
use crate::database::Database;
use crate::error::{SeedError, SeedResult};
use crate::ident::{ItemId, ObjectId, VersionId};
use crate::object::ObjectRecord;
use crate::relationship::RelationshipRecord;
use crate::store::DataStore;
use crate::version::{ItemSnapshot, VersionInfo, VersionManager};

/// Prefix under which every blob-layout key lives (the migration in [`crate::durability`]
/// deletes the whole prefix).
pub(crate) const BLOB_PREFIX: &[u8] = b"seed/";

/// Blobs larger than one storage record are split into chunks of this size; the blob's main key
/// holds the chunk count and the chunks live under `<key>#<i>`.
const BLOB_CHUNK: usize = 4096;

fn chunk_key(key: &[u8], i: usize) -> Vec<u8> {
    let mut k = key.to_vec();
    k.extend_from_slice(format!("#{i:08}").as_bytes());
    k
}

fn put_blob(
    engine: &StorageEngine,
    txn: seed_storage::TxnId,
    key: &[u8],
    bytes: &[u8],
) -> SeedResult<()> {
    let chunks: Vec<&[u8]> = bytes.chunks(BLOB_CHUNK).collect();
    let mut header = Encoder::new();
    header.put_varint(chunks.len() as u64);
    engine.txn_put(txn, key, header.as_slice())?;
    for (i, chunk) in chunks.iter().enumerate() {
        engine.txn_put(txn, &chunk_key(key, i), chunk)?;
    }
    Ok(())
}

fn get_blob(engine: &StorageEngine, key: &[u8]) -> SeedResult<Vec<u8>> {
    let header = engine.get(key)?.ok_or_else(|| {
        SeedError::NotFound(format!("missing key {}", String::from_utf8_lossy(key)))
    })?;
    // Chunked format: the main key holds exactly one varint (the chunk count).  Anything else
    // is a pre-chunking snapshot where the key holds the raw blob itself — every real blob is
    // longer than its own leading varint, so the two layouts cannot be confused.
    let mut d = Decoder::new(&header);
    let n = match d.get_varint() {
        Ok(n) if d.is_exhausted() => n as usize,
        _ => return Ok(header),
    };
    let mut out = Vec::new();
    for i in 0..n {
        let chunk = engine.get(&chunk_key(key, i))?.ok_or_else(|| {
            SeedError::Invalid(format!(
                "blob {} is missing chunk {i} of {n}",
                String::from_utf8_lossy(key)
            ))
        })?;
        out.extend_from_slice(&chunk);
    }
    Ok(out)
}

/// Saves the database into an open storage engine (single transaction + checkpoint).
pub fn save(db: &Database, engine: &StorageEngine) -> SeedResult<()> {
    let (schemas, store, versions, rules) = db.parts();

    // Schema registry.
    let mut schema_blob = Encoder::new();
    let version_ids = schemas.version_ids();
    schema_blob.put_varint(version_ids.len() as u64);
    schema_blob.put_u32(schemas.current_id().0);
    for vid in &version_ids {
        schema_blob.put_u32(vid.0);
        encode_schema(&mut schema_blob, schemas.get(*vid)?);
    }

    // Objects and relationships (everything, tombstones included).
    let mut objects_blob = Encoder::new();
    let mut objects: Vec<&ObjectRecord> = store.all_objects().collect();
    objects.sort_by_key(|o| o.id);
    objects_blob.put_varint(objects.len() as u64);
    for o in objects {
        encode_object(&mut objects_blob, o);
    }
    let mut rels_blob = Encoder::new();
    let mut rels: Vec<&RelationshipRecord> = store.all_relationships().collect();
    rels.sort_by_key(|r| r.id);
    rels_blob.put_varint(rels.len() as u64);
    for r in rels {
        encode_relationship(&mut rels_blob, r);
    }

    // Inherits links.
    let mut inherits_blob = Encoder::new();
    let links = store.all_inherits_links();
    inherits_blob.put_varint(links.len() as u64);
    for (inheritor, pattern) in links {
        inherits_blob.put_u64(inheritor.0).put_u64(pattern.0);
    }

    // Version manager.
    let mut versions_blob = Encoder::new();
    let (infos, histories, last_created, seq) = versions.export_state();
    versions_blob.put_varint(infos.len() as u64);
    for info in &infos {
        versions_blob.put_str(&info.id.to_string());
        match &info.parent {
            Some(p) => {
                versions_blob.put_bool(true).put_str(&p.to_string());
            }
            None => {
                versions_blob.put_bool(false);
            }
        }
        versions_blob.put_u32(info.schema_version.0);
        versions_blob.put_str(&info.comment);
        versions_blob.put_u64(info.seq);
        versions_blob.put_varint(info.delta_size as u64);
    }
    versions_blob.put_varint(histories.len() as u64);
    for (item, entries) in &histories {
        encode_item_id(&mut versions_blob, item);
        versions_blob.put_varint(entries.len() as u64);
        for (version, snapshot) in entries {
            versions_blob.put_str(&version.to_string());
            match snapshot {
                ItemSnapshot::Object(o) => {
                    versions_blob.put_u8(0);
                    encode_object(&mut versions_blob, o);
                }
                ItemSnapshot::Relationship(r) => {
                    versions_blob.put_u8(1);
                    encode_relationship(&mut versions_blob, r);
                }
            }
        }
    }
    match &last_created {
        Some(v) => {
            versions_blob.put_bool(true).put_str(&v.to_string());
        }
        None => {
            versions_blob.put_bool(false);
        }
    }
    versions_blob.put_u64(seq);

    // Meta: id floors, dirty set, transition rules.
    let mut meta_blob = Encoder::new();
    let (obj_floor, rel_floor) = store.id_floor();
    meta_blob.put_u64(obj_floor).put_u64(rel_floor);
    let dirty: Vec<ItemId> = {
        let mut d: Vec<ItemId> = store.dirty_items().iter().copied().collect();
        d.sort();
        d
    };
    meta_blob.put_varint(dirty.len() as u64);
    for item in &dirty {
        encode_item_id(&mut meta_blob, item);
    }
    meta_blob.put_varint(rules.len() as u64);
    for rule in rules {
        encode_transition_rule(&mut meta_blob, rule);
    }

    let txn = engine.begin()?;
    put_blob(engine, txn, b"seed/schema", schema_blob.as_slice())?;
    put_blob(engine, txn, b"seed/objects", objects_blob.as_slice())?;
    put_blob(engine, txn, b"seed/relationships", rels_blob.as_slice())?;
    put_blob(engine, txn, b"seed/inherits", inherits_blob.as_slice())?;
    put_blob(engine, txn, b"seed/versions", versions_blob.as_slice())?;
    put_blob(engine, txn, b"seed/meta", meta_blob.as_slice())?;
    engine.commit(txn)?;
    engine.checkpoint()?;
    Ok(())
}

/// Loads a database from an open storage engine.
pub fn load(engine: &StorageEngine) -> SeedResult<Database> {
    let get = |key: &[u8]| -> SeedResult<Vec<u8>> { get_blob(engine, key) };

    // Schema registry.
    let schema_bytes = get(b"seed/schema")?;
    let mut d = Decoder::new(&schema_bytes);
    let version_count = d.get_varint()? as usize;
    let current = d.get_u32()?;
    let mut schemas_list = Vec::with_capacity(version_count);
    for _ in 0..version_count {
        let _vid = d.get_u32()?;
        schemas_list.push(decode_schema(&mut d)?);
    }
    if schemas_list.is_empty() {
        return Err(SeedError::Invalid("persisted database has no schema".to_string()));
    }
    let mut iter = schemas_list.into_iter();
    let mut registry = SchemaRegistry::new(iter.next().expect("non-empty"));
    for schema in iter {
        registry.publish(schema);
    }
    registry.select(seed_schema::SchemaVersionId(current))?;

    // Data store.
    let mut store = DataStore::new();
    let object_bytes = get(b"seed/objects")?;
    let mut d = Decoder::new(&object_bytes);
    let count = d.get_varint()? as usize;
    for _ in 0..count {
        store.insert_object(decode_object(&mut d)?);
    }
    let rel_bytes = get(b"seed/relationships")?;
    let mut d = Decoder::new(&rel_bytes);
    let count = d.get_varint()? as usize;
    for _ in 0..count {
        store.insert_relationship(decode_relationship(&mut d)?);
    }
    let inherits_bytes = get(b"seed/inherits")?;
    let mut d = Decoder::new(&inherits_bytes);
    let count = d.get_varint()? as usize;
    for _ in 0..count {
        let inheritor = ObjectId(d.get_u64()?);
        let pattern = ObjectId(d.get_u64()?);
        store.add_inherits(inheritor, pattern);
    }

    // Version manager.
    let version_bytes = get(b"seed/versions")?;
    let mut d = Decoder::new(&version_bytes);
    let info_count = d.get_varint()? as usize;
    let mut infos = Vec::with_capacity(info_count);
    for _ in 0..info_count {
        let id = VersionId::parse(d.get_str()?)?;
        let parent = if d.get_bool()? { Some(VersionId::parse(d.get_str()?)?) } else { None };
        let schema_version = seed_schema::SchemaVersionId(d.get_u32()?);
        let comment = d.get_str()?.to_string();
        let seq = d.get_u64()?;
        let delta_size = d.get_varint()? as usize;
        infos.push(VersionInfo { id, parent, schema_version, comment, seq, delta_size });
    }
    let history_count = d.get_varint()? as usize;
    let mut histories = Vec::with_capacity(history_count);
    for _ in 0..history_count {
        let item = decode_item_id(&mut d)?;
        let entry_count = d.get_varint()? as usize;
        let mut entries = Vec::with_capacity(entry_count);
        for _ in 0..entry_count {
            let version = VersionId::parse(d.get_str()?)?;
            let snapshot = match d.get_u8()? {
                0 => ItemSnapshot::Object(decode_object(&mut d)?),
                1 => ItemSnapshot::Relationship(decode_relationship(&mut d)?),
                other => return Err(SeedError::Invalid(format!("unknown snapshot tag {other}"))),
            };
            entries.push((version, snapshot));
        }
        histories.push((item, entries));
    }
    let last_created = if d.get_bool()? { Some(VersionId::parse(d.get_str()?)?) } else { None };
    let seq = d.get_u64()?;
    let versions = VersionManager::from_state(infos, histories, last_created, seq);

    // Meta.
    let meta_bytes = get(b"seed/meta")?;
    let mut d = Decoder::new(&meta_bytes);
    let obj_floor = d.get_u64()?;
    let rel_floor = d.get_u64()?;
    store.raise_id_floor(obj_floor, rel_floor);
    // Dirty set: loading re-marked everything dirty through the inserts above; restore the
    // persisted dirty set instead so the next version snapshot stays a true delta.
    store.clear_dirty();
    let dirty_count = d.get_varint()? as usize;
    let mut dirty = Vec::with_capacity(dirty_count);
    for _ in 0..dirty_count {
        dirty.push(decode_item_id(&mut d)?);
    }
    store.mark_dirty_bulk(&dirty);
    let rule_count = d.get_varint()? as usize;
    let mut rules = Vec::with_capacity(rule_count);
    for _ in 0..rule_count {
        rules.push(decode_transition_rule(&mut d)?);
    }

    Ok(Database::from_parts(registry, store, versions, rules))
}

/// Saves a database into a directory (creating or reusing the storage engine files there).
pub fn save_dir(db: &Database, dir: impl AsRef<Path>) -> SeedResult<()> {
    let engine = StorageEngine::open(dir)?;
    save(db, &engine)?;
    engine.close()?;
    Ok(())
}

/// Loads a database from a directory written by [`save_dir`].
pub fn load_dir(dir: impl AsRef<Path>) -> SeedResult<Database> {
    let engine = StorageEngine::open(dir)?;
    let db = load(&engine)?;
    engine.close()?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::TransitionRule;
    use crate::name::NameSegment;
    use crate::value::Value;
    use seed_schema::figure3_schema;

    pub(crate) fn populated_db() -> Database {
        let mut db = Database::new(figure3_schema());
        db.add_transition_rule(TransitionRule::NoDeletions).unwrap();
        let alarms = db.create_object("Thing", "Alarms").unwrap();
        let sensor = db.create_object("Action", "Sensor").unwrap();
        db.reclassify_object(alarms, "OutputData").unwrap();
        let rel = db
            .create_relationship_with_attributes(
                "Write",
                &[("to", alarms), ("by", sensor)],
                &[
                    ("NumberOfWrites", Value::Integer(2)),
                    ("ErrorHandling", Value::symbol("repeat")),
                ],
            )
            .unwrap();
        let text = db
            .create_dependent_named(alarms, "Text", NameSegment::plain("Text"), Value::Undefined)
            .unwrap();
        db.create_dependent(text, "Selector", Value::string("Representation")).unwrap();
        db.create_version("1.0 release").unwrap();
        db.set_relationship_attribute(rel, "NumberOfWrites", Value::Integer(3)).unwrap();
        let pattern = db.create_pattern_object("Data", "StandardInput").unwrap();
        db.create_pattern_relationship("Access", &[("from", pattern), ("by", sensor)]).unwrap();
        let consumer = db.create_object("Data", "Consumer").unwrap();
        db.inherit_pattern(consumer, pattern).unwrap();
        db
    }

    #[test]
    fn database_roundtrips_through_engine() {
        let db = populated_db();
        let engine = StorageEngine::in_memory().unwrap();
        save(&db, &engine).unwrap();
        let loaded = load(&engine).unwrap();

        assert_eq!(loaded.schema().name, "Figure3");
        assert_eq!(loaded.object_count(), db.object_count());
        assert_eq!(loaded.relationship_count(), db.relationship_count());
        assert_eq!(loaded.versions().len(), 1);
        assert_eq!(loaded.transition_rules(), db.transition_rules());
        // Data survived.
        let alarms = loaded.object_by_name("Alarms").unwrap();
        assert_eq!(loaded.schema().class(alarms.class).unwrap().name, "OutputData");
        let rels = loaded.relationships(alarms.id);
        assert_eq!(rels.len(), 1);
        assert_eq!(rels[0].record.attributes.get("NumberOfWrites"), Some(&Value::Integer(3)));
        // Patterns and inheritance survived.
        let consumer = loaded.object_by_name("Consumer").unwrap();
        assert_eq!(loaded.inherited_patterns(consumer.id).len(), 1);
        assert_eq!(loaded.relationships(consumer.id).len(), 1);
        // Version view survived.
        let mut loaded = loaded;
        let v10 = VersionId::parse("1.0").unwrap();
        loaded.select_version(Some(v10)).unwrap();
        let old_rel = loaded.relationships(loaded.object_by_name("Alarms").unwrap().id);
        assert_eq!(old_rel[0].record.attributes.get("NumberOfWrites"), Some(&Value::Integer(2)));
    }

    #[test]
    fn directory_roundtrip() {
        let dir = std::env::temp_dir().join(format!("seed-persist-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = populated_db();
        db.save_to_dir(&dir).unwrap();
        let loaded = Database::open_dir(&dir).unwrap();
        assert_eq!(loaded.object_count(), db.object_count());
        // New objects after reload continue with fresh ids (no collision with stored ones).
        let mut loaded = loaded;
        let new_id = loaded.create_object("Action", "Display").unwrap();
        assert!(loaded.store().all_objects().filter(|o| o.id == new_id).count() == 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loading_from_empty_engine_fails_cleanly() {
        let engine = StorageEngine::in_memory().unwrap();
        assert!(matches!(load(&engine), Err(SeedError::NotFound(_))));
    }

    #[test]
    fn pre_chunking_snapshots_still_load() {
        // Snapshots written before blobs were chunked store the raw blob bytes directly under
        // each `seed/…` key.  Rebuild that layout from a chunked save and verify the fallback
        // in get_blob reads it.
        let db = populated_db();
        let chunked = StorageEngine::in_memory().unwrap();
        save(&db, &chunked).unwrap();
        let legacy = StorageEngine::in_memory().unwrap();
        for key in [
            b"seed/schema".as_slice(),
            b"seed/objects",
            b"seed/relationships",
            b"seed/inherits",
            b"seed/versions",
            b"seed/meta",
        ] {
            let blob = get_blob(&chunked, key).unwrap();
            legacy.put(key, &blob).unwrap();
        }
        let loaded = load(&legacy).unwrap();
        assert_eq!(loaded.object_count(), db.object_count());
        assert_eq!(loaded.relationship_count(), db.relationship_count());
        assert_eq!(loaded.versions().len(), db.versions().len());
    }
}
