//! Integration tests reproducing the structural figures of the paper (Figures 1–5) through the
//! public API of the workspace crates.

use seed_core::{Database, NameSegment, Value, VariantFamily, VersionId};
use seed_schema::{figure2_schema, figure3_schema, validate_schema, Cardinality};

/// Figure 1: the sample object-relationship structure, stored under the Figure 2 schema.
#[test]
fn figure1_sample_structure() {
    let mut db = Database::new(figure2_schema());

    let alarms = db.create_object("Data", "Alarms").unwrap();
    let handler = db.create_object("Action", "AlarmHandler").unwrap();
    let read = db.create_relationship("Read", &[("from", alarms), ("by", handler)]).unwrap();

    let text = db
        .create_dependent_named(alarms, "Text", NameSegment::plain("Text"), Value::Undefined)
        .unwrap();
    let body = db
        .create_dependent_named(text, "Body", NameSegment::plain("Body"), Value::Undefined)
        .unwrap();
    db.create_dependent_named(
        body,
        "Contents",
        NameSegment::plain("Contents"),
        Value::text("Alarms are represented in an alarm display matrix"),
    )
    .unwrap();
    let selector = db
        .create_dependent_named(
            text,
            "Selector",
            NameSegment::plain("Selector"),
            Value::string("Representation"),
        )
        .unwrap();
    let kw0 = db.create_dependent(body, "Keywords", Value::string("Alarmhandling")).unwrap();
    let kw1 = db.create_dependent(body, "Keywords", Value::string("Display")).unwrap();

    // The names of the paper's explanation: 'Alarms.Text', 'Alarms.Text.Selector' with value
    // "Representation", 'Alarms.Text.Body.Keywords[1]' with value "Display".
    assert_eq!(db.object(text).unwrap().name.to_string(), "Alarms.Text");
    assert_eq!(db.object(selector).unwrap().name.to_string(), "Alarms.Text.Selector");
    assert_eq!(db.object(selector).unwrap().value, Value::string("Representation"));
    assert_eq!(db.object(kw0).unwrap().name.to_string(), "Alarms.Text.Body.Keywords[0]");
    assert_eq!(db.object(kw1).unwrap().name.to_string(), "Alarms.Text.Body.Keywords[1]");
    assert_eq!(db.object(kw1).unwrap().value, Value::string("Display"));

    // The relationship relates the two objects in roles 'from' and 'by'.
    let rel = db.relationship(read).unwrap();
    assert_eq!(rel.bound("from"), Some(alarms));
    assert_eq!(rel.bound("by"), Some(handler));

    // Retrieval by name works for every item of the figure.
    for name in [
        "Alarms",
        "AlarmHandler",
        "Alarms.Text",
        "Alarms.Text.Body",
        "Alarms.Text.Selector",
        "Alarms.Text.Body.Keywords[0]",
        "Alarms.Text.Body.Keywords[1]",
    ] {
        assert!(db.object_by_name(name).is_ok(), "missing {name}");
    }
    // Navigation from the figure: who reads 'Alarms'?
    let readers = db.related(alarms, "Read", "from", "by").unwrap();
    assert_eq!(readers.len(), 1);
    assert_eq!(readers[0].id, handler);
}

/// Figure 2: the sample schema — structure and constraint semantics.
#[test]
fn figure2_schema_constraints() {
    let schema = figure2_schema();
    assert!(validate_schema(&schema).is_empty());

    // 'Data.Text' has cardinality 0..16.
    assert_eq!(
        schema.class_by_name("Data.Text").unwrap().occurrence,
        Cardinality::bounded(0, 16).unwrap()
    );
    // 'Read from' is 1..*, 'Read by' is 0..*.
    let read = schema.association_by_name("Read").unwrap();
    assert_eq!(read.role("from").unwrap().cardinality, Cardinality::at_least_one());
    assert_eq!(read.role("by").unwrap().cardinality, Cardinality::any());
    // 'Contained' is ACYCLIC with 0..1 for role 'in'.
    let contained = schema.association_by_name("Contained").unwrap();
    assert!(contained.acyclic);
    assert_eq!(contained.role("in").unwrap().cardinality, Cardinality::optional());

    // The paper's two examples of what the plain Figure 2 schema *cannot* express:
    let mut db = Database::new(schema);
    let alarms = db.create_object("Data", "Alarms").unwrap();
    let handler = db.create_object("Action", "AlarmHandler").unwrap();
    // (1) "We cannot store the information that there is a dataflow from 'AlarmHandler' to
    //     'Alarms' unless we precisely know whether it is a read or a write" — there simply is
    //     no 'Access' association in this schema.
    assert!(db.create_relationship("Access", &[("from", alarms), ("by", handler)]).is_err());
    // (2) Entering 'Alarms' without Read/Write relationships is possible *because* minimum
    //     cardinalities are completeness information — but the completeness analysis reports it.
    let report = db.completeness_report();
    assert!(report.findings.iter().any(|f| f.subject() == "Alarms"));
    // The 17th Text sub-object is rejected (maximum cardinality = consistency information).
    for _ in 0..16 {
        db.create_dependent(alarms, "Text", Value::Undefined).unwrap();
    }
    assert!(db.create_dependent(alarms, "Text", Value::Undefined).is_err());
}

/// Figure 3: generalization of classes and associations, and the vague-to-precise workflow.
#[test]
fn figure3_vague_information_workflow() {
    let schema = figure3_schema();
    assert!(validate_schema(&schema).is_empty());
    let mut db = Database::new(schema);

    // Now the vague statement *can* be stored.
    let alarms = db.create_object("Thing", "Alarms").unwrap();
    let sensor = db.create_object("Action", "Sensor").unwrap();
    // Step-by-step refinement.
    db.reclassify_object(alarms, "Data").unwrap();
    let access = db.create_relationship("Access", &[("from", alarms), ("by", sensor)]).unwrap();
    db.reclassify_object(alarms, "OutputData").unwrap();
    db.reclassify_relationship(access, "Write").unwrap();
    db.set_relationship_attribute(access, "NumberOfWrites", Value::Integer(2)).unwrap();
    db.set_relationship_attribute(access, "ErrorHandling", Value::symbol("repeat")).unwrap();

    let rel = db.relationship(access).unwrap();
    assert_eq!(db.schema().association(rel.association).unwrap().name, "Write");
    assert_eq!(rel.attributes.get("NumberOfWrites"), Some(&Value::Integer(2)));
    assert_eq!(rel.attributes.get("ErrorHandling"), Some(&Value::symbol("repeat")));

    // "the cardinality 1..* of 'Access by' means that every object of class 'Action' eventually
    // must access at least one object of class 'Data'.  However, the cardinality 0..* of 'Read
    // by' and 'Write by' allows either a write or a read access to satisfy this condition."
    let report = db.completeness_report();
    assert!(
        !report.findings.iter().any(|f| f.subject() == "Sensor"),
        "the Write relationship satisfies Sensor's Access obligation: {report}"
    );
    // An Action with no access at all is incomplete.
    db.create_object("Action", "Idle").unwrap();
    let report = db.completeness_report();
    assert!(report.findings.iter().any(|f| f.subject() == "Idle"));

    // Un-refinement (making information vaguer again) also works: Write -> Access.
    db.reclassify_relationship(access, "Access").unwrap();
    let rel = db.relationship(access).unwrap();
    assert_eq!(db.schema().association(rel.association).unwrap().name, "Access");
}

/// Figure 4: versions 1.0, 2.0 and Current with per-version views and delta storage.
#[test]
fn figure4_versions_and_views() {
    let mut db = Database::new(figure3_schema());

    let handler = db.create_object("Action", "AlarmHandler").unwrap();
    let desc = db
        .create_dependent_named(
            handler,
            "Description",
            NameSegment::plain("Description"),
            Value::string("Handles alarms"),
        )
        .unwrap();
    let v10 = db.create_version("1.0").unwrap();
    assert_eq!(v10, VersionId::parse("1.0").unwrap());

    db.set_value(desc, Value::string("Handles alarms derived from ProcessData")).unwrap();
    let v20 = db.create_version("2.0").unwrap();
    assert_eq!(v20, VersionId::parse("2.0").unwrap());
    // Delta storage: version 2.0 recorded only the changed item, not the whole database.
    assert_eq!(db.version_info(&v20).unwrap().delta_size, 1);

    db.set_value(
        desc,
        Value::string("Generates alarms from process data, triggers Operator Alert"),
    )
    .unwrap();

    // Figure 4b: the current version.
    assert_eq!(
        db.object(desc).unwrap().value,
        Value::string("Generates alarms from process data, triggers Operator Alert")
    );
    // Figure 4c: version 1.0.
    db.select_version(Some(v10.clone())).unwrap();
    assert_eq!(db.object(desc).unwrap().value, Value::string("Handles alarms"));
    // Versions cannot be modified.
    assert!(db.set_value(desc, Value::string("tamper")).is_err());
    db.select_version(None).unwrap();

    // History navigation: all versions of the description beginning with 2.0.
    let history = db.versions_of_object(desc, Some(&v20));
    assert_eq!(history.len(), 1);
    assert_eq!(history[0].1.value, Value::string("Handles alarms derived from ProcessData"));

    // Alternatives branch below their base version.
    db.checkout_alternative(v10.clone()).unwrap();
    db.set_value(desc, Value::string("Alternative wording")).unwrap();
    let alt = db.create_version("alternative").unwrap();
    assert_eq!(alt, VersionId::parse("1.0.1").unwrap());
    db.return_to_current().unwrap();
    assert_eq!(db.version_info(&alt).unwrap().parent, Some(v10));
}

/// Figure 5: variants defined by means of patterns.
#[test]
fn figure5_variants_through_patterns() {
    let mut db = Database::new(figure3_schema());

    // Common part and the two pattern connection points.
    let common = db.create_object("Action", "CommonPart").unwrap();
    let po1 = db.create_pattern_object("Data", "PO1").unwrap();
    let po2 = db.create_pattern_object("Data", "PO2").unwrap();
    let pr1 = db.create_pattern_relationship("Access", &[("from", po1), ("by", common)]).unwrap();
    let pr2 = db.create_pattern_relationship("Access", &[("from", po2), ("by", common)]).unwrap();

    // Patterns are invisible to retrieval and not counted by the completeness analysis.
    assert!(db.object_by_name("PO1").is_err());
    assert_eq!(db.objects_of_class("Data", true).unwrap().len(), 0);

    // Variant parts A and B inherit both patterns.
    let variant_a = db.create_object("Data", "VariantPartA").unwrap();
    let variant_b = db.create_object("Data", "VariantPartB").unwrap();
    for v in [variant_a, variant_b] {
        db.inherit_pattern(v, po1).unwrap();
        db.inherit_pattern(v, po2).unwrap();
    }

    let mut family = VariantFamily::new("Figure5");
    family.common_part.push(common);
    family.patterns.extend([po1, po2]);
    family.variants.insert("A".into(), vec![variant_a]);
    family.variants.insert("B".into(), vec![variant_b]);
    assert!(family.check_uniform_inheritance(db.store()).is_empty());

    // Both variants have inherited relationships to the common part.
    for v in [variant_a, variant_b] {
        let rels = db.relationships(v);
        assert_eq!(rels.len(), 2);
        assert!(rels.iter().all(|r| r.is_inherited()));
        assert!(rels.iter().all(|r| r.record.involves(common)));
        // Updating the inherited information in the variant's context is rejected.
        assert!(db.assert_updatable_in_context(v, rels[0].record.id).is_err());
    }
    // Updating the pattern propagates: delete PR2 in the pattern, both variants lose it.
    db.delete_relationship(pr2).unwrap();
    for v in [variant_a, variant_b] {
        assert_eq!(db.relationships(v).len(), 1);
    }
    let _ = pr1;
}
