//! End-to-end integration tests spanning several crates: SDL-defined schemas, persistence
//! through the storage engine, the query language, and the SPADES tool.

use seed_core::{Database, TransitionRule, Value};
use seed_query::run as query;
use seed_schema::sdl;
use spades::{DirectBackend, SeedBackend, SpecBackend, Workload, WorkloadConfig};

/// A schema written in SDL drives a database, which survives a save/load round trip through the
/// storage engine, and answers queries afterwards.
#[test]
fn sdl_schema_persistence_and_query() {
    let schema = sdl::parse(
        r#"
        schema Project {
            class Artifact covering {
                dependent Owner [0..1] : STRING;
            }
            class Document : Artifact {
                dependent Section [0..*] : TEXT;
            }
            class Program : Artifact;
            class Person;
            association Responsible {
                role for : Artifact [0..*];
                role who : Person [1..*];
            }
            association Refines acyclic {
                role refined : Artifact [0..1];
                role by : Artifact [0..*];
            }
        }
        "#,
    )
    .expect("SDL parses");
    assert!(seed_schema::validate_schema(&schema).is_empty());

    let mut db = Database::new(schema);
    db.add_transition_rule(TransitionRule::NoDeletions).unwrap();

    let spec = db.create_object("Document", "RequirementsSpec").unwrap();
    let design = db.create_object("Document", "DesignSpec").unwrap();
    let program = db.create_object("Program", "AlarmMonitor").unwrap();
    let alice = db.create_object("Person", "Alice").unwrap();
    db.create_relationship("Responsible", &[("for", spec), ("who", alice)]).unwrap();
    db.create_relationship("Refines", &[("refined", spec), ("by", design)]).unwrap();
    db.create_relationship("Refines", &[("refined", design), ("by", program)]).unwrap();
    db.create_dependent(spec, "Section", Value::text("1. Introduction")).unwrap();
    db.create_dependent(spec, "Section", Value::text("2. Alarm handling")).unwrap();
    db.create_dependent(spec, "Owner", Value::string("Alice")).unwrap();
    // The ACYCLIC constraint holds across the refinement chain.
    assert!(db.create_relationship("Refines", &[("refined", program), ("by", spec)]).is_err());
    let v1 = db.create_version("baseline").unwrap();

    // Persist and reload through the seed-storage engine.
    let dir = std::env::temp_dir().join(format!("seed-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    db.save_to_dir(&dir).unwrap();
    let reloaded = Database::open_dir(&dir).unwrap();
    assert_eq!(reloaded.object_count(), db.object_count());
    assert_eq!(reloaded.relationship_count(), db.relationship_count());
    assert_eq!(reloaded.versions().len(), 1);
    assert_eq!(reloaded.transition_rules(), db.transition_rules());

    // Queries over the reloaded database.
    assert_eq!(query(&reloaded, "count Artifact").unwrap().count(), 3);
    assert_eq!(query(&reloaded, "count exactly Document").unwrap().count(), 2);
    assert_eq!(
        query(&reloaded, r#"find Artifact navigate Refines.by from "RequirementsSpec""#)
            .unwrap()
            .names(),
        vec!["DesignSpec"]
    );
    assert_eq!(
        query(&reloaded, r#"find Person where related Responsible.who"#).unwrap().names(),
        vec!["Alice"]
    );
    // Sections with a given text.
    assert_eq!(
        query(&reloaded, r#"find Document.Section where value = "2. Alarm handling""#)
            .unwrap()
            .count(),
        1
    );
    // Covering class Artifact: the completeness analysis sees no unspecialized artifacts
    // (every artifact is a Document or Program already).
    let report = reloaded.completeness_report();
    assert!(!report
        .findings
        .iter()
        .any(|f| matches!(f, seed_core::Incompleteness::UnspecializedObject { .. })));

    let _ = (v1, std::fs::remove_dir_all(&dir));
}

/// The transition rules (history-sensitive consistency, the paper's open problem) guard version
/// creation end-to-end.
#[test]
fn transition_rules_guard_releases() {
    let mut db = Database::new(seed_schema::figure3_schema());
    db.add_transition_rule(TransitionRule::NoDeletions).unwrap();
    db.add_transition_rule(TransitionRule::MonotonicValue { class: "Thing.Revised".into() })
        .unwrap();

    let handler = db.create_object("Action", "AlarmHandler").unwrap();
    let revised =
        db.create_dependent(handler, "Revised", Value::date(1985, 6, 1).unwrap()).unwrap();
    db.create_version("1.0").unwrap();

    // Moving the revision date backwards is rejected at version-creation time.
    db.set_value(revised, Value::date(1984, 1, 1).unwrap()).unwrap();
    assert!(db.create_version("2.0").is_err());
    // Forward is fine.
    db.set_value(revised, Value::date(1986, 2, 5).unwrap()).unwrap();
    db.create_version("2.0").unwrap();
    assert_eq!(db.versions().len(), 2);
}

/// The SPADES tool produces the same specification on both backends, but only SEED rejects the
/// erroneous operations and reports incompleteness — the paper's flexibility claim.
#[test]
fn spades_runs_on_both_backends() {
    let workload = Workload::generate(&WorkloadConfig {
        data_elements: 30,
        actions: 15,
        checkpoint_every: 40,
        ..WorkloadConfig::default()
    });

    let mut seed = SeedBackend::new();
    let mut direct = DirectBackend::new();
    assert_eq!(workload.apply(&mut seed), 0);
    assert_eq!(workload.apply(&mut direct), 0);

    assert_eq!(seed.element_names(), direct.element_names());
    assert_eq!(seed.flow_count(), direct.flow_count());
    assert_eq!(seed.checkpoint_count(), direct.checkpoint_count());
    assert!(seed.incompleteness_findings() > 0);
    assert_eq!(direct.incompleteness_findings(), 0);

    // The erroneous operations of an interactive session are caught only by SEED.
    let mut seed = SeedBackend::new();
    let mut direct = DirectBackend::new();
    for backend in [&mut seed as &mut dyn SpecBackend, &mut direct as &mut dyn SpecBackend] {
        backend.add_element("A", spades::ElementKind::Action).unwrap();
        backend.add_element("B", spades::ElementKind::Action).unwrap();
        backend.contain("A", "B").unwrap();
    }
    assert!(seed.contain("B", "A").is_err(), "SEED rejects the containment cycle");
    assert!(direct.contain("B", "A").is_ok(), "the old tool silently stores it");
}

/// The query layer sees exactly what the operational interface sees, including version views.
#[test]
fn queries_respect_selected_versions() {
    let mut db = Database::new(seed_schema::figure3_schema());
    let alarms = db.create_object("OutputData", "Alarms").unwrap();
    let sensor = db.create_object("Action", "Sensor").unwrap();
    db.create_relationship("Write", &[("to", alarms), ("by", sensor)]).unwrap();
    let v1 = db.create_version("1.0").unwrap();
    db.create_object("OutputData", "Report").unwrap();

    assert_eq!(query(&db, "count Data").unwrap().count(), 2);
    db.select_version(Some(v1)).unwrap();
    assert_eq!(query(&db, "count Data").unwrap().count(), 1);
    db.select_version(None).unwrap();
    assert_eq!(query(&db, "count Data").unwrap().count(), 2);
}

/// Incremental durability end-to-end: an SDL-defined schema drives a durable database whose
/// committed mutations survive a crash (engine dropped without checkpoint), the recovered
/// database answers queries through the rebuilt indexes, and a legacy snapshot directory is
/// migrated to the per-item layout on durable open.
#[test]
fn durable_database_survives_crash_and_answers_queries() {
    let dir = std::env::temp_dir().join(format!("seed-e2e-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut db = Database::create_durable(&dir, seed_schema::figure3_schema()).unwrap();
    let alarms = db.create_object("Thing", "Alarms").unwrap();
    let sensor = db.create_object("Action", "Sensor").unwrap();
    db.reclassify_object(alarms, "OutputData").unwrap();
    let rel = db.create_relationship("Write", &[("to", alarms), ("by", sensor)]).unwrap();
    db.set_relationship_attribute(rel, "NumberOfWrites", Value::Integer(2)).unwrap();
    db.create_version("baseline").unwrap();
    // A server-style batch: one explicit transaction, one storage commit.
    db.begin_transaction().unwrap();
    db.create_object("Data", "Report").unwrap();
    db.create_object("Action", "Display").unwrap();
    db.commit_transaction().unwrap();
    // A rolled-back transaction leaves no durable trace.
    db.begin_transaction().unwrap();
    db.create_object("Data", "Discarded").unwrap();
    db.rollback_transaction().unwrap();
    drop(db); // crash: no checkpoint, no close

    let recovered = Database::open_durable(&dir).unwrap();
    assert_eq!(recovered.object_count(), 4);
    assert!(recovered.object_by_name("Discarded").is_err());
    assert_eq!(query(&recovered, "count Data").unwrap().count(), 2);
    assert_eq!(
        query(&recovered, r#"find Thing where name prefix "Alarm""#).unwrap().names(),
        vec!["Alarms"]
    );
    assert_eq!(recovered.versions().len(), 1);

    // Legacy snapshot directories migrate on durable open.
    let legacy_dir =
        std::env::temp_dir().join(format!("seed-e2e-durable-legacy-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&legacy_dir);
    recovered.save_to_dir(&legacy_dir).unwrap();
    let migrated = Database::open_durable(&legacy_dir).unwrap();
    assert_eq!(migrated.object_count(), recovered.object_count());
    assert_eq!(query(&migrated, "count Data").unwrap().count(), 2);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&legacy_dir);
}
