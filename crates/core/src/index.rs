//! Secondary attribute indexes: ordered per-class maps from object values to object ids.
//!
//! The 1986 prototype retrieves by name only; every value-based selection in the query layer
//! used to scan the full class extent.  This module supplies the standard ER-to-physical
//! bridge — an ordered secondary index per class over the objects' values — so the query
//! planner ([`seed-query`'s `planner`][planner]) can answer equality probes in *O(log n)* and
//! range selections with a range scan instead of an *O(n)* extent scan.
//!
//! The index lives inside [`crate::store::DataStore`] and is maintained on **every** mutation
//! path — object creation, value update, re-classification, logical deletion, transaction
//! rollback, version-view reconstruction and persistence load — because all of those funnel
//! through `DataStore::insert_object` / `update_object` / `remove_object`.
//!
//! ## Key encoding
//!
//! Query literals are strings, so the index key mirrors the comparison semantics of the query
//! layer exactly (see `docs/QUERY.md`): [`Value::Integer`] values get a numerically ordered
//! [`IndexKey::Int`] key; every other defined value gets a lexically ordered [`IndexKey::Str`]
//! key holding the same string form the scan comparison uses ([`Value::as_str`] when the value
//! is string-like, its display form otherwise).  [`Value::Undefined`] is **never indexed** —
//! "an undefined object matches nothing".
//!
//! ```
//! use seed_core::index::{AttributeIndex, IndexKey, ValueOp};
//! use seed_core::{ObjectId, Value};
//! use seed_schema::ClassId;
//!
//! let mut index = AttributeIndex::default();
//! index.insert(ClassId(0), &Value::Integer(7), ObjectId(1));
//! index.insert(ClassId(0), &Value::Integer(40), ObjectId(2));
//! index.insert(ClassId(0), &Value::string("7"), ObjectId(3));
//! index.insert(ClassId(0), &Value::Undefined, ObjectId(4)); // not indexed
//!
//! // Equality probes match both the integer and the string form of "7".
//! assert_eq!(index.matching(ClassId(0), ValueOp::Eq, "7"), vec![ObjectId(1), ObjectId(3)]);
//! // Range scans order integers numerically: 7 < 40 even though "7" > "40" lexically.
//! assert_eq!(index.matching(ClassId(0), ValueOp::Less, "40"), vec![ObjectId(1)]);
//! assert_eq!(index.estimate(ClassId(0), ValueOp::Eq, "7"), 2);
//! assert_eq!(IndexKey::of(&Value::Undefined), None);
//! ```
//!
//! [planner]: https://docs.rs/seed-query

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Bound::{Excluded, Included, Unbounded};

use seed_schema::ClassId;

use crate::ident::ObjectId;
use crate::value::Value;

/// Ordered key under which a defined [`Value`] is indexed.
///
/// Integers order numerically and sort before all string-form keys; everything else orders
/// lexically on the same string form the query layer's scan comparison uses.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum IndexKey {
    /// Key of a [`Value::Integer`] — numeric order.
    Int(i64),
    /// Key of every other defined value — lexical order on its query-comparison string form.
    Str(String),
}

impl IndexKey {
    /// The key a value is indexed under, or `None` for [`Value::Undefined`] (undefined values
    /// match nothing, so they are not indexed at all).
    pub fn of(value: &Value) -> Option<IndexKey> {
        match value {
            Value::Undefined => None,
            Value::Integer(i) => Some(IndexKey::Int(*i)),
            other => Some(IndexKey::Str(match other.as_str() {
                Some(s) => s.to_string(),
                None => other.to_string(),
            })),
        }
    }
}

/// Comparison forms the index can answer directly (the query layer's `!=` stays a scan).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueOp {
    /// Equality probe (`value = "literal"`).
    Eq,
    /// Range scan below the literal (`value < "literal"`).
    Less,
    /// Range scan above the literal (`value > "literal"`).
    Greater,
}

/// Per-class ordered secondary index from value keys to the ids of live objects holding them.
///
/// Reads return the union of matching ids in globally ascending id order (see
/// [`AttributeIndex::matching`]); callers resolve ids against the store and apply visibility
/// filtering (patterns, class hierarchies).
#[derive(Debug, Clone, Default)]
pub struct AttributeIndex {
    classes: HashMap<ClassId, BTreeMap<IndexKey, BTreeSet<ObjectId>>>,
}

impl AttributeIndex {
    /// Indexes `id` under the key of `value` (no-op for undefined values).
    pub fn insert(&mut self, class: ClassId, value: &Value, id: ObjectId) {
        if let Some(key) = IndexKey::of(value) {
            self.insert_key(class, key, id);
        }
    }

    /// Indexes `id` under a precomputed key.
    pub fn insert_key(&mut self, class: ClassId, key: IndexKey, id: ObjectId) {
        self.classes.entry(class).or_default().entry(key).or_default().insert(id);
    }

    /// Removes `id` from the entry of `value` (no-op for undefined values).
    pub fn remove(&mut self, class: ClassId, value: &Value, id: ObjectId) {
        if let Some(key) = IndexKey::of(value) {
            self.remove_key(class, &key, id);
        }
    }

    /// Removes `id` from the entry of a precomputed key.
    pub fn remove_key(&mut self, class: ClassId, key: &IndexKey, id: ObjectId) {
        if let Some(tree) = self.classes.get_mut(&class) {
            if let Some(ids) = tree.get_mut(key) {
                ids.remove(&id);
                if ids.is_empty() {
                    tree.remove(key);
                }
            }
            if tree.is_empty() {
                self.classes.remove(&class);
            }
        }
    }

    /// Number of indexed (class, value) entries for `class` — the planner's scan-cost proxy.
    pub fn entry_count(&self, class: ClassId) -> usize {
        self.classes.get(&class).map(|t| t.values().map(BTreeSet::len).sum()).unwrap_or(0)
    }

    /// Ids of objects of exactly `class` whose value satisfies `op` against the query literal,
    /// in ascending id order.
    pub fn matching(&self, class: ClassId, op: ValueOp, literal: &str) -> Vec<ObjectId> {
        let mut out = BTreeSet::new();
        self.walk_matching(class, op, literal, |matched, ids| {
            if matched {
                out.extend(ids.iter().copied());
            }
            true
        });
        out.into_iter().collect()
    }

    /// Cost of resolving [`AttributeIndex::matching`] — the planner's cardinality estimate,
    /// computed without materialising records.  Exactly the match count, except in the
    /// mixed-type fallback where visited-but-unmatched integer keys are charged too (they are
    /// real walk work).
    pub fn estimate(&self, class: ClassId, op: ValueOp, literal: &str) -> usize {
        self.estimate_up_to(class, op, literal, usize::MAX)
    }

    /// Like [`AttributeIndex::estimate`], but with an early-exit budget: counting stops at
    /// `cap` (the caller's scan cost — once the index path is at least that expensive, its
    /// exact cost no longer matters).  This bounds plan-time work: equality probes are O(1),
    /// range estimates visit at most `cap` entries.  In the rare mixed-type case (a `<`/`>`
    /// literal that is not an integer), every *visited* integer key charges the budget even
    /// when it does not match, because the executor would redo that walk — a wide unmatched
    /// walk must lose to the extent scan.
    pub fn estimate_up_to(&self, class: ClassId, op: ValueOp, literal: &str, cap: usize) -> usize {
        let mut cost = 0usize;
        self.walk_matching(class, op, literal, |matched, ids| {
            cost += if matched { ids.len() } else { 1 };
            cost < cap
        });
        cost.min(cap)
    }

    /// The single walk both [`AttributeIndex::matching`] and [`AttributeIndex::estimate_up_to`]
    /// are built on, reproducing the query layer's scan-comparison semantics: integer keys
    /// compare numerically when the literal parses as an integer (and by their decimal string
    /// form otherwise); all other keys compare lexically on their string form.
    ///
    /// The visitor receives `(matched, ids)` for every key the walk touches — `matched` is
    /// false only in the mixed-type fallback (non-integer `<`/`>` literal forcing a walk over
    /// the integer keys), where visiting is real work even without a match.  Returning `false`
    /// stops the walk early.
    fn walk_matching(
        &self,
        class: ClassId,
        op: ValueOp,
        literal: &str,
        mut visit: impl FnMut(bool, &BTreeSet<ObjectId>) -> bool,
    ) {
        let Some(tree) = self.classes.get(&class) else { return };
        let int_literal = literal.parse::<i64>().ok();
        match op {
            ValueOp::Eq => {
                if let Some(n) = int_literal {
                    if let Some(ids) = tree.get(&IndexKey::Int(n)) {
                        if !visit(true, ids) {
                            return;
                        }
                    }
                }
                if let Some(ids) = tree.get(&IndexKey::Str(literal.to_string())) {
                    visit(true, ids);
                }
            }
            ValueOp::Less | ValueOp::Greater => {
                // Integer side.
                match int_literal {
                    Some(m) => {
                        let range = match op {
                            ValueOp::Less => {
                                (Included(IndexKey::Int(i64::MIN)), Excluded(IndexKey::Int(m)))
                            }
                            _ => (Excluded(IndexKey::Int(m)), Included(IndexKey::Int(i64::MAX))),
                        };
                        for (_, ids) in tree.range(range) {
                            if !visit(true, ids) {
                                return;
                            }
                        }
                    }
                    None => {
                        // Non-numeric literal: integer values fall back to comparing their
                        // decimal string form (numeric key order does not help here, but such
                        // mixed comparisons are rare and the integer side is usually empty).
                        for (key, ids) in tree.range((Unbounded, Included(IndexKey::Int(i64::MAX))))
                        {
                            let IndexKey::Int(i) = key else { continue };
                            let s = i.to_string();
                            let matched = match op {
                                ValueOp::Less => s.as_str() < literal,
                                _ => s.as_str() > literal,
                            };
                            if !visit(matched, ids) {
                                return;
                            }
                        }
                    }
                }
                // String side: plain lexical range over the `Str` keys.
                let range = match op {
                    ValueOp::Less => (
                        Included(IndexKey::Str(String::new())),
                        Excluded(IndexKey::Str(literal.to_string())),
                    ),
                    _ => (Excluded(IndexKey::Str(literal.to_string())), Unbounded),
                };
                for (_, ids) in tree.range(range) {
                    if !visit(true, ids) {
                        return;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ObjectId {
        ObjectId(n)
    }

    #[test]
    fn key_encoding_follows_scan_semantics() {
        assert_eq!(IndexKey::of(&Value::Integer(7)), Some(IndexKey::Int(7)));
        assert_eq!(IndexKey::of(&Value::string("x")), Some(IndexKey::Str("x".into())));
        assert_eq!(IndexKey::of(&Value::symbol("repeat")), Some(IndexKey::Str("repeat".into())));
        assert_eq!(IndexKey::of(&Value::Real(2.5)), Some(IndexKey::Str("2.5".into())));
        assert_eq!(IndexKey::of(&Value::Boolean(true)), Some(IndexKey::Str("true".into())));
        assert_eq!(
            IndexKey::of(&Value::date(1986, 2, 5).unwrap()),
            Some(IndexKey::Str("1986-02-05".into()))
        );
        assert_eq!(IndexKey::of(&Value::Undefined), None);
        // Integers order numerically and before all string keys.
        assert!(IndexKey::Int(7) < IndexKey::Int(40));
        assert!(IndexKey::Int(i64::MAX) < IndexKey::Str(String::new()));
    }

    #[test]
    fn equality_probes_match_integer_and_string_forms() {
        let mut index = AttributeIndex::default();
        let class = ClassId(1);
        index.insert(class, &Value::Integer(2), id(1));
        index.insert(class, &Value::string("2"), id(2));
        index.insert(class, &Value::string("02"), id(3));
        index.insert(class, &Value::Undefined, id(4));
        assert_eq!(index.matching(class, ValueOp::Eq, "2"), vec![id(1), id(2)]);
        // "02" parses as integer 2, so it matches Integer(2) — but not String("2").
        assert_eq!(index.matching(class, ValueOp::Eq, "02"), vec![id(1), id(3)]);
        assert_eq!(index.estimate(class, ValueOp::Eq, "2"), 2);
        assert_eq!(index.entry_count(class), 3);
        assert_eq!(index.entry_count(ClassId(9)), 0);
    }

    #[test]
    fn range_scans_split_numeric_and_lexical_order() {
        let mut index = AttributeIndex::default();
        let class = ClassId(1);
        index.insert(class, &Value::Integer(7), id(1));
        index.insert(class, &Value::Integer(40), id(2));
        index.insert(class, &Value::string("Alpha"), id(3));
        index.insert(class, &Value::string("Beta"), id(4));
        // Numeric literal: integers numeric, strings lexical.
        assert_eq!(index.matching(class, ValueOp::Less, "40"), vec![id(1)]);
        assert_eq!(index.matching(class, ValueOp::Greater, "7"), vec![id(2), id(3), id(4)]);
        // Non-numeric literal: integers compare by decimal string form ("40" < "7" < "Alpha").
        assert_eq!(index.matching(class, ValueOp::Less, "Alpha"), vec![id(1), id(2)]);
        assert_eq!(index.matching(class, ValueOp::Greater, "Alpha"), vec![id(4)]);
        assert_eq!(index.estimate(class, ValueOp::Greater, "7"), 3);
    }

    #[test]
    fn extreme_integer_literals_do_not_panic() {
        let mut index = AttributeIndex::default();
        let class = ClassId(0);
        index.insert(class, &Value::Integer(i64::MIN), id(1));
        index.insert(class, &Value::Integer(i64::MAX), id(2));
        assert!(index.matching(class, ValueOp::Less, &i64::MIN.to_string()).is_empty());
        assert!(index.matching(class, ValueOp::Greater, &i64::MAX.to_string()).is_empty());
        assert_eq!(index.matching(class, ValueOp::Greater, &i64::MIN.to_string()), vec![id(2)]);
    }

    #[test]
    fn estimates_early_exit_at_the_cap() {
        let mut index = AttributeIndex::default();
        let class = ClassId(0);
        for i in 0..100 {
            index.insert(class, &Value::Integer(i), id(i as u64 + 1));
        }
        // Wide range: the true count is 99, but counting stops at the cap.
        assert_eq!(index.estimate_up_to(class, ValueOp::Greater, "0", 10), 10);
        assert_eq!(index.estimate_up_to(class, ValueOp::Greater, "0", usize::MAX), 99);
        assert_eq!(index.estimate(class, ValueOp::Greater, "0"), 99);
        // Mixed-type walk (non-numeric literal over integer keys): every *visited* key charges
        // the budget even though nothing matches, so a wide walk cannot be reported as cheap.
        assert_eq!(index.estimate_up_to(class, ValueOp::Greater, "z", 10), 10);
        assert_eq!(index.matching(class, ValueOp::Greater, "z"), Vec::<ObjectId>::new());
        // Point probes ignore the walk budget (two map lookups).
        assert_eq!(index.estimate_up_to(class, ValueOp::Eq, "50", 10), 1);
    }

    #[test]
    fn removal_prunes_empty_entries() {
        let mut index = AttributeIndex::default();
        let class = ClassId(1);
        index.insert(class, &Value::Integer(7), id(1));
        index.insert(class, &Value::Integer(7), id(2));
        index.remove(class, &Value::Integer(7), id(1));
        assert_eq!(index.matching(class, ValueOp::Eq, "7"), vec![id(2)]);
        index.remove(class, &Value::Integer(7), id(2));
        assert_eq!(index.entry_count(class), 0);
        assert!(index.classes.is_empty(), "empty per-class trees are pruned");
        // Removing from a missing class/key is a no-op.
        index.remove(ClassId(5), &Value::Integer(1), id(9));
        index.remove(class, &Value::Undefined, id(9));
    }
}
