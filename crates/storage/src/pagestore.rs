//! Page-granular storage backends.
//!
//! A [`PageStore`] reads and writes whole pages identified by [`PageId`].  Two implementations
//! are provided: an in-memory store for tests and ephemeral databases, and a file-backed store
//! for durable databases.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PAGE_SIZE};

/// Abstraction over a place pages can be stored.
pub trait PageStore: Send + Sync {
    /// Reads the page with the given id.
    fn read_page(&self, id: PageId) -> StorageResult<Page>;

    /// Writes (creates or overwrites) the page.
    fn write_page(&self, page: &Page) -> StorageResult<()>;

    /// Allocates a new page id and materializes an empty page for it.
    fn allocate_page(&self) -> StorageResult<PageId>;

    /// Number of pages currently allocated.
    fn num_pages(&self) -> u64;

    /// Flushes buffered writes to durable storage (no-op for memory stores).
    fn sync(&self) -> StorageResult<()>;
}

/// In-memory page store backed by a vector of pages.
#[derive(Default)]
pub struct MemoryPageStore {
    pages: Mutex<Vec<Option<Page>>>,
}

impl MemoryPageStore {
    /// Creates an empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PageStore for MemoryPageStore {
    fn read_page(&self, id: PageId) -> StorageResult<Page> {
        let pages = self.pages.lock();
        pages.get(id as usize).and_then(|p| p.clone()).ok_or(StorageError::PageNotFound(id))
    }

    fn write_page(&self, page: &Page) -> StorageResult<()> {
        let mut pages = self.pages.lock();
        let idx = page.id() as usize;
        if idx >= pages.len() {
            return Err(StorageError::PageNotFound(page.id()));
        }
        pages[idx] = Some(page.clone());
        Ok(())
    }

    fn allocate_page(&self) -> StorageResult<PageId> {
        let mut pages = self.pages.lock();
        let id = pages.len() as PageId;
        pages.push(Some(Page::new(id)));
        Ok(id)
    }

    fn num_pages(&self) -> u64 {
        self.pages.lock().len() as u64
    }

    fn sync(&self) -> StorageResult<()> {
        Ok(())
    }
}

/// File-backed page store: page `i` lives at byte offset `i * PAGE_SIZE`.
pub struct FilePageStore {
    file: Mutex<File>,
    path: PathBuf,
    next_page: AtomicU64,
}

impl FilePageStore {
    /// Opens (or creates) a page file at `path`.
    pub fn open(path: impl AsRef<Path>) -> StorageResult<Self> {
        let path = path.as_ref().to_path_buf();
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "page file {} has length {len} which is not a multiple of the page size",
                path.display()
            )));
        }
        Ok(Self { file: Mutex::new(file), path, next_page: AtomicU64::new(len / PAGE_SIZE as u64) })
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl PageStore for FilePageStore {
    fn read_page(&self, id: PageId) -> StorageResult<Page> {
        if id >= self.next_page.load(Ordering::SeqCst) {
            return Err(StorageError::PageNotFound(id));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        let mut buf = vec![0u8; PAGE_SIZE];
        file.read_exact(&mut buf)?;
        Page::from_bytes(&buf)
    }

    fn write_page(&self, page: &Page) -> StorageResult<()> {
        if page.id() >= self.next_page.load(Ordering::SeqCst) {
            return Err(StorageError::PageNotFound(page.id()));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(page.id() * PAGE_SIZE as u64))?;
        file.write_all(page.as_bytes())?;
        Ok(())
    }

    fn allocate_page(&self) -> StorageResult<PageId> {
        let id = self.next_page.fetch_add(1, Ordering::SeqCst);
        let page = Page::new(id);
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        file.write_all(page.as_bytes())?;
        Ok(id)
    }

    fn num_pages(&self) -> u64 {
        self.next_page.load(Ordering::SeqCst)
    }

    fn sync(&self) -> StorageResult<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn PageStore) {
        assert_eq!(store.num_pages(), 0);
        let p0 = store.allocate_page().unwrap();
        let p1 = store.allocate_page().unwrap();
        assert_eq!(p0, 0);
        assert_eq!(p1, 1);
        assert_eq!(store.num_pages(), 2);

        let mut page = store.read_page(p1).unwrap();
        let slot = page.insert(b"record body").unwrap();
        store.write_page(&page).unwrap();

        let reread = store.read_page(p1).unwrap();
        assert_eq!(reread.get(slot).unwrap(), b"record body");

        assert!(store.read_page(99).is_err());
        store.sync().unwrap();
    }

    #[test]
    fn memory_store_basic() {
        let store = MemoryPageStore::new();
        exercise(&store);
    }

    #[test]
    fn memory_store_write_unallocated_page_errors() {
        let store = MemoryPageStore::new();
        let page = Page::new(5);
        assert!(store.write_page(&page).is_err());
    }

    #[test]
    fn file_store_basic() {
        let dir = std::env::temp_dir().join(format!("seed-storage-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("basic.pages");
        let _ = std::fs::remove_file(&path);
        {
            let store = FilePageStore::open(&path).unwrap();
            exercise(&store);
        }
        // Re-open: the data must still be there.
        {
            let store = FilePageStore::open(&path).unwrap();
            assert_eq!(store.num_pages(), 2);
            let page = store.read_page(1).unwrap();
            assert_eq!(page.get(0).unwrap(), b"record body");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_store_rejects_truncated_file() {
        let dir = std::env::temp_dir().join(format!("seed-storage-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.pages");
        std::fs::write(&path, vec![0u8; 100]).unwrap();
        assert!(FilePageStore::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
