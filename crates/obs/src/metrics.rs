//! The lock-free metric primitives: counters, gauges, and fixed-bucket histograms.
//!
//! Every handle is a clonable wrapper over an `Arc` of plain atomics.  Recording an event is a
//! handful of relaxed atomic operations — no lock, no allocation, no syscall — so the handles
//! are safe to hit from the hottest paths in the system (the WAL append loop, the reactor's
//! read pump, the snapshot publisher).  Registration and snapshotting are the cold path and go
//! through the [`Registry`](crate::Registry)'s mutex.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Whether recording is compiled in at all.  With the `off` feature the branch below is a
/// compile-time constant and every recording body folds away.
#[inline(always)]
fn compiled_in() -> bool {
    cfg!(not(feature = "off"))
}

/// A monotonically increasing event count.
#[derive(Clone)]
pub struct Counter {
    pub(crate) value: Arc<AtomicU64>,
    pub(crate) on: Arc<AtomicBool>,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if compiled_in() && self.on.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that goes up and down (queue depths, open connections, lag).
#[derive(Clone)]
pub struct Gauge {
    pub(crate) value: Arc<AtomicI64>,
    pub(crate) on: Arc<AtomicBool>,
}

impl Gauge {
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        if compiled_in() && self.on.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Overwrites the gauge with an absolute reading.
    #[inline]
    pub fn set(&self, v: i64) {
        if compiled_in() && self.on.load(Ordering::Relaxed) {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets: bounds 1, 2, 4, …, 2³⁰ plus a +Inf overflow bucket.
/// 2³⁰ µs ≈ 18 minutes and 2³⁰ bytes = 1 GiB, so the fixed ladder covers every latency,
/// size and count this system records without per-histogram configuration.
pub(crate) const BUCKETS: usize = 32;

/// The inclusive upper bound of bucket `i` (the last bucket is +Inf).
#[inline]
pub(crate) fn bucket_bound(i: usize) -> u64 {
    1u64 << i
}

/// Index of the bucket a value falls into: the smallest `i` with `value <= 2^i`.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value <= 1 {
        return 0;
    }
    let i = 64 - (value - 1).leading_zeros() as usize;
    i.min(BUCKETS - 1)
}

/// A fixed-bucket distribution: power-of-two bounds, per-bucket atomic counts, plus a running
/// sum and count.  Percentiles are extracted from snapshots ([`HistogramSnapshot`]).
#[derive(Clone)]
pub struct Histogram {
    pub(crate) inner: Arc<HistogramInner>,
    pub(crate) on: Arc<AtomicBool>,
}

pub(crate) struct HistogramInner {
    pub(crate) buckets: [AtomicU64; BUCKETS],
    pub(crate) sum: AtomicU64,
    pub(crate) count: AtomicU64,
}

impl HistogramInner {
    pub(crate) fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation (microseconds, bytes, items — the unit is the metric's name
    /// suffix, see `docs/OBSERVABILITY.md`).
    #[inline]
    pub fn observe(&self, value: u64) {
        if compiled_in() && self.on.load(Ordering::Relaxed) {
            let inner = &*self.inner;
            inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            inner.sum.fetch_add(value, Ordering::Relaxed);
            inner.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a duration in whole microseconds.
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total number of observations so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    pub(crate) fn snapshot(&self, name: &str) -> HistogramSnapshot {
        // Count first, then buckets: a racing `observe` bumps buckets before `count` is read
        // only if it bumped them after we read `count`… ordering is relaxed either way, so the
        // snapshot is merely *a* consistent-enough view; exact-count tests quiesce writers.
        let count = self.inner.count.load(Ordering::Relaxed);
        let sum = self.inner.sum.load(Ordering::Relaxed);
        let mut cumulative = 0u64;
        let mut buckets = Vec::with_capacity(BUCKETS);
        for (i, b) in self.inner.buckets.iter().enumerate() {
            cumulative += b.load(Ordering::Relaxed);
            buckets.push((bucket_bound(i), cumulative));
        }
        HistogramSnapshot { name: name.to_string(), count, sum, buckets }
    }
}

/// A point-in-time copy of one histogram: cumulative counts per upper bound, ready for
/// percentile extraction or Prometheus exposition.  The last bucket's bound stands in for
/// +Inf (every observation is clamped into the fixed ladder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    /// `(upper_bound, cumulative_count)` pairs in ascending bound order.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The upper bound of the bucket containing the `q`-quantile observation (`0.0 ..= 1.0`).
    /// Returns 0 for an empty histogram.  Quantiles of a bucketed distribution are upper
    /// bounds, not exact values: p50 ≤ p90 ≤ p99 always holds.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        for &(bound, cumulative) in &self.buckets {
            if cumulative >= rank {
                return bound;
            }
        }
        self.buckets.last().map(|&(bound, _)| bound).unwrap_or(0)
    }

    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Mean observation (integer division; 0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_the_smallest_covering_power_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 30), 30);
        assert_eq!(bucket_index((1 << 30) + 1), BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }
}
