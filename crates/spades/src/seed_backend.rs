//! SPADES on top of the SEED DBMS.
//!
//! Every tool operation maps onto SEED's operational interface: elements are objects of the
//! Figure 3 schema, data flows are `Access`/`Read`/`Write` relationships, refinement is
//! re-classification, descriptions and keywords are dependent objects, containment is the
//! ACYCLIC `Contained` association, and checkpoints are SEED versions.  Consistency checking
//! happens inside SEED on every update — the tool gets it for free (and pays for it; see the
//! `spades_overhead` benchmark).

use seed_core::{Database, NameSegment, ObjectId, SeedError, Value};
use seed_schema::figure3_schema;

use crate::backend::SpecBackend;
use crate::error::{SpadesError, SpadesResult};
use crate::model::{ElementInfo, ElementKind, FlowKind};

/// The tool backed by a SEED database.
pub struct SeedBackend {
    db: Database,
    checkpoints: usize,
}

impl Default for SeedBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl SeedBackend {
    /// Creates a backend over a fresh SEED database with the Figure 3 schema.
    pub fn new() -> Self {
        Self { db: Database::new(figure3_schema()), checkpoints: 0 }
    }

    /// Creates a backend with consistency checking disabled (used by benchmarks to isolate the
    /// checking cost; a real deployment keeps it on).
    pub fn without_consistency_checking() -> Self {
        let mut backend = Self::new();
        backend.db.set_consistency_checking(false);
        backend
    }

    /// Access to the underlying database (for reports, queries and examples).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the underlying database (e.g. to register attached procedures).
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    fn object_id(&self, name: &str) -> SpadesResult<ObjectId> {
        self.db
            .object_by_name(name)
            .map(|o| o.id)
            .map_err(|_| SpadesError::Unknown(name.to_string()))
    }

    fn kind_of(&self, id: ObjectId) -> SpadesResult<ElementKind> {
        let record = self.db.object(id).map_err(SpadesError::from)?;
        let class_name = self
            .db
            .schema()
            .class(record.class)
            .map(|c| c.name.clone())
            .map_err(|e| SpadesError::Seed(SeedError::Schema(e)))?;
        Ok(match class_name.as_str() {
            "Thing" => ElementKind::Thing,
            "Data" => ElementKind::Data,
            "InputData" => ElementKind::InputData,
            "OutputData" => ElementKind::OutputData,
            "Action" => ElementKind::Action,
            _ => ElementKind::Thing,
        })
    }

    /// Finds the relationship representing the flow between `data` and `action`, if any.
    fn flow_relationship(
        &self,
        data: ObjectId,
        action: ObjectId,
    ) -> Option<seed_core::RelationshipId> {
        let schema = self.db.schema();
        let access = schema.association_id("Access").ok()?;
        let mut hierarchy = schema.association_descendants(access);
        hierarchy.push(access);
        self.db
            .relationships(data)
            .into_iter()
            .find(|rel| {
                hierarchy.contains(&rel.record.association)
                    && rel.record.involves(data)
                    && rel.record.involves(action)
            })
            .map(|rel| rel.record.id)
    }

    fn flow_kind_of(&self, rel: seed_core::RelationshipId) -> SpadesResult<FlowKind> {
        let record = self.db.relationship(rel).map_err(SpadesError::from)?;
        let name = self
            .db
            .schema()
            .association(record.association)
            .map(|a| a.name.clone())
            .map_err(|e| SpadesError::Seed(SeedError::Schema(e)))?;
        Ok(match name.as_str() {
            "Read" => FlowKind::Read,
            "Write" => FlowKind::Write,
            _ => FlowKind::Access,
        })
    }

    fn description_child(&self, id: ObjectId) -> Option<seed_core::ObjectRecord> {
        self.db
            .children(id)
            .into_iter()
            .map(|c| c.record)
            .find(|c| c.name.leaf().name == "Description")
    }
}

impl SpecBackend for SeedBackend {
    fn backend_name(&self) -> &'static str {
        "SPADES on SEED"
    }

    fn add_element(&mut self, name: &str, kind: ElementKind) -> SpadesResult<()> {
        if self.db.object_by_name(name).is_ok() {
            return Err(SpadesError::Duplicate(name.to_string()));
        }
        self.db.create_object(kind.class_name(), name)?;
        Ok(())
    }

    fn refine_element(&mut self, name: &str, kind: ElementKind) -> SpadesResult<()> {
        let id = self.object_id(name)?;
        let current = self.kind_of(id)?;
        if !current.can_refine_to(kind) {
            return Err(SpadesError::InvalidRefinement(format!(
                "'{name}' is {current} and cannot become {kind}"
            )));
        }
        self.db.reclassify_object(id, kind.class_name())?;
        Ok(())
    }

    fn add_flow(&mut self, data: &str, action: &str, kind: FlowKind) -> SpadesResult<()> {
        let data_id = self.object_id(data)?;
        let action_id = self.object_id(action)?;
        let assoc = kind.association_name();
        // Role 0 is the data-side role, whatever its name (from / to).
        let role0 = self
            .db
            .schema()
            .association_by_name(assoc)
            .map(|a| a.roles[0].name.clone())
            .map_err(|e| SpadesError::Seed(SeedError::Schema(e)))?;
        self.db.create_relationship(assoc, &[(role0.as_str(), data_id), ("by", action_id)])?;
        Ok(())
    }

    fn refine_flow(&mut self, data: &str, action: &str, kind: FlowKind) -> SpadesResult<()> {
        let data_id = self.object_id(data)?;
        let action_id = self.object_id(action)?;
        let rel = self
            .flow_relationship(data_id, action_id)
            .ok_or_else(|| SpadesError::Unknown(format!("flow between '{data}' and '{action}'")))?;
        let current = self.flow_kind_of(rel)?;
        if !current.can_refine_to(kind) {
            return Err(SpadesError::InvalidRefinement(format!(
                "flow '{data}'–'{action}' is {current} and cannot become {kind}"
            )));
        }
        // Refining to Read/Write may require the data element itself to be refined first
        // (Read.from needs InputData, Write.to needs OutputData) — SEED's consistency checker
        // enforces that; we surface its error as-is.
        self.db.reclassify_relationship(rel, kind.association_name())?;
        Ok(())
    }

    fn set_description(&mut self, name: &str, text: &str) -> SpadesResult<()> {
        let id = self.object_id(name)?;
        match self.description_child(id) {
            Some(existing) => {
                self.db.set_value(existing.id, Value::string(text))?;
            }
            None => {
                // Actions carry `Description`; data carries a Text/Body structure.  Use the
                // dependent class that exists for the element's class.
                let kind = self.kind_of(id)?;
                if kind == ElementKind::Action {
                    self.db.create_dependent_named(
                        id,
                        "Description",
                        NameSegment::plain("Description"),
                        Value::string(text),
                    )?;
                } else {
                    let text_obj = self.db.create_dependent(id, "Text", Value::Undefined)?;
                    let body = self.db.create_dependent_named(
                        text_obj,
                        "Body",
                        NameSegment::plain("Body"),
                        Value::Undefined,
                    )?;
                    self.db.create_dependent_named(
                        body,
                        "Contents",
                        NameSegment::plain("Contents"),
                        Value::text(text),
                    )?;
                }
            }
        }
        Ok(())
    }

    fn add_keyword(&mut self, name: &str, keyword: &str) -> SpadesResult<()> {
        let id = self.object_id(name)?;
        // Keywords live under Data.Text.Body.Keywords[i]; create the Text/Body spine on demand.
        let text = match self
            .db
            .children(id)
            .into_iter()
            .map(|c| c.record)
            .find(|c| c.name.leaf().name == "Text" || c.name.leaf().name.starts_with("Text["))
        {
            Some(t) => t.id,
            None => self.db.create_dependent_named(
                id,
                "Text",
                NameSegment::plain("Text"),
                Value::Undefined,
            )?,
        };
        let body = match self
            .db
            .children(text)
            .into_iter()
            .map(|c| c.record)
            .find(|c| c.name.leaf().name == "Body")
        {
            Some(b) => b.id,
            None => self.db.create_dependent_named(
                text,
                "Body",
                NameSegment::plain("Body"),
                Value::Undefined,
            )?,
        };
        self.db.create_dependent(body, "Keywords", Value::string(keyword))?;
        Ok(())
    }

    fn contain(&mut self, inner: &str, outer: &str) -> SpadesResult<()> {
        let inner_id = self.object_id(inner)?;
        let outer_id = self.object_id(outer)?;
        self.db.create_relationship("Contained", &[("in", inner_id), ("container", outer_id)])?;
        Ok(())
    }

    fn remove_element(&mut self, name: &str) -> SpadesResult<()> {
        let id = self.object_id(name)?;
        self.db.delete_object(id)?;
        Ok(())
    }

    fn element(&self, name: &str) -> SpadesResult<ElementInfo> {
        let id = self.object_id(name)?;
        let kind = self.kind_of(id)?;
        let description = match self.description_child(id) {
            Some(d) if !d.value.is_undefined() => d.value.as_str().map(|s| s.to_string()),
            _ => {
                // Data elements keep their text under Text.Body.Contents.
                self.db
                    .objects_with_name_prefix(&format!("{name}.Text"))
                    .into_iter()
                    .find(|o| o.name.leaf().name == "Contents")
                    .and_then(|o| o.value.as_str().map(|s| s.to_string()))
            }
        };
        let mut keywords: Vec<String> = self
            .db
            .objects_with_name_prefix(&format!("{name}."))
            .into_iter()
            .filter(|o| o.name.leaf().name == "Keywords")
            .filter_map(|o| o.value.as_str().map(|s| s.to_string()))
            .collect();
        keywords.sort();
        let schema = self.db.schema();
        let access =
            schema.association_id("Access").map_err(|e| SpadesError::Seed(SeedError::Schema(e)))?;
        let mut hierarchy = schema.association_descendants(access);
        hierarchy.push(access);
        let mut flows = Vec::new();
        for rel in self.db.relationships(id) {
            if !hierarchy.contains(&rel.record.association) {
                continue;
            }
            let kind = self.flow_kind_of(rel.record.id)?;
            let data_obj = rel.record.bindings.first().map(|(_, o)| *o);
            let action_obj = rel.record.bindings.get(1).map(|(_, o)| *o);
            if let (Some(d), Some(a)) = (data_obj, action_obj) {
                let data_name = self.db.object(d).map(|o| o.name.to_string()).unwrap_or_default();
                let action_name = self.db.object(a).map(|o| o.name.to_string()).unwrap_or_default();
                flows.push((data_name, kind, action_name));
            }
        }
        flows.sort();
        Ok(ElementInfo { name: name.to_string(), kind, description, keywords, flows })
    }

    fn element_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .db
            .objects_of_class("Thing", true)
            .unwrap_or_default()
            .into_iter()
            .map(|o| o.name.to_string())
            .collect();
        names.sort();
        names
    }

    fn flow_count(&self) -> usize {
        let schema = self.db.schema();
        let Ok(access) = schema.association_id("Access") else { return 0 };
        let mut hierarchy = schema.association_descendants(access);
        hierarchy.push(access);
        self.db
            .store()
            .all_relationships()
            .filter(|r| r.is_visible() && hierarchy.contains(&r.association))
            .count()
    }

    fn incompleteness_findings(&self) -> usize {
        self.db.completeness_report().len()
    }

    fn checkpoint(&mut self, comment: &str) -> SpadesResult<String> {
        let version = self.db.create_version(comment)?;
        self.checkpoints += 1;
        Ok(version.to_string())
    }

    fn checkpoint_count(&self) -> usize {
        self.checkpoints
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refinement_is_checked_by_seed() {
        let mut backend = SeedBackend::new();
        backend.add_element("Alarms", ElementKind::Data).unwrap();
        backend.add_element("Sensor", ElementKind::Action).unwrap();
        backend.add_flow("Alarms", "Sensor", FlowKind::Access).unwrap();
        // Refining the flow to Write before the data is known to be an output is rejected by
        // SEED's consistency checker (Write.to requires OutputData).
        let err = backend.refine_flow("Alarms", "Sensor", FlowKind::Write).unwrap_err();
        assert!(matches!(err, SpadesError::Seed(SeedError::Inconsistent(_))));
        // After refining the element, the flow refinement succeeds.
        backend.refine_element("Alarms", ElementKind::OutputData).unwrap();
        backend.refine_flow("Alarms", "Sensor", FlowKind::Write).unwrap();
        let info = backend.element("Alarms").unwrap();
        assert_eq!(info.flows[0].1, FlowKind::Write);
    }

    #[test]
    fn invalid_tool_level_refinements_rejected_before_seed() {
        let mut backend = SeedBackend::new();
        backend.add_element("Sensor", ElementKind::Action).unwrap();
        let err = backend.refine_element("Sensor", ElementKind::Data).unwrap_err();
        assert!(matches!(err, SpadesError::InvalidRefinement(_)));
        assert!(backend.refine_element("Ghost", ElementKind::Data).is_err());
        assert!(backend.add_element("Sensor", ElementKind::Action).is_err());
    }

    #[test]
    fn containment_is_acyclic() {
        let mut backend = SeedBackend::new();
        backend.add_element("A", ElementKind::Action).unwrap();
        backend.add_element("B", ElementKind::Action).unwrap();
        backend.contain("A", "B").unwrap();
        let err = backend.contain("B", "A").unwrap_err();
        assert!(matches!(err, SpadesError::Seed(SeedError::Inconsistent(_))));
    }

    #[test]
    fn descriptions_keywords_and_reports() {
        let mut backend = SeedBackend::new();
        backend.add_element("Alarms", ElementKind::Data).unwrap();
        backend
            .set_description("Alarms", "Alarms are represented in an alarm display matrix")
            .unwrap();
        backend.add_keyword("Alarms", "Alarmhandling").unwrap();
        backend.add_keyword("Alarms", "Display").unwrap();
        let info = backend.element("Alarms").unwrap();
        assert_eq!(
            info.description.as_deref(),
            Some("Alarms are represented in an alarm display matrix")
        );
        assert_eq!(info.keywords.len(), 2);
        // Updating the description of an action replaces the value in place.
        backend.add_element("Sensor", ElementKind::Action).unwrap();
        backend.set_description("Sensor", "v1").unwrap();
        backend.set_description("Sensor", "v2").unwrap();
        assert_eq!(backend.element("Sensor").unwrap().description.as_deref(), Some("v2"));
        assert!(backend.incompleteness_findings() > 0);
        assert_eq!(backend.checkpoint("snap").unwrap(), "1.0");
        assert_eq!(backend.database().versions().len(), 1);
    }
}
