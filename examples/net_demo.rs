//! The two-level scheme over a real transport: a TCP server on loopback, the SPADES tool as a
//! remote client.
//!
//! ```sh
//! cargo run --release --example net_demo
//! ```
//!
//! The demo (1) runs the same SPADES editing workload through the in-process backend and
//! through a [`RemoteClient`] over TCP and diffs the resulting specification reports —
//! byte-identical modulo the backend label; (2) shows two remote clients racing for the same
//! object (exactly one wins, the loser learns the holder); (3) kills a client mid-checkout and
//! watches the server reclaim its locks — the paper's crash-recovery rule.

use seed::core::Database;
use seed::net::{RemoteClient, SeedNetServer};
use seed::schema::figure3_schema;
use seed::server::{SeedServer, ServerError};
use seed::spades::{
    specification_report, RemoteBackend, SeedBackend, SpecBackend, Workload, WorkloadConfig,
};

fn main() {
    println!("== seed-net demo: the SPADES tool over TCP ==\n");
    let server =
        SeedNetServer::bind(SeedServer::new(Database::new(figure3_schema())), "127.0.0.1:0")
            .expect("bind loopback");
    let addr = server.local_addr();
    println!("central SEED server listening on {addr}\n");

    // 1. The same workload, in-process and over the wire.
    let workload = Workload::generate(&WorkloadConfig {
        data_elements: 10,
        actions: 5,
        checkpoint_every: 25,
        ..WorkloadConfig::default()
    });
    println!("applying a {}-operation SPADES workload twice:", workload.len());

    let mut local = SeedBackend::new();
    let rejected_local = workload.apply(&mut local);
    println!("  in-process backend: {rejected_local} rejections");

    let client = RemoteClient::connect(addr).expect("connect");
    println!(
        "  remote client {} connected (protocol v{}, server '{}')",
        client.id(),
        client.protocol_version(),
        client.server_banner()
    );
    let mut remote = RemoteBackend::new(client).expect("schema fetch");
    let rejected_remote = workload.apply(&mut remote);
    println!("  remote backend:     {rejected_remote} rejections");

    let local_report = specification_report(&local);
    let remote_report =
        specification_report(&remote).replace(remote.backend_name(), local.backend_name());
    assert_eq!(local_report, remote_report, "remote and in-process results must be identical");
    println!("  reports are byte-identical ({} bytes); first lines:", local_report.len());
    for line in local_report.lines().take(4) {
        println!("    | {line}");
    }

    // 2. Two clients race for the same object.
    println!("\ntwo clients race to check out 'Data000':");
    let mut alice = RemoteClient::connect(addr).expect("connect alice");
    let mut bob = RemoteClient::connect(addr).expect("connect bob");
    alice.checkout(&["Data000"]).expect("alice wins");
    println!("  client {} checked it out (write lock taken)", alice.id());
    match bob.checkout(&["Data000"]) {
        Err(ServerError::Locked { object, holder }) => {
            println!("  client {} was refused: '{object}' is held by client {holder}", bob.id());
        }
        other => panic!("expected a lock conflict, got {other:?}"),
    }
    alice.release().expect("release");

    // 3. A client vanishes mid-checkout; its locks come back on disconnect.
    println!("\na client crashes while holding checked-out data:");
    {
        let mut doomed = RemoteClient::connect(addr).expect("connect doomed");
        doomed.checkout(&["Data001"]).expect("checkout");
        println!("  client {} checked out 'Data001' ... and vanished", doomed.id());
        // Dropped here: the TCP connection dies without a release.
    }
    let core = server.core();
    while core.locked_count() > 0 {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    println!("  server reclaimed its locks ({} held now)", core.locked_count());
    bob.checkout(&["Data001"]).expect("the object is free again");
    println!("  client {} could check 'Data001' out afterwards", bob.id());

    server.shutdown();
    println!("\nserver shut down cleanly — demo complete");
}
