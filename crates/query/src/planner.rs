//! Cost-aware physical planning: lower a parsed [`Query`] onto the cheapest access path.
//!
//! The executor used to resolve every query by scanning the full class extent and filtering.
//! The planner instead inspects the query's selections and picks, by simple cardinality
//! estimates read off the database's indexes, one of four access paths:
//!
//! | access path | backing structure | cost |
//! |---|---|---|
//! | [`AccessPath::ByName`] | ordered name index (point probe) | `O(log n)` |
//! | [`AccessPath::ByNamePrefix`] | ordered name index (range scan) | `O(log n + hits)` |
//! | [`AccessPath::ByValue`] | secondary value index ([`seed_core::index`]) | `O(log n + hits)` |
//! | [`AccessPath::ClassScan`] | class extents (full scan) | `O(n)` |
//!
//! The selection that becomes the access path is *consumed* — it is not re-checked during
//! execution; every other selection stays as a residual filter, so indexed execution returns
//! exactly the result set of the scan fallback ([`crate::exec::execute_scan`]).  `explain`
//! renders the chosen plan instead of running it; the format is specified in `docs/QUERY.md`.
//!
//! ```
//! use seed_core::Database;
//! use seed_schema::figure3_schema;
//!
//! let mut db = Database::new(figure3_schema());
//! db.create_object("Data", "Alarms").unwrap();
//! db.create_object("Data", "ProcessData").unwrap();
//! db.create_object("Action", "AlarmHandler").unwrap();
//! let plan = seed_query::plan(&db, &seed_query::parse(r#"find Thing where name = "Alarms""#).unwrap()).unwrap();
//! assert!(plan.render().contains("probe name index"));
//! let fallback = seed_query::plan(&db, &seed_query::parse("count Data").unwrap()).unwrap();
//! assert!(fallback.render().contains("scan extent"));
//! ```

use std::fmt::Write as _;

use seed_core::{Database, ValueOp};

use crate::ast::{Comparison, Navigation, Query, Selection};
use crate::error::{QueryError, QueryResult};

/// The physical access path a [`Plan`] starts from.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Full scan of the class extent (and its specializations unless `exactly`) — the fallback
    /// when no selection is indexable or the extent is already smaller than any index result.
    ClassScan {
        /// Estimated number of rows scanned.
        rows: usize,
    },
    /// Point probe of the ordered name index with an exact hierarchical name.
    ByName {
        /// The probed name.
        name: String,
    },
    /// Range scan of the ordered name index over a hierarchical-name prefix.
    ByNamePrefix {
        /// The scanned prefix.
        prefix: String,
        /// Estimated number of rows in the range.
        rows: usize,
    },
    /// Probe (`=`) or range scan (`<` / `>`) of the secondary value index.
    ByValue {
        /// The comparison the index answers.
        op: Comparison,
        /// The query literal.
        literal: String,
        /// Estimated number of matching index entries.
        rows: usize,
    },
}

impl AccessPath {
    /// The cardinality estimate that ranked this path (point probes count as one row).
    pub fn estimated_rows(&self) -> usize {
        match self {
            AccessPath::ClassScan { rows }
            | AccessPath::ByNamePrefix { rows, .. }
            | AccessPath::ByValue { rows, .. } => *rows,
            AccessPath::ByName { .. } => 1,
        }
    }
}

/// An executable physical plan: one access path, the residual filters, the optional navigation
/// step and the output form.  Build with [`plan`], run with [`crate::exec::run_plan`], render
/// with [`Plan::render`].
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The class the query ranges over.
    pub class: String,
    /// Whether specializations are excluded (`exactly`).
    pub exact: bool,
    /// Whether only the cardinality is returned (`count`).
    pub is_count: bool,
    /// The chosen access path.
    pub access: AccessPath,
    /// Index into `selections` of the selection the access path consumed, if any.
    pub consumed: Option<usize>,
    /// All selections of the query (the consumed one is skipped at execution time).
    pub selections: Vec<Selection>,
    /// Optional navigation step (applied after the access path, before residual filters).
    pub navigate: Option<Navigation>,
}

impl Plan {
    /// The residual selections executed as filters (everything the access path did not consume).
    pub fn residual(&self) -> impl Iterator<Item = &Selection> {
        self.selections
            .iter()
            .enumerate()
            .filter(move |(i, _)| Some(*i) != self.consumed)
            .map(|(_, s)| s)
    }

    /// Renders the plan in the `explain` output format (see `docs/QUERY.md`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let scope = if self.exact { String::new() } else { " (+specializations)".to_string() };
        let _ = writeln!(
            out,
            "plan: {} {}{}",
            if self.is_count { "count" } else { "find" },
            self.class,
            scope
        );
        let rows = |n: usize| if n == 1 { "~1 row".to_string() } else { format!("~{n} rows") };
        let access = match &self.access {
            AccessPath::ClassScan { rows: n } => {
                format!("scan extent of {} ({})", self.class, rows(*n))
            }
            AccessPath::ByName { name } => {
                format!("probe name index for \"{name}\" (~1 row)")
            }
            AccessPath::ByNamePrefix { prefix, rows: n } => {
                format!("range scan name index, prefix \"{prefix}\" ({})", rows(*n))
            }
            AccessPath::ByValue { op, literal, rows: n } => {
                let (kind, op) = match op {
                    Comparison::Equal => ("probe", "="),
                    Comparison::Less => ("range scan", "<"),
                    Comparison::Greater => ("range scan", ">"),
                    Comparison::NotEqual => ("scan", "!="),
                };
                format!(
                    "{kind} value index of {}, value {op} \"{literal}\" ({})",
                    self.class,
                    rows(*n)
                )
            }
        };
        let _ = writeln!(out, "  access  {access}");
        if let Some(nav) = &self.navigate {
            let _ = writeln!(
                out,
                "  join    navigate {}.{} from \"{}\"",
                nav.association, nav.to_role, nav.from_object
            );
        }
        let residual: Vec<String> = self.residual().map(render_selection).collect();
        let _ = writeln!(
            out,
            "  filter  {}",
            if residual.is_empty() { "none".to_string() } else { residual.join(" and ") }
        );
        let _ = write!(out, "  output  {}", if self.is_count { "count" } else { "objects" });
        out
    }
}

fn render_selection(selection: &Selection) -> String {
    match selection {
        Selection::NameEquals(name) => format!("name = \"{name}\""),
        Selection::NamePrefix(prefix) => format!("name prefix \"{prefix}\""),
        Selection::Value(op, literal) => {
            let op = match op {
                Comparison::Equal => "=",
                Comparison::NotEqual => "!=",
                Comparison::Less => "<",
                Comparison::Greater => ">",
            };
            format!("value {op} \"{literal}\"")
        }
        Selection::Related { association, role } => format!("related {association}.{role}"),
        Selection::Incomplete => "incomplete".to_string(),
    }
}

fn value_op(op: Comparison) -> Option<ValueOp> {
    match op {
        Comparison::Equal => Some(ValueOp::Eq),
        Comparison::Less => Some(ValueOp::Less),
        Comparison::Greater => Some(ValueOp::Greater),
        Comparison::NotEqual => None,
    }
}

/// Plans a query: resolves the class, estimates the cardinality of every indexable selection
/// and picks the cheapest access path (`explain` wrappers are transparent).  Fails with
/// [`QueryError::Unknown`] when the class does not exist.
pub fn plan(db: &Database, query: &Query) -> QueryResult<Plan> {
    let (class, exact, selections, navigate, is_count) = match query {
        Query::Explain(inner) => return plan(db, inner),
        Query::Find { class, exact, selections, navigate } => {
            (class, *exact, selections, navigate, false)
        }
        Query::Count { class, exact, selections, navigate } => {
            (class, *exact, selections, navigate, true)
        }
    };
    let scan_rows = db
        .class_extent_estimate(class, !exact)
        .map_err(|_| QueryError::Unknown(format!("class '{class}'")))?;
    let mut access = AccessPath::ClassScan { rows: scan_rows };
    let mut consumed = None;
    let mut best = scan_rows;
    for (i, selection) in selections.iter().enumerate() {
        let candidate = match selection {
            Selection::NameEquals(name) => Some(AccessPath::ByName { name: name.clone() }),
            Selection::NamePrefix(prefix) => Some(AccessPath::ByNamePrefix {
                prefix: prefix.clone(),
                rows: db.name_prefix_estimate(prefix, scan_rows),
            }),
            Selection::Value(op, literal) => value_op(*op).map(|vop| AccessPath::ByValue {
                op: *op,
                literal: literal.clone(),
                // Counting stops at the scan cost — an index path at least that expensive
                // loses anyway, and the early exit bounds plan-time work.
                rows: db
                    .value_index_estimate(class, !exact, vop, literal, scan_rows)
                    .unwrap_or(scan_rows),
            }),
            Selection::Related { .. } | Selection::Incomplete => None,
        };
        if let Some(candidate) = candidate {
            if candidate.estimated_rows() < best {
                best = candidate.estimated_rows();
                access = candidate;
                consumed = Some(i);
            }
        }
    }
    Ok(Plan {
        class: class.clone(),
        exact,
        is_count,
        access,
        consumed,
        selections: selections.clone(),
        navigate: navigate.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use seed_core::{Database, Value};
    use seed_schema::figure3_schema;

    fn sample() -> Database {
        let mut db = Database::new(figure3_schema());
        for i in 0..20 {
            let d = db.create_object("OutputData", &format!("Out{i:02}")).unwrap();
            let text = db.create_dependent(d, "Text", Value::Undefined).unwrap();
            db.create_dependent(text, "Selector", Value::string(format!("S{i:02}"))).unwrap();
        }
        db
    }

    fn plan_for(db: &Database, q: &str) -> Plan {
        plan(db, &parse(q).unwrap()).unwrap()
    }

    #[test]
    fn name_probe_beats_a_wider_value_probe() {
        let mut db = sample();
        // Two Selectors share the value "dup", so the value probe estimates 2 rows while the
        // name probe estimates 1 — the planner must take the name probe.
        for name in ["Out00.Text[0].Selector", "Out01.Text[0].Selector"] {
            let id = db.object_by_name(name).unwrap().id;
            db.set_value(id, Value::string("dup")).unwrap();
        }
        let q =
            r#"find Data.Text.Selector where value = "dup" and name = "Out01.Text[0].Selector""#;
        let p = plan_for(&db, q);
        assert!(matches!(p.access, AccessPath::ByName { .. }), "got {:?}", p.access);
        assert_eq!(p.consumed, Some(1));
        assert_eq!(p.residual().count(), 1);
    }

    #[test]
    fn an_empty_value_probe_beats_a_name_probe() {
        let db = sample();
        // No Thing-ranged object carries a value, so the value index estimates 0 rows — cheaper
        // than the 1-row name probe, and still correct (the conjunction is empty either way).
        let p = plan_for(&db, r#"find Thing where value = "S01" and name = "Out01""#);
        match &p.access {
            AccessPath::ByValue { rows, .. } => assert_eq!(*rows, 0),
            other => panic!("expected a value probe, got {other:?}"),
        }
    }

    #[test]
    fn value_probe_is_chosen_for_equality_on_an_indexed_value() {
        let db = sample();
        let p = plan_for(&db, r#"find Data.Text.Selector where value = "S05""#);
        match &p.access {
            AccessPath::ByValue { op: Comparison::Equal, literal, rows } => {
                assert_eq!(literal, "S05");
                assert_eq!(*rows, 1);
            }
            other => panic!("expected a value probe, got {other:?}"),
        }
        assert_eq!(p.residual().count(), 0, "the probe consumed the only selection");
    }

    #[test]
    fn prefix_scan_is_chosen_only_when_narrower_than_the_extent() {
        let db = sample();
        // "Out05" covers one root plus its two dependents: 3 rows < the 20-row extent.
        let p = plan_for(&db, r#"find Data where name prefix "Out05""#);
        match &p.access {
            AccessPath::ByNamePrefix { prefix, rows } => {
                assert_eq!(prefix, "Out05");
                assert_eq!(*rows, 3);
            }
            other => panic!("expected a prefix range scan, got {other:?}"),
        }
        // "Out0" covers 30 name-index entries — wider than the 20-row extent, so the planner
        // correctly stays with the scan.
        let p = plan_for(&db, r#"find Data where name prefix "Out0""#);
        assert!(matches!(p.access, AccessPath::ClassScan { rows: 20 }), "got {:?}", p.access);
    }

    #[test]
    fn unindexable_selections_fall_back_to_the_scan() {
        let db = sample();
        for q in [
            "find Data",
            r#"find Data where value != "x""#,
            "find Action where incomplete",
            "find Data where related Access.from",
        ] {
            let p = plan_for(&db, q);
            assert!(matches!(p.access, AccessPath::ClassScan { .. }), "{q} should scan");
            assert_eq!(p.consumed, None);
        }
    }

    #[test]
    fn explain_is_transparent_and_renders_the_path() {
        let db = sample();
        let p = plan_for(&db, r#"explain find Data.Text.Selector where value = "S05""#);
        let text = p.render();
        assert!(text.contains("probe value index"), "got: {text}");
        assert!(text.contains("output  objects"), "got: {text}");
        let p = plan_for(&db, r#"explain count Action navigate Access.by from "Out01""#);
        let text = p.render();
        assert!(text.contains("join    navigate Access.by from \"Out01\""), "got: {text}");
        assert!(text.contains("output  count"), "got: {text}");
    }

    #[test]
    fn unknown_class_is_reported() {
        let db = sample();
        assert!(plan(&db, &parse("find Ghost").unwrap()).is_err());
    }
}
