//! Deterministic crash-injection harness for the segmented WAL.
//!
//! A [`FaultFs`] wraps the log's segment storage with a *crash point*: a budget of disk-op
//! units (one unit per written byte, one per metadata operation) after which every operation
//! fails — the process is dead.  Sweeping the crash point across **every** unit of a workload
//! kills the log at every byte boundary of every append, every segment rotation (header
//! creation), every checkpoint prune (segment deletion) and every sync, including mid-operation
//! tears: an append or segment creation cut by the budget applies only a byte prefix, exactly
//! like a torn write.
//!
//! For each crash point the harness reopens the surviving bytes and asserts the recovery
//! contract:
//!
//! * recovery always succeeds (no crash state is unopenable),
//! * the recovered effects are a **contiguous run of whole transactions** — never a torn or
//!   reordered one,
//! * every transaction whose commit sync was acknowledged before the crash (and that a
//!   checkpoint had not already pruned) is recovered,
//! * parallel segment replay recovers byte-for-byte what serial replay recovers.
//!
//! This extends the torn-tail tests of the incremental-durability PR to torn *rotations* and
//! torn *segment deletions*, which only exist in a segmented log.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use seed_storage::wal::{
    replay_committed, LogRecord, MemorySegmentIo, SegmentId, SegmentIo, WalConfig, WriteAheadLog,
};
use seed_storage::{StorageError, StorageResult};

/// The crash point: how many disk-op units the process survives before it dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CrashPoint(u64);

/// Segment storage that dies at a [`CrashPoint`].
///
/// Costs: 1 unit per byte written (`append` and the contents of `create`), 1 unit per metadata
/// operation (`create` itself, `sync`, `delete`, `truncate`).  Reads and listings are free.
/// When the budget runs out mid-write, the byte prefix that fit is applied — a torn write —
/// and the operation (plus everything after it) fails.
struct FaultFs {
    segments: Mutex<BTreeMap<SegmentId, Vec<u8>>>,
    remaining: AtomicU64,
}

impl FaultFs {
    fn new(crash_point: CrashPoint) -> Self {
        Self { segments: Mutex::new(BTreeMap::new()), remaining: AtomicU64::new(crash_point.0) }
    }

    /// Takes up to `want` units from the budget, returning how many were granted.
    fn take(&self, want: u64) -> u64 {
        let mut granted = 0;
        let _ = self.remaining.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |left| {
            granted = left.min(want);
            Some(left - granted)
        });
        granted
    }

    fn died() -> StorageError {
        StorageError::Io(std::io::Error::other("injected crash"))
    }

    /// The bytes that survive the crash (what a restarted process would find on disk).
    fn surviving_segments(&self) -> BTreeMap<SegmentId, Vec<u8>> {
        self.segments.lock().clone()
    }

    /// Units consumed so far (used once, with an effectively infinite budget, to size the sweep).
    fn consumed(&self, initial: CrashPoint) -> u64 {
        initial.0 - self.remaining.load(Ordering::SeqCst)
    }
}

impl SegmentIo for FaultFs {
    fn list(&self) -> StorageResult<Vec<SegmentId>> {
        Ok(self.segments.lock().keys().copied().collect())
    }

    fn read(&self, id: SegmentId) -> StorageResult<Vec<u8>> {
        self.segments
            .lock()
            .get(&id)
            .cloned()
            .ok_or_else(|| StorageError::InvalidArgument(format!("no such segment {id}")))
    }

    fn create(&self, id: SegmentId, initial: &[u8]) -> StorageResult<()> {
        if self.take(1) < 1 {
            return Err(Self::died());
        }
        self.segments.lock().insert(id, Vec::new());
        let granted = self.take(initial.len() as u64) as usize;
        self.segments
            .lock()
            .get_mut(&id)
            .expect("just created")
            .extend_from_slice(&initial[..granted]);
        if granted < initial.len() {
            return Err(Self::died());
        }
        Ok(())
    }

    fn append(&self, id: SegmentId, bytes: &[u8]) -> StorageResult<()> {
        let granted = self.take(bytes.len() as u64) as usize;
        {
            let mut segments = self.segments.lock();
            let seg = segments
                .get_mut(&id)
                .ok_or_else(|| StorageError::InvalidArgument(format!("no such segment {id}")))?;
            seg.extend_from_slice(&bytes[..granted]);
        }
        if granted < bytes.len() {
            return Err(Self::died());
        }
        Ok(())
    }

    fn sync(&self, _id: SegmentId) -> StorageResult<()> {
        if self.take(1) < 1 {
            return Err(Self::died());
        }
        Ok(())
    }

    fn truncate(&self, id: SegmentId, len: u64) -> StorageResult<()> {
        if self.take(1) < 1 {
            return Err(Self::died());
        }
        let mut segments = self.segments.lock();
        let seg = segments
            .get_mut(&id)
            .ok_or_else(|| StorageError::InvalidArgument(format!("no such segment {id}")))?;
        seg.truncate(len as usize);
        Ok(())
    }

    fn delete(&self, id: SegmentId) -> StorageResult<()> {
        if self.take(1) < 1 {
            return Err(Self::died());
        }
        self.segments.lock().remove(&id);
        Ok(())
    }
}

/// A small segment cap so the workload rotates constantly, and a budget that retains one
/// checkpoint's worth of segments when a retention floor is set.
fn harness_config() -> WalConfig {
    WalConfig { segment_max_bytes: 96, retention_budget_bytes: 4096 }
}

const TXNS: u64 = 12;

/// One committed transaction's batch: `Begin` / `Put` / `Commit`, with the key naming the
/// transaction so recovered effects identify which transactions survived.
fn batch(txn: u64) -> Vec<LogRecord> {
    vec![
        LogRecord::Begin { txn },
        LogRecord::Put {
            txn,
            key: format!("txn/{txn:04}").into_bytes(),
            value: vec![txn as u8; 24],
        },
        LogRecord::Commit { txn },
    ]
}

/// Drives the workload until it finishes or the crash point kills an operation.  Returns the
/// transactions whose commit sync was acknowledged, and the transactions a completed
/// checkpoint prune has already discarded from the log (their durability moved to the "page
/// store" — out of scope at the WAL level).
fn run_workload(wal: &WriteAheadLog) -> (Vec<u64>, Vec<u64>) {
    let mut acked = Vec::new();
    let mut pruned = Vec::new();
    for txn in 1..=TXNS {
        if wal.append_batch(&batch(txn)).is_err() {
            break;
        }
        if wal.sync().is_err() {
            break;
        }
        acked.push(txn);
        // Checkpoint prune without subscribers after txn 4 (drops everything), and with a
        // lagging subscriber pinned at txn 7's records after txn 8 (torn deletion of the
        // segments below the floor, retention of the rest).
        if txn == 4 {
            wal.set_retention_floor(None);
            if wal.truncate().is_err() {
                break;
            }
            pruned = (1..=4).collect();
        }
        if txn == 8 {
            // Txn 7's batch starts at LSN 19 (6 records per txn pair... exactly: 3 per txn).
            let floor = 3 * 6 + 1; // first LSN of txn 7
            wal.set_retention_floor(Some(floor));
            if wal.truncate().is_err() {
                break;
            }
        }
    }
    (acked, pruned)
}

/// Which transactions the recovered log yields, given the surviving bytes.
fn recover(survivors: BTreeMap<SegmentId, Vec<u8>>) -> (Vec<u64>, Vec<u64>) {
    let io = Arc::new(MemorySegmentIo::from_segments(survivors));
    let wal = WriteAheadLog::with_io(io, harness_config())
        .expect("recovery must succeed from every crash state");
    let serial = wal.read_all().expect("serial replay");
    let parallel = wal.read_all_parallel().expect("parallel replay");
    assert_eq!(parallel, serial, "parallel replay must equal serial replay");
    let txns = replay_committed(&serial)
        .into_iter()
        .map(|(key, value)| {
            let key = String::from_utf8(key).expect("workload keys are utf-8");
            assert!(value.is_some(), "workload writes only puts");
            key.strip_prefix("txn/").expect("workload key shape").parse::<u64>().unwrap()
        })
        .collect();
    let serial_after_reopen = wal.read_all().expect("replay is repeatable");
    assert_eq!(serial_after_reopen, serial);
    (txns, serial.iter().map(|(l, _)| *l).collect())
}

#[test]
fn recovery_yields_a_committed_prefix_at_every_crash_point() {
    // Size the sweep: run the whole workload once with an effectively infinite budget.
    let infinite = CrashPoint(u64::MAX / 2);
    let probe = Arc::new(FaultFs::new(infinite));
    let wal = WriteAheadLog::with_io(probe.clone(), harness_config()).unwrap();
    let (acked, _) = run_workload(&wal);
    assert_eq!(acked.len() as u64, TXNS, "the probe run must complete");
    let total = probe.consumed(infinite);
    // The workload spans appends, syncs, rotations and prunes; make sure the sweep actually
    // covers a non-trivial surface before trusting the loop below.
    assert!(total > 500, "expected a few hundred crash points, got {total}");

    for point in 0..=total {
        let fs = Arc::new(FaultFs::new(CrashPoint(point)));
        // Opening an empty log creates the first segment, which itself can crash; that is a
        // legal crash state too, and recovery below must still cope.
        let (acked, pruned) = match WriteAheadLog::with_io(fs.clone(), harness_config()) {
            Ok(wal) => run_workload(&wal),
            Err(_) => (Vec::new(), Vec::new()),
        };
        let (recovered, lsns) = recover(fs.surviving_segments());

        // Recovered LSNs are contiguous: no holes, no reordering.
        if let (Some(first), Some(last)) = (lsns.first(), lsns.last()) {
            assert_eq!(
                lsns,
                (*first..=*last).collect::<Vec<u64>>(),
                "crash point {point}: recovered LSNs must be contiguous"
            );
        }

        // Recovered transactions form one contiguous run of whole transactions.
        if let (Some(&lo), Some(&hi)) = (recovered.first(), recovered.last()) {
            assert_eq!(
                recovered,
                (lo..=hi).collect::<Vec<u64>>(),
                "crash point {point}: recovered transactions must be a contiguous run"
            );
            assert!(
                hi <= TXNS,
                "crash point {point}: recovered a transaction that was never committed"
            );
        }

        // Durability: every acknowledged transaction survives, unless a completed checkpoint
        // prune discarded it from the log on purpose.
        let lo = recovered.first().copied().unwrap_or(u64::MAX);
        for &txn in &acked {
            if pruned.contains(&txn) || txn < lo {
                // Pruned by a checkpoint that completed (or by one whose deletes partially
                // ran — the hole rule keeps the newest contiguous run).  Either way the
                // records below `lo` were checkpoint-covered, never lost.
                continue;
            }
            assert!(
                recovered.contains(&txn),
                "crash point {point}: acked transaction {txn} lost (recovered {recovered:?})"
            );
        }
    }
}

#[test]
fn the_crash_sweep_covers_rotations_and_deletions() {
    // Meta-test: the workload above must actually exercise the crash surfaces the harness
    // claims to sweep — segment creations (rotations) and deletions (checkpoint prunes).
    let infinite = CrashPoint(u64::MAX / 2);
    let fs = Arc::new(FaultFs::new(infinite));
    let wal = WriteAheadLog::with_io(fs.clone(), harness_config()).unwrap();
    let _ = run_workload(&wal);
    assert!(wal.segment_count() >= 2, "workload must end with rotated segments");
    let survivors = fs.surviving_segments();
    let first = *survivors.keys().next().unwrap();
    assert!(first > 1, "workload must have deleted (pruned) early segments");
    let last = *survivors.keys().last().unwrap();
    assert!(last > first, "workload must have created later segments (rotations)");
}
