//! # seed-schema
//!
//! Schema subsystem of the SEED reproduction (Glinz & Ludewig, ICDE 1986).
//!
//! SEED is based on the entity-relationship approach and extends it with the features a
//! software-engineering environment needs.  A SEED **schema** (Figure 2 and 3 of the paper)
//! declares:
//!
//! * **object classes**, which may be *hierarchically structured*: a class can have dependent
//!   sub-classes with cardinalities (e.g. `Data.Text` with cardinality `0..16`), and leaf
//!   classes carry a value [`Domain`] (e.g. `Data.Text.Selector : STRING`);
//! * **associations** (relationship classes) with named roles, per-role cardinalities and the
//!   `ACYCLIC` structural constraint (e.g. `Contained` imposing a tree on `Action`);
//! * **generalization hierarchies of classes _and_ associations** — the schema-side mechanism
//!   behind SEED's handling of *vague* information (`Thing` ⊒ `Data`, `Action`;
//!   `Access` ⊒ `Read`, `Write`), including *covering* conditions;
//! * **attached procedures** — hooks executed when an item of the schema element is updated,
//!   used for complex integrity constraints.
//!
//! The schema partitions its information into **consistency** information (membership, maximum
//! cardinalities, ACYCLIC, domains, attached procedures — enforced by `seed-core` on every
//! update) and **completeness** information (minimum cardinalities, covering conditions —
//! checked only by explicit analysis operations).  Enforcement lives in `seed-core`.
//!
//! Schemas can be built programmatically with [`SchemaBuilder`], parsed from the textual schema
//! definition language in [`sdl`], validated with [`validate::validate_schema`], and versioned
//! with [`version::SchemaRegistry`].

pub mod association;
pub mod builder;
pub mod cardinality;
pub mod class;
pub mod domain;
pub mod error;
pub mod generalization;
pub mod ids;
pub mod procedure;
pub mod schema;
pub mod sdl;
pub mod validate;
pub mod version;

pub use association::{Association, RelationshipAttribute, Role};
pub use builder::{AssociationBuilder, ClassBuilder, SchemaBuilder};
pub use cardinality::Cardinality;
pub use class::ObjectClass;
pub use domain::Domain;
pub use error::{SchemaError, SchemaResult};
pub use generalization::GeneralizationHierarchy;
pub use ids::{AssociationId, ClassId, SchemaElementId};
pub use procedure::{AttachedProcedure, ProcedureEvent};
pub use schema::Schema;
pub use validate::{validate_schema, SchemaViolation};
pub use version::{SchemaRegistry, SchemaVersionId};

/// Builds the exact schema of **Figure 2** of the paper: classes `Data` (with dependent
/// `Text`/`Body`/`Selector`) and `Action` (with dependent `Description`), associations
/// `Read`, `Write` and the ACYCLIC `Contained`.
///
/// Used throughout the test-suite, the examples and the benchmarks as the canonical small
/// specification schema.
pub fn figure2_schema() -> Schema {
    builder::figure2_schema()
}

/// Builds the schema of **Figure 3** of the paper: Figure 2 extended with the generalizations
/// `Thing` ⊒ {`Data`, `Action`}, `Access` ⊒ {`Read`, `Write`}, the specializations
/// `InputData`/`OutputData` of `Data`, and the attribute classes `NumberOfWrites`,
/// `ErrorHandling` and `Revised : DATE`.
pub fn figure3_schema() -> Schema {
    builder::figure3_schema()
}
