//! Pins the wire contract documented in `docs/PROTOCOL.md`: the worked hex dumps render
//! byte-exactly, the kind/tag tables match the code, and the error tiers behave as documented.
//! Change `crates/net/src/wire.rs` / `crates/net/src/codec.rs`, the document and this test
//! together.

use seed::net::wire::{
    negotiate, read_frame, write_frame, Ack, Hello, LogBatch, Subscribe, Welcome,
};
use seed::net::{FrameKind, WireError, MAX_FRAME_LEN, PROTOCOL_VERSION, PROTOCOL_VERSION_MIN};
use seed::server::{Request, Response, ServerError};
use seed::storage::LogRecord;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect::<Vec<_>>().join(" ")
}

fn frame_bytes(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, kind, payload).unwrap();
    buf
}

#[test]
fn constants_match_the_document() {
    assert_eq!(seed::net::wire::MAGIC, *b"SEWP");
    assert_eq!(hex(&seed::net::wire::MAGIC), "53 45 57 50");
    assert_eq!(MAX_FRAME_LEN, 64 * 1024 * 1024);
    assert_eq!(PROTOCOL_VERSION_MIN, 1);
    assert_eq!(PROTOCOL_VERSION, 3);
}

#[test]
fn frame_kind_bytes_match_the_table() {
    // §3: kind bytes are pinned and never reused.
    let table = [
        (FrameKind::Hello, 1u8),
        (FrameKind::Welcome, 2),
        (FrameKind::Request, 3),
        (FrameKind::Response, 4),
        (FrameKind::Reject, 5),
        (FrameKind::Subscribe, 6),
        (FrameKind::LogBatch, 7),
        (FrameKind::Ack, 8),
    ];
    for (kind, byte) in table {
        assert_eq!(kind.to_u8(), byte, "{kind:?}");
        // And the byte round-trips through a real frame.
        let bytes = frame_bytes(kind, b"");
        assert_eq!(bytes[4], byte);
        assert_eq!(read_frame(&mut &bytes[..]).unwrap().kind, kind);
    }
}

#[test]
fn worked_frame_example_renders_exactly_as_documented() {
    // §1: the Request::Persistence frame.
    let payload = seed::net::codec::encode_request(&Request::Persistence);
    assert_eq!(hex(&payload), "07");
    let frame = frame_bytes(FrameKind::Request, &payload);
    assert_eq!(hex(&frame), "53 45 57 50 03 01 00 00 00 2e 7a 66 4c 07");
}

#[test]
fn handshake_dumps_render_exactly_as_documented() {
    // §4.
    assert_eq!(hex(&Hello::current("spades").encode()), "01 00 03 00 06 73 70 61 64 65 73 00");
    assert_eq!(hex(&Hello::replica("spades").encode()), "02 00 03 00 06 73 70 61 64 65 73 01");
    let welcome = Welcome { version: 3, client_id: 7, banner: "seed-net/0.1.0".into() };
    assert_eq!(
        hex(&welcome.encode()),
        "03 00 07 00 00 00 00 00 00 00 0e 73 65 65 64 2d 6e 65 74 2f 30 2e 31 2e 30"
    );
    // Negotiation: min(client max, server max), inside both ranges.
    assert_eq!(negotiate(&Hello::current("x")).unwrap(), PROTOCOL_VERSION);
    let mut v1_only = Hello::current("old");
    v1_only.max_version = 1;
    assert_eq!(negotiate(&v1_only).unwrap(), 1);
}

#[test]
fn replication_dumps_render_exactly_as_documented() {
    // §6.
    assert_eq!(hex(&Subscribe { from_lsn: 42 }.encode()), "2a 00 00 00 00 00 00 00");
    assert_eq!(hex(&Ack { applied_lsn: 46 }.encode()), "2e 00 00 00 00 00 00 00");
    let ack_frame = frame_bytes(FrameKind::Ack, &Ack { applied_lsn: 46 }.encode());
    assert_eq!(hex(&ack_frame), "53 45 57 50 08 08 00 00 00 0d af de 89 2e 00 00 00 00 00 00 00");
    let batch = LogBatch {
        reset: false,
        first_lsn: 43,
        last_lsn: 46,
        primary_lsn: 46,
        records: vec![
            LogRecord::Begin { txn: 9 },
            LogRecord::Put { txn: 9, key: b"o/1".to_vec(), value: b"v".to_vec() },
            LogRecord::Commit { txn: 9 },
        ],
    };
    assert_eq!(
        hex(&batch.encode()),
        "00 2b 00 00 00 00 00 00 00 2e 00 00 00 00 00 00 00 2e 00 00 00 00 00 00 00 03 \
         09 01 09 00 00 00 00 00 00 00 \
         0f 04 09 00 00 00 00 00 00 00 03 6f 2f 31 01 76 \
         09 02 09 00 00 00 00 00 00 00"
    );
    // Every replication record round-trips.
    assert_eq!(LogBatch::decode(&batch.encode()).unwrap(), batch);
    assert_eq!(Subscribe::decode(&Subscribe { from_lsn: 42 }.encode()).unwrap().from_lsn, 42);
    assert_eq!(Ack::decode(&Ack { applied_lsn: 46 }.encode()).unwrap().applied_lsn, 46);
}

#[test]
fn request_tags_match_the_table() {
    // §5: the leading payload byte of every request variant.
    use seed::net::codec::encode_request;
    let cases: Vec<(Request, u8)> = vec![
        (Request::Connect, 0),
        (Request::Checkout { client: 1, objects: vec![] }, 1),
        (Request::Checkin { client: 1, updates: vec![] }, 2),
        (Request::Release { client: 1 }, 3),
        (Request::Retrieve { name: "X".into() }, 4),
        (Request::Query { text: "count Thing".into() }, 5),
        (Request::CreateVersion { comment: String::new() }, 6),
        (Request::Persistence, 7),
        (Request::Checkpoint, 8),
        (Request::Schema, 9),
        (Request::Children { name: "X".into() }, 10),
        (Request::Prefix { prefix: "X".into() }, 11),
        (Request::RelationshipsOf { name: "X".into() }, 12),
        (Request::ObjectsOfClass { class: "X".into(), transitive: true }, 13),
        (Request::RelationshipCount { association: "X".into(), transitive: true }, 14),
        (Request::Completeness, 15),
        (Request::Shutdown, 16),
        (Request::Stats, 17),
        (Request::Health, 18),
        (Request::Promote { epoch: 1, new_primary: "X".into() }, 19),
    ];
    for (request, tag) in cases {
        assert_eq!(encode_request(&request)[0], tag, "{request:?}");
    }
}

#[test]
fn response_and_error_tags_match_the_tables() {
    use seed::net::codec::encode_response;
    let err = || ServerError::Disconnected;
    let cases: Vec<(Response, u8)> = vec![
        (Response::Connected(1), 0),
        (Response::Checkout(Err(err())), 1),
        (Response::Ack(Ok(())), 2),
        (Response::Object(Err(err())), 3),
        (Response::Answer(Err(err())), 4),
        (Response::Version(Err(err())), 5),
        (Response::Persistence(Default::default()), 6),
        (Response::Schema(Default::default()), 7),
        (Response::Objects(Err(err())), 8),
        (Response::Relationships(Err(err())), 9),
        (Response::Count(Ok(0)), 10),
        (Response::Error(err()), 11),
        (Response::ShuttingDown, 12),
        (Response::Stats(Default::default()), 13),
        (Response::Health(Default::default()), 14),
        (Response::Promoted(Err(err())), 15),
    ];
    for (response, tag) in cases {
        assert_eq!(encode_response(&response)[0], tag, "{response:?}");
    }
    // §5: server error tags, read through Response::Error (tag 11, then the error tag).
    let errors: Vec<(ServerError, u8)> = vec![
        (ServerError::Locked { object: "X".into(), holder: 1 }, 0),
        (ServerError::NotCheckedOut("X".into()), 1),
        (ServerError::Rejected(seed::core::SeedError::Invalid("x".into())), 2),
        (ServerError::Unknown("X".into()), 3),
        (ServerError::Query("bad".into()), 4),
        (ServerError::Disconnected, 5),
        (ServerError::Transport("gone".into()), 6),
        (ServerError::Protocol("bad frame".into()), 7),
        (ServerError::ReadOnlyReplica { primary: "127.0.0.1:7044".into() }, 8),
        (ServerError::Fenced { new_primary: "127.0.0.1:7044".into(), epoch: 1 }, 9),
    ];
    for (error, tag) in errors {
        let bytes = encode_response(&Response::Error(error));
        assert_eq!(bytes[1], tag);
    }
    // The redirect error round-trips with its primary address intact.
    let bytes = encode_response(&Response::Error(ServerError::ReadOnlyReplica {
        primary: "10.0.0.9:7044".into(),
    }));
    match seed::net::codec::decode_response(&bytes).unwrap() {
        Response::Error(ServerError::ReadOnlyReplica { primary }) => {
            assert_eq!(primary, "10.0.0.9:7044");
        }
        other => panic!("unexpected decode: {other:?}"),
    }
    // The fencing error round-trips with the new primary and the epoch intact.
    let bytes = encode_response(&Response::Error(ServerError::Fenced {
        new_primary: "10.0.0.9:7044".into(),
        epoch: 7,
    }));
    match seed::net::codec::decode_response(&bytes).unwrap() {
        Response::Error(ServerError::Fenced { new_primary, epoch }) => {
            assert_eq!(new_primary, "10.0.0.9:7044");
            assert_eq!(epoch, 7);
        }
        other => panic!("unexpected decode: {other:?}"),
    }
}

#[test]
fn promotion_frames_render_exactly_as_documented() {
    // §5: the v3 failover frames, byte-exact.  `Promote` carries the epoch then the advertised
    // address of the node being promoted; `Promoted` wraps the receipt in the usual result
    // encoding; `Fenced` reaches clients as error tag 9 under a `Response::Error` (tag 11).
    use seed::net::codec::{decode_request, decode_response, encode_request, encode_response};
    use seed::server::PromotionReceipt;
    let promote = Request::Promote { epoch: 7, new_primary: "10.0.0.9:1".into() };
    let payload = encode_request(&promote);
    assert_eq!(hex(&payload), "13 07 00 00 00 00 00 00 00 0a 31 30 2e 30 2e 30 2e 39 3a 31");
    match decode_request(&payload).unwrap() {
        Request::Promote { epoch, new_primary } => {
            assert_eq!(epoch, 7);
            assert_eq!(new_primary, "10.0.0.9:1");
        }
        other => panic!("unexpected decode: {other:?}"),
    }

    let receipt = PromotionReceipt { epoch: 7, last_lsn: 46 };
    let payload = encode_response(&Response::Promoted(Ok(receipt)));
    assert_eq!(hex(&payload), "0f 01 07 00 00 00 00 00 00 00 2e 00 00 00 00 00 00 00");
    match decode_response(&payload).unwrap() {
        Response::Promoted(Ok(decoded)) => assert_eq!(decoded, receipt),
        other => panic!("unexpected decode: {other:?}"),
    }

    let fenced =
        Response::Error(ServerError::Fenced { new_primary: "10.0.0.9:1".into(), epoch: 7 });
    let payload = encode_response(&fenced);
    assert_eq!(hex(&payload), "0b 09 0a 31 30 2e 30 2e 30 2e 39 3a 31 07 00 00 00 00 00 00 00");
}

#[test]
fn old_sessions_never_see_newer_additions() {
    // §5: per-session encoding.  A v1-negotiated session gets the exact v1 byte shape — the
    // persistence payload ends after `versions` (no replication flag)...
    use seed::net::codec::{decode_response, encode_response_versioned};
    use seed::server::{PersistenceStatus, ReplicationRole, ReplicationStatus};
    let status = PersistenceStatus {
        durable: true,
        path: None,
        wal_bytes: 9,
        objects: 1,
        relationships: 2,
        versions: 3,
        replication: Some(ReplicationStatus {
            role: ReplicationRole::Replica,
            applied_lsn: 4,
            primary_lsn: 5,
            subscribers: 0,
            min_acked_lsn: 0,
            snapshot_lsn: 4,
        }),
    };
    let v1 = encode_response_versioned(&Response::Persistence(status.clone()), 1);
    let v2 = encode_response_versioned(&Response::Persistence(status.clone()), 2);
    let v3 = encode_response_versioned(&Response::Persistence(status.clone()), 3);
    assert_eq!(v2.len(), v1.len() + 1 + 1 + 8 + 8 + 4 + 8, "v2 adds exactly the block of §5");
    assert_eq!(v3.len(), v2.len() + 8, "v3 adds exactly the trailing snapshot_lsn");
    match decode_response(&v1).unwrap() {
        Response::Persistence(decoded) => {
            assert!(decoded.replication.is_none(), "v1 payload decodes with no block");
            assert_eq!(decoded.versions, 3);
        }
        other => panic!("unexpected decode: {other:?}"),
    }
    // A v2 payload decodes on a v3 peer with the snapshot LSN defaulted to 0 (unknown).
    match decode_response(&v2).unwrap() {
        Response::Persistence(decoded) => {
            let replication = decoded.replication.expect("v2 payload carries the block");
            assert_eq!(replication.applied_lsn, 4);
            assert_eq!(replication.snapshot_lsn, 0, "absent on the wire decodes as 0");
        }
        other => panic!("unexpected decode: {other:?}"),
    }
    match decode_response(&v3).unwrap() {
        Response::Persistence(decoded) => {
            assert_eq!(decoded.replication.expect("block present").snapshot_lsn, 4);
        }
        other => panic!("unexpected decode: {other:?}"),
    }
    // ...and the ReadOnlyReplica redirect degrades to tag 7 (Protocol) with the primary named.
    let redirect = Response::Error(ServerError::ReadOnlyReplica { primary: "10.0.0.9:1".into() });
    let v1 = encode_response_versioned(&redirect, 1);
    assert_eq!(v1[1], 7, "tag 8 must not reach a v1 peer");
    match decode_response(&v1).unwrap() {
        Response::Error(ServerError::Protocol(message)) => {
            assert!(message.contains("10.0.0.9:1"), "the primary is still named: {message}");
        }
        other => panic!("unexpected decode: {other:?}"),
    }
    // The fencing error (tag 9, v3-era) takes the same degrade on every pre-v3 session; the
    // text still names the new primary and the epoch, so even an old client can follow it.
    let fenced =
        Response::Error(ServerError::Fenced { new_primary: "10.0.0.9:1".into(), epoch: 7 });
    for version in [1u16, 2] {
        let bytes = encode_response_versioned(&fenced, version);
        assert_eq!(bytes[1], 7, "tag 9 must not reach a v{version} peer");
        match decode_response(&bytes).unwrap() {
            Response::Error(ServerError::Protocol(message)) => {
                assert!(
                    message.contains("10.0.0.9:1") && message.contains("epoch 7"),
                    "new primary and epoch still named: {message}"
                );
            }
            other => panic!("unexpected decode: {other:?}"),
        }
    }
    assert_eq!(encode_response_versioned(&fenced, 3)[1], 9, "a v3 peer gets the structured tag");
    // Append-only discipline: everything that existed before v3 still encodes byte-identically
    // on every negotiated session version — new frames extend the protocol, never reshape it.
    let stable: Vec<Response> = vec![
        Response::Connected(9),
        Response::Ack(Ok(())),
        Response::Error(ServerError::Disconnected),
        Response::Error(ServerError::Locked { object: "X".into(), holder: 1 }),
        Response::ShuttingDown,
        Response::Count(Ok(3)),
    ];
    for response in stable {
        let v1 = encode_response_versioned(&response, 1);
        let v2 = encode_response_versioned(&response, 2);
        let v3 = encode_response_versioned(&response, 3);
        assert_eq!(v1, v2, "{response:?} must be version-stable");
        assert_eq!(v2, v3, "{response:?} must be version-stable");
    }
}

#[test]
fn error_tiers_behave_as_documented() {
    // §2: CRC damage is recoverable, the boundary holds.
    let mut buf = frame_bytes(FrameKind::Request, b"abc");
    let last = buf.len() - 1;
    buf[last] ^= 0xFF;
    let mut extended = buf.clone();
    write_frame(&mut extended, FrameKind::Request, b"next").unwrap();
    let mut cursor = &extended[..];
    assert!(matches!(read_frame(&mut cursor), Err(WireError::Recoverable(_))));
    assert_eq!(read_frame(&mut cursor).unwrap().payload, b"next");

    // Bad magic, unknown kind and oversize are fatal.
    let mut bad_magic = frame_bytes(FrameKind::Request, b"x");
    bad_magic[0] = b'X';
    assert!(matches!(read_frame(&mut &bad_magic[..]), Err(WireError::Fatal(_))));
    let mut bad_kind = frame_bytes(FrameKind::Request, b"x");
    bad_kind[4] = 99;
    assert!(matches!(read_frame(&mut &bad_kind[..]), Err(WireError::Fatal(_))));
    let mut oversize = frame_bytes(FrameKind::Request, b"x");
    oversize[5..9].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
    assert!(matches!(read_frame(&mut &oversize[..]), Err(WireError::Fatal(_))));
}
