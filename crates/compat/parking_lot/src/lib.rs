//! Offline stand-in for `parking_lot`, implemented over [`std::sync`].
//!
//! Exposes the parking_lot API shape the workspace uses — most importantly `lock()` returning
//! the guard directly instead of a `Result` — so call sites compile unchanged against either
//! implementation.  Poisoning, which parking_lot does not have, is neutralized by recovering
//! the inner guard: a panic while holding the lock does not poison subsequent accesses, which
//! matches parking_lot semantics.

use std::fmt;
use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive; `lock()` never fails.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock; `read()`/`write()` never fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot has no poisoning; neither do we.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
