//! Query execution against a [`Database`].

use seed_core::{Database, Value};

use crate::algebra::ObjectSet;
use crate::ast::{Comparison, Navigation, Query, Selection};
use crate::error::{QueryError, QueryResult};

/// The result of executing a query: either a set of objects or a count.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// The objects matching a `find` query.
    Objects(ObjectSet),
    /// The cardinality returned by a `count` query.
    Count(usize),
}

impl QueryOutcome {
    /// The number of matching objects (for both kinds of outcome).
    pub fn count(&self) -> usize {
        match self {
            QueryOutcome::Objects(set) => set.len(),
            QueryOutcome::Count(n) => *n,
        }
    }

    /// The matching object names (empty for `count` outcomes).
    pub fn names(&self) -> Vec<String> {
        match self {
            QueryOutcome::Objects(set) => set.names(),
            QueryOutcome::Count(_) => Vec::new(),
        }
    }

    /// The object set, if this outcome carries one.
    pub fn objects(&self) -> Option<&ObjectSet> {
        match self {
            QueryOutcome::Objects(set) => Some(set),
            QueryOutcome::Count(_) => None,
        }
    }
}

/// Compares a stored value against a query literal.  Undefined values match nothing, following
/// the paper.  Literals compare as integers when both sides parse as integers, as strings
/// otherwise.
fn compare_value(value: &Value, op: Comparison, literal: &str) -> bool {
    if value.is_undefined() {
        return false;
    }
    // Integer comparison when possible.
    if let (Some(lhs), Ok(rhs)) = (value.as_integer(), literal.parse::<i64>()) {
        return match op {
            Comparison::Equal => lhs == rhs,
            Comparison::NotEqual => lhs != rhs,
            Comparison::Less => lhs < rhs,
            Comparison::Greater => lhs > rhs,
        };
    }
    let lhs = match value.as_str() {
        Some(s) => s.to_string(),
        None => value.to_string(),
    };
    match op {
        Comparison::Equal => lhs == literal,
        Comparison::NotEqual => lhs != literal,
        Comparison::Less => lhs.as_str() < literal,
        Comparison::Greater => lhs.as_str() > literal,
    }
}

fn apply_navigation(
    db: &Database,
    nav: &Navigation,
    class_set: &ObjectSet,
) -> QueryResult<ObjectSet> {
    let start = db
        .object_by_name(&nav.from_object)
        .map_err(|_| QueryError::Unknown(format!("object '{}'", nav.from_object)))?;
    let schema = db.schema();
    let association = schema
        .association_by_name(&nav.association)
        .map_err(|_| QueryError::Unknown(format!("association '{}'", nav.association)))?;
    // Navigate from the start object's role (any role that is not the target role works for the
    // binary associations of the paper; we pick the first non-target role).
    let from_role =
        association.roles.iter().map(|r| r.name.as_str()).find(|r| *r != nav.to_role).ok_or_else(
            || QueryError::Unknown(format!("role '{}' of '{}'", nav.to_role, nav.association)),
        )?;
    if association.role(&nav.to_role).is_none() {
        return Err(QueryError::Unknown(format!(
            "role '{}' of '{}'",
            nav.to_role, nav.association
        )));
    }
    let reached = ObjectSet::from_records(vec![db.object(start.id)?]).navigate(
        db,
        &nav.association,
        from_role,
        &nav.to_role,
    )?;
    Ok(reached.intersect(class_set))
}

fn apply_selection(db: &Database, selection: &Selection, set: ObjectSet) -> QueryResult<ObjectSet> {
    Ok(match selection {
        Selection::NameEquals(name) => set.select(|o| o.name.to_string() == *name),
        Selection::NamePrefix(prefix) => set.select(|o| o.name.to_string().starts_with(prefix)),
        Selection::Value(op, literal) => set.select(|o| compare_value(&o.value, *op, literal)),
        Selection::Related { association, role } => {
            let schema = db.schema();
            let assoc = schema
                .association_by_name(association)
                .map_err(|_| QueryError::Unknown(format!("association '{association}'")))?;
            let role_index = assoc
                .role_index(role)
                .ok_or_else(|| QueryError::Unknown(format!("role '{role}' of '{association}'")))?;
            let mut hierarchy = schema.association_descendants(assoc.id);
            hierarchy.push(assoc.id);
            set.select(|o| {
                db.relationships(o.id).iter().any(|rel| {
                    hierarchy.contains(&rel.record.association)
                        && rel.record.bindings.get(role_index).map(|(_, obj)| *obj) == Some(o.id)
                })
            })
        }
        Selection::Incomplete => {
            let report = db.completeness_report();
            set.select(|o| !report.for_subject(&o.name.to_string()).is_empty())
        }
    })
}

/// Executes a parsed query.
pub fn execute(db: &Database, query: &Query) -> QueryResult<QueryOutcome> {
    let (class, exact, selections, navigate, is_count) = match query {
        Query::Find { class, exact, selections, navigate } => {
            (class, *exact, selections, navigate, false)
        }
        Query::Count { class, exact, selections, navigate } => {
            (class, *exact, selections, navigate, true)
        }
    };
    let records = db
        .objects_of_class(class, !exact)
        .map_err(|_| QueryError::Unknown(format!("class '{class}'")))?;
    let mut set = ObjectSet::from_records(records);
    if let Some(nav) = navigate {
        set = apply_navigation(db, nav, &set)?;
    }
    for selection in selections {
        set = apply_selection(db, selection, set)?;
    }
    Ok(if is_count { QueryOutcome::Count(set.len()) } else { QueryOutcome::Objects(set) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use seed_core::Database;
    use seed_schema::figure3_schema;

    fn sample() -> Database {
        let mut db = Database::new(figure3_schema());
        let alarms = db.create_object("OutputData", "Alarms").unwrap();
        let process = db.create_object("InputData", "ProcessData").unwrap();
        let handler = db.create_object("Action", "AlarmHandler").unwrap();
        let display = db.create_object("Action", "Display").unwrap();
        db.create_relationship("Write", &[("to", alarms), ("by", handler)]).unwrap();
        db.create_relationship("Read", &[("from", process), ("by", handler)]).unwrap();
        db.create_relationship("Read", &[("from", process), ("by", display)]).unwrap();
        let text = db.create_dependent(alarms, "Text", seed_core::Value::Undefined).unwrap();
        db.create_dependent(text, "Selector", seed_core::Value::string("Representation")).unwrap();
        db.create_dependent(text, "Body", seed_core::Value::Undefined).unwrap();
        db
    }

    fn run(db: &Database, q: &str) -> QueryOutcome {
        execute(db, &parse(q).unwrap()).unwrap()
    }

    #[test]
    fn class_extent_with_and_without_specializations() {
        let db = sample();
        assert_eq!(run(&db, "count Thing").count(), 4);
        assert_eq!(run(&db, "count Data").count(), 2);
        assert_eq!(run(&db, "count exactly Data").count(), 0);
        assert_eq!(run(&db, "count Action").count(), 2);
    }

    #[test]
    fn selections_compose_conjunctively() {
        let db = sample();
        let q = r#"find Data where name prefix "Alarm" and related Write.to"#;
        assert_eq!(run(&db, q).names(), vec!["Alarms"]);
        let q = r#"find Data where name prefix "Proc" and related Write.to"#;
        assert_eq!(run(&db, q).count(), 0);
    }

    #[test]
    fn value_comparisons_skip_undefined() {
        let db = sample();
        assert_eq!(
            run(&db, r#"find Data.Text.Selector where value = "Representation""#).count(),
            1
        );
        assert_eq!(run(&db, r#"find Data.Text.Body where value = "Representation""#).count(), 0);
        assert_eq!(run(&db, r#"find Data.Text.Selector where value != "Other""#).count(), 1);
        // Undefined value (Body) does not even match a != comparison: it matches nothing.
        assert_eq!(run(&db, r#"find Data.Text.Body where value != "Other""#).count(), 0);
        assert_eq!(run(&db, r#"find Data.Text.Selector where value > "Aaa""#).count(), 1);
    }

    #[test]
    fn integer_comparisons() {
        let mut db = sample();
        let alarms = db.object_by_name("Alarms").unwrap().id;
        let handler = db.object_by_name("AlarmHandler").unwrap().id;
        let rels = db.relationships(alarms);
        let write = rels.iter().find(|r| r.record.bound("by") == Some(handler)).unwrap().record.id;
        db.set_relationship_attribute(write, "NumberOfWrites", seed_core::Value::Integer(2))
            .unwrap();
        // Comparison helpers directly.
        assert!(compare_value(&seed_core::Value::Integer(2), Comparison::Less, "5"));
        assert!(compare_value(&seed_core::Value::Integer(7), Comparison::Greater, "5"));
        assert!(!compare_value(&seed_core::Value::Undefined, Comparison::Equal, "5"));
        assert!(compare_value(&seed_core::Value::Integer(5), Comparison::NotEqual, "4"));
    }

    #[test]
    fn navigation_intersects_with_the_class() {
        let db = sample();
        let readers = run(&db, r#"find Action navigate Read.by from "ProcessData""#);
        assert_eq!(readers.names(), vec!["AlarmHandler", "Display"]);
        // Navigating to a class that does not contain the targets gives the empty set.
        let none = run(&db, r#"find Data navigate Read.by from "ProcessData""#);
        assert_eq!(none.count(), 0);
        // Access generalizes Read and Write.
        let all = run(&db, r#"find Action navigate Access.by from "ProcessData""#);
        assert_eq!(all.count(), 2);
    }

    #[test]
    fn incomplete_selection_uses_completeness_analysis() {
        let db = sample();
        // Display reads something, AlarmHandler reads and writes: both satisfy Access-by.
        // The incomplete Data objects are those lacking dependent minimums / covering moves —
        // in Figure 3, OutputData 'Alarms' is written (ok) and InputData 'ProcessData' is read
        // (ok), so the `incomplete` filter on Action returns nothing.
        let q = run(&db, "find Action where incomplete");
        assert_eq!(q.count(), 0);
        // A freshly created Action with no Access relationship is incomplete.
        let mut db = db;
        db.create_object("Action", "Idle").unwrap();
        let q = run(&db, "find Action where incomplete");
        assert_eq!(q.names(), vec!["Idle"]);
    }

    #[test]
    fn unknown_names_error() {
        let db = sample();
        assert!(execute(&db, &parse("find Ghost").unwrap()).is_err());
        assert!(execute(&db, &parse(r#"find Action navigate Access.by from "Ghost""#).unwrap())
            .is_err());
        assert!(execute(
            &db,
            &parse(r#"find Action navigate Access.ghost from "Alarms""#).unwrap()
        )
        .is_err());
        assert!(execute(&db, &parse("find Data where related Ghost.to").unwrap()).is_err());
    }

    #[test]
    fn outcome_accessors() {
        let db = sample();
        let objects = run(&db, "find Data");
        assert!(objects.objects().is_some());
        assert_eq!(objects.count(), objects.names().len());
        let count = run(&db, "count Data");
        assert!(count.objects().is_none());
        assert!(count.names().is_empty());
        assert_eq!(count.count(), 2);
    }
}
