//! Patterns, inheritance and variants.
//!
//! "Any data item that is entered into the database can be marked as a pattern.  Patterns are
//! invisible to any retrieval operation and are not checked for consistency unless they are
//! inherited by a 'normal' data item.  (...) all retrieval operations view patterns as if they
//! were inserted in the context of the inheritors.  However, instead of a real insertion we
//! establish a special inherits-relationship between a pattern and any of its inheritors.  Thus
//! pattern information cannot be updated in the context of the inheritors, but only in the
//! pattern itself.  Conversely, any update of a pattern automatically propagates to all
//! inheritors of that pattern."
//!
//! This module provides the *materialization view*: given the inherits-links kept in the
//! [`DataStore`], it computes what an inheritor's context looks like with its patterns folded
//! in.  Because the view is computed, pattern updates propagate to inheritors by construction.
//! [`VariantFamily`] packages the paper's Figure 5 construction of variants on top of patterns.

use std::collections::BTreeMap;

use crate::ident::{ObjectId, RelationshipId};
use crate::object::ObjectRecord;
use crate::relationship::RelationshipRecord;
use crate::store::DataStore;
use crate::value::Value;

/// A relationship as seen in the context of an inheritor: either a real one or a pattern
/// relationship materialized with the inheritor substituted for the pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct MaterializedRelationship {
    /// The relationship content (bindings already substituted for inherited ones).
    pub record: RelationshipRecord,
    /// The pattern object this relationship was inherited from, or `None` if it is a real
    /// relationship of the inheritor itself.
    pub inherited_from: Option<ObjectId>,
}

impl MaterializedRelationship {
    /// Whether the relationship is inherited (and therefore immutable in this context).
    pub fn is_inherited(&self) -> bool {
        self.inherited_from.is_some()
    }
}

/// A dependent object as seen in the context of an inheritor.
#[derive(Debug, Clone, PartialEq)]
pub struct MaterializedChild {
    /// The dependent object's record (name still rooted at the pattern for inherited ones).
    pub record: ObjectRecord,
    /// The pattern object this child was inherited from, or `None` for the inheritor's own.
    pub inherited_from: Option<ObjectId>,
}

/// Computes the relationships visible in `object`'s context: its own live, non-pattern
/// relationships plus every relationship of every pattern it inherits, with the pattern
/// substituted by the inheritor in the bindings.
pub fn materialized_relationships(
    store: &DataStore,
    object: ObjectId,
) -> Vec<MaterializedRelationship> {
    let mut out = Vec::new();
    for rel in store.relationships_of(object) {
        if rel.is_visible() {
            out.push(MaterializedRelationship { record: rel.clone(), inherited_from: None });
        }
    }
    for pattern in store.inherited_patterns(object) {
        for rel in store.relationships_of(pattern) {
            if rel.deleted {
                continue;
            }
            out.push(MaterializedRelationship {
                record: rel.with_substituted(pattern, object),
                inherited_from: Some(pattern),
            });
        }
    }
    out.sort_by_key(|m| m.record.id);
    out
}

/// Computes the dependent objects visible in `object`'s context: its own live, non-pattern
/// children plus the children of every inherited pattern.
pub fn materialized_children(store: &DataStore, object: ObjectId) -> Vec<MaterializedChild> {
    let mut out = Vec::new();
    for child in store.children_of(object) {
        if !child.is_pattern {
            out.push(MaterializedChild { record: child.clone(), inherited_from: None });
        }
    }
    for pattern in store.inherited_patterns(object) {
        for child in store.children_of(pattern) {
            out.push(MaterializedChild { record: child.clone(), inherited_from: Some(pattern) });
        }
    }
    out.sort_by_key(|m| m.record.id);
    out
}

/// The value visible in `object`'s context: its own value if defined, otherwise the first
/// defined value among its inherited patterns (in pattern-id order).
pub fn effective_value(store: &DataStore, object: ObjectId) -> Value {
    if let Some(obj) = store.live_object(object) {
        if !obj.value.is_undefined() {
            return obj.value.clone();
        }
        for pattern in store.inherited_patterns(object) {
            if let Some(p) = store.live_object(pattern) {
                if !p.value.is_undefined() {
                    return p.value.clone();
                }
            }
        }
    }
    Value::Undefined
}

/// Whether `relationship` is inherited (rather than owned) in the context of `object`:
/// i.e. it is a relationship of one of the patterns `object` inherits.
pub fn is_inherited_relationship(
    store: &DataStore,
    object: ObjectId,
    relationship: RelationshipId,
) -> Option<ObjectId> {
    store
        .inherited_patterns(object)
        .into_iter()
        .find(|&pattern| store.relationships_of(pattern).iter().any(|r| r.id == relationship))
}

/// Description of a variants family built with patterns (Figure 5 of the paper).
///
/// "We define a *variants family* to be some sets of objects and relationships that have a part
/// of their information in common, but differ in some other parts. (...) Common and variant
/// parts of a variants family are described by normal items.  The connections between the common
/// part and the several variant parts are established by pattern relationships, with every
/// variant inheriting these patterns.  Pattern semantics now guarantee that all variant parts
/// have the same relationships to the common part."
#[derive(Debug, Clone, PartialEq)]
pub struct VariantFamily {
    /// Name of the family (for reports).
    pub name: String,
    /// Objects making up the common part.
    pub common_part: Vec<ObjectId>,
    /// The pattern objects carrying the connection points (PO1, PO2, ... in Figure 5).
    pub patterns: Vec<ObjectId>,
    /// Variant name → the objects of that variant part (each of which inherits the patterns).
    pub variants: BTreeMap<String, Vec<ObjectId>>,
}

impl VariantFamily {
    /// Creates an empty family description.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            common_part: Vec::new(),
            patterns: Vec::new(),
            variants: BTreeMap::new(),
        }
    }

    /// Objects of a named variant.
    pub fn variant(&self, name: &str) -> Option<&[ObjectId]> {
        self.variants.get(name).map(|v| v.as_slice())
    }

    /// Names of all variants.
    pub fn variant_names(&self) -> Vec<&str> {
        self.variants.keys().map(|s| s.as_str()).collect()
    }

    /// Verifies the defining property of a variants family: every variant part object inherits
    /// every pattern, so all variants share the same (inherited) relationships to the common
    /// part.  Returns the list of `(variant, object, missing pattern)` triples that break it.
    pub fn check_uniform_inheritance(
        &self,
        store: &DataStore,
    ) -> Vec<(String, ObjectId, ObjectId)> {
        let mut problems = Vec::new();
        for (variant_name, members) in &self.variants {
            for member in members {
                let inherited = store.inherited_patterns(*member);
                for pattern in &self.patterns {
                    if !inherited.contains(pattern) {
                        problems.push((variant_name.clone(), *member, *pattern));
                    }
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::ObjectName;
    use seed_schema::{AssociationId, ClassId};

    fn add_object(store: &mut DataStore, name: &str, pattern: bool) -> ObjectId {
        let id = store.allocate_object_id();
        let mut rec = ObjectRecord::new(id, ClassId(0), ObjectName::root(name), None);
        rec.is_pattern = pattern;
        store.insert_object(rec);
        id
    }

    fn add_rel(store: &mut DataStore, a: ObjectId, b: ObjectId, pattern: bool) -> RelationshipId {
        let id = store.allocate_relationship_id();
        let mut rec = RelationshipRecord::new(
            id,
            AssociationId(0),
            vec![("a".to_string(), a), ("b".to_string(), b)],
        );
        rec.is_pattern = pattern;
        store.insert_relationship(rec);
        id
    }

    #[test]
    fn inherited_relationships_substitute_the_inheritor() {
        let mut store = DataStore::new();
        let common = add_object(&mut store, "CommonPart", false);
        let pattern = add_object(&mut store, "PO1", true);
        let variant_a = add_object(&mut store, "VariantA", false);
        let pr1 = add_rel(&mut store, pattern, common, true);
        store.add_inherits(variant_a, pattern);

        let rels = materialized_relationships(&store, variant_a);
        assert_eq!(rels.len(), 1);
        assert!(rels[0].is_inherited());
        assert_eq!(rels[0].inherited_from, Some(pattern));
        // The pattern is substituted by the inheritor in the binding.
        assert_eq!(rels[0].record.bound("a"), Some(variant_a));
        assert_eq!(rels[0].record.bound("b"), Some(common));
        assert_eq!(is_inherited_relationship(&store, variant_a, pr1), Some(pattern));
        assert_eq!(is_inherited_relationship(&store, common, pr1), None);
    }

    #[test]
    fn own_relationships_are_not_marked_inherited() {
        let mut store = DataStore::new();
        let a = add_object(&mut store, "A", false);
        let b = add_object(&mut store, "B", false);
        add_rel(&mut store, a, b, false);
        let rels = materialized_relationships(&store, a);
        assert_eq!(rels.len(), 1);
        assert!(!rels[0].is_inherited());
    }

    #[test]
    fn pattern_children_and_values_materialize() {
        let mut store = DataStore::new();
        let pattern = add_object(&mut store, "PatternProcedure", true);
        // The pattern carries a deadline value and a child.
        store.update_object(pattern, |o| o.value = Value::string("1986-06-30"));
        let child = store.allocate_object_id();
        store.insert_object(ObjectRecord::new(
            child,
            ClassId(1),
            ObjectName::parse("PatternProcedure.Deadline").unwrap(),
            Some(pattern),
        ));
        let proc_a = add_object(&mut store, "ProcA", false);
        store.add_inherits(proc_a, pattern);

        assert_eq!(effective_value(&store, proc_a), Value::string("1986-06-30"));
        let children = materialized_children(&store, proc_a);
        assert_eq!(children.len(), 1);
        assert_eq!(children[0].inherited_from, Some(pattern));
        // The inheritor's own value wins once defined.
        store.update_object(proc_a, |o| o.value = Value::string("own"));
        assert_eq!(effective_value(&store, proc_a), Value::string("own"));
    }

    #[test]
    fn pattern_update_propagates_to_all_inheritors() {
        let mut store = DataStore::new();
        let pattern = add_object(&mut store, "Deadline", true);
        store.update_object(pattern, |o| o.value = Value::string("1986-03-01"));
        let a = add_object(&mut store, "ProcA", false);
        let b = add_object(&mut store, "ProcB", false);
        store.add_inherits(a, pattern);
        store.add_inherits(b, pattern);
        assert_eq!(effective_value(&store, a), Value::string("1986-03-01"));
        assert_eq!(effective_value(&store, b), Value::string("1986-03-01"));
        // "a change in the pattern affects all inheriting objects in the same way"
        store.update_object(pattern, |o| o.value = Value::string("1986-06-30"));
        assert_eq!(effective_value(&store, a), Value::string("1986-06-30"));
        assert_eq!(effective_value(&store, b), Value::string("1986-06-30"));
    }

    #[test]
    fn figure5_variant_family_shares_relationships_to_common_part() {
        let mut store = DataStore::new();
        // Figure 5: common part, PO1/PO2 patterns, variant parts A and B.
        let common = add_object(&mut store, "CommonPart", false);
        let po1 = add_object(&mut store, "PO1", true);
        let po2 = add_object(&mut store, "PO2", true);
        add_rel(&mut store, po1, common, true); // PR1
        add_rel(&mut store, po2, common, true); // PR2
        let variant_a = add_object(&mut store, "VariantPartA", false);
        let variant_b = add_object(&mut store, "VariantPartB", false);
        for v in [variant_a, variant_b] {
            store.add_inherits(v, po1);
            store.add_inherits(v, po2);
        }
        let mut family = VariantFamily::new("SystemConfigurations");
        family.common_part.push(common);
        family.patterns.extend([po1, po2]);
        family.variants.insert("A".to_string(), vec![variant_a]);
        family.variants.insert("B".to_string(), vec![variant_b]);

        assert!(family.check_uniform_inheritance(&store).is_empty());
        assert_eq!(family.variant_names(), vec!["A", "B"]);
        assert_eq!(family.variant("A"), Some(&[variant_a][..]));
        assert!(family.variant("C").is_none());

        // Both variants see two inherited relationships to the common part.
        for v in [variant_a, variant_b] {
            let rels = materialized_relationships(&store, v);
            assert_eq!(rels.len(), 2);
            assert!(rels.iter().all(|r| r.is_inherited()));
            assert!(rels.iter().all(|r| r.record.involves(common)));
            assert!(rels.iter().all(|r| r.record.involves(v)));
        }
        // The common part itself does not see the variants through retrieval of its own
        // (non-pattern) relationships.
        let common_rels = materialized_relationships(&store, common);
        assert!(
            common_rels.is_empty(),
            "pattern relationships are invisible in the common part's own context"
        );
    }

    #[test]
    fn uniform_inheritance_violations_are_reported() {
        let mut store = DataStore::new();
        let common = add_object(&mut store, "Common", false);
        let po1 = add_object(&mut store, "PO1", true);
        add_rel(&mut store, po1, common, true);
        let variant_a = add_object(&mut store, "A", false);
        let variant_b = add_object(&mut store, "B", false);
        store.add_inherits(variant_a, po1);
        // B forgot to inherit.
        let mut family = VariantFamily::new("F");
        family.common_part.push(common);
        family.patterns.push(po1);
        family.variants.insert("A".into(), vec![variant_a]);
        family.variants.insert("B".into(), vec![variant_b]);
        let problems = family.check_uniform_inheritance(&store);
        assert_eq!(problems.len(), 1);
        assert_eq!(problems[0].0, "B");
        assert_eq!(problems[0].1, variant_b);
        assert_eq!(problems[0].2, po1);
    }
}
