//! Identifiers: object ids, relationship ids, and decimal version identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{SeedError, SeedResult};

/// Identifier of an object (independent or dependent) in the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

/// Identifier of a relationship in the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RelationshipId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for RelationshipId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of any data item (object or relationship).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ItemId {
    /// An object.
    Object(ObjectId),
    /// A relationship.
    Relationship(RelationshipId),
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ItemId::Object(o) => write!(f, "{o}"),
            ItemId::Relationship(r) => write!(f, "{r}"),
        }
    }
}

impl From<ObjectId> for ItemId {
    fn from(o: ObjectId) -> Self {
        ItemId::Object(o)
    }
}

impl From<RelationshipId> for ItemId {
    fn from(r: RelationshipId) -> Self {
        ItemId::Relationship(r)
    }
}

/// A version identifier in SEED's decimal classification (`1.0`, `2.0`, `1.0.1`, ...).
///
/// "Versions are identified by a decimal classification.  The classification tree reflects the
/// version history."  Identifiers order lexicographically by component, which gives exactly the
/// ordering needed for view reconstruction: the view to version *n* consists of the items whose
/// greatest recorded version number is ≤ *n*.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VersionId(Vec<u32>);

impl VersionId {
    /// Creates a version id from its components; at least one component is required.
    pub fn new(components: Vec<u32>) -> SeedResult<Self> {
        if components.is_empty() {
            return Err(SeedError::Version("a version id needs at least one component".into()));
        }
        Ok(Self(components))
    }

    /// The conventional first version, `1.0`.
    pub fn initial() -> Self {
        Self(vec![1, 0])
    }

    /// Parses `"2.0"`, `"1.0.1"`, ... into a version id.
    pub fn parse(s: &str) -> SeedResult<Self> {
        let components = s
            .split('.')
            .map(|part| {
                part.trim()
                    .parse::<u32>()
                    .map_err(|_| SeedError::Version(format!("invalid version id '{s}'")))
            })
            .collect::<SeedResult<Vec<u32>>>()?;
        Self::new(components)
    }

    /// The components of the id.
    pub fn components(&self) -> &[u32] {
        &self.0
    }

    /// Number of components (depth in the classification tree is `len() - 1` for the
    /// major.minor convention).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Never true; ids always have at least one component.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The id of the next sibling at the same level (`1.0` → `2.0` at the top level,
    /// `1.0.1` → `1.0.2` below).  Top-level successors follow the paper's `1.0`, `2.0`, ...
    /// convention: the major component increments and the trailing component resets to 0.
    pub fn next_sibling(&self) -> Self {
        let mut c = self.0.clone();
        if c.len() == 2 {
            c[0] += 1;
            c[1] = 0;
        } else {
            let last = c.len() - 1;
            c[last] += 1;
        }
        Self(c)
    }

    /// The first child id below this version (used for alternatives): `1.0` → `1.0.1`.
    pub fn first_child(&self) -> Self {
        let mut c = self.0.clone();
        c.push(1);
        Self(c)
    }

    /// The id one level up, if any (`1.0.2` → `1.0`).
    pub fn parent(&self) -> Option<Self> {
        if self.0.len() <= 1 {
            None
        } else {
            Some(Self(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// Whether `self` is a prefix of (an ancestor of, or equal to) `other` in the version tree.
    pub fn is_prefix_of(&self, other: &VersionId) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }
}

impl fmt::Display for VersionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.0.iter().map(|c| c.to_string()).collect();
        write!(f, "{}", parts.join("."))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(ObjectId(5).to_string(), "o5");
        assert_eq!(RelationshipId(7).to_string(), "r7");
        assert_eq!(ItemId::from(ObjectId(5)).to_string(), "o5");
        assert_eq!(ItemId::from(RelationshipId(5)).to_string(), "r5");
    }

    #[test]
    fn version_parse_and_display() {
        let v = VersionId::parse("1.0").unwrap();
        assert_eq!(v, VersionId::initial());
        assert_eq!(v.to_string(), "1.0");
        assert_eq!(VersionId::parse("2.0.13").unwrap().to_string(), "2.0.13");
        assert!(VersionId::parse("").is_err());
        assert!(VersionId::parse("1.x").is_err());
        assert!(VersionId::new(vec![]).is_err());
    }

    #[test]
    fn ordering_matches_decimal_classification() {
        let v10 = VersionId::parse("1.0").unwrap();
        let v101 = VersionId::parse("1.0.1").unwrap();
        let v102 = VersionId::parse("1.0.2").unwrap();
        let v11 = VersionId::parse("1.1").unwrap();
        let v20 = VersionId::parse("2.0").unwrap();
        assert!(v10 < v101);
        assert!(v101 < v102);
        assert!(v102 < v11);
        assert!(v11 < v20);
    }

    #[test]
    fn sibling_and_child_generation() {
        let v10 = VersionId::parse("1.0").unwrap();
        assert_eq!(v10.next_sibling().to_string(), "2.0");
        assert_eq!(v10.next_sibling().next_sibling().to_string(), "3.0");
        assert_eq!(v10.first_child().to_string(), "1.0.1");
        assert_eq!(v10.first_child().next_sibling().to_string(), "1.0.2");
        assert_eq!(VersionId::parse("3").unwrap().next_sibling().to_string(), "4");
    }

    #[test]
    fn parent_and_prefix() {
        let v102 = VersionId::parse("1.0.2").unwrap();
        assert_eq!(v102.parent().unwrap().to_string(), "1.0");
        assert_eq!(v102.parent().unwrap().parent().unwrap().to_string(), "1");
        assert!(v102.parent().unwrap().parent().unwrap().parent().is_none());
        let v10 = VersionId::parse("1.0").unwrap();
        assert!(v10.is_prefix_of(&v102));
        assert!(v10.is_prefix_of(&v10));
        assert!(!v102.is_prefix_of(&v10));
        assert!(!VersionId::parse("1.1").unwrap().is_prefix_of(&v102));
        assert_eq!(v102.len(), 3);
        assert!(!v102.is_empty());
        assert_eq!(v102.components(), &[1, 0, 2]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn parse_display_roundtrip(components in proptest::collection::vec(0u32..100, 1..5)) {
            let v = VersionId::new(components).unwrap();
            prop_assert_eq!(VersionId::parse(&v.to_string()).unwrap(), v);
        }

        #[test]
        fn child_is_greater_than_parent_but_less_than_next_sibling(
            components in proptest::collection::vec(0u32..50, 2..4)
        ) {
            let v = VersionId::new(components).unwrap();
            let child = v.first_child();
            let sibling = v.next_sibling();
            prop_assert!(v < child);
            prop_assert!(child < sibling);
            prop_assert!(v.is_prefix_of(&child));
            prop_assert!(!v.is_prefix_of(&sibling));
        }
    }
}
