//! Prints the quick evaluation report (one row per experiment in `EXPERIMENTS.md`) and writes
//! the machine-readable `BENCH.json` next to it.
//!
//! Run with `cargo run -p seed-bench --release`; pass `--smoke` for the small-parameter variant
//! CI runs (seconds instead of minutes, same metrics).

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    seed_bench::run_report_mode(smoke);
}
