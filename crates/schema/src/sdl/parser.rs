//! Recursive-descent parser for the schema definition language.
//!
//! Parsing is two-phase: the text is first read into a small AST, then the AST is lowered into a
//! [`Schema`] in dependency order (classes and dependents first, then generalizations, then
//! associations), so that forward references between classes are allowed.

use crate::association::RelationshipAttribute;
use crate::cardinality::Cardinality;
use crate::domain::Domain;
use crate::error::{SchemaError, SchemaResult};
use crate::schema::Schema;

use super::lexer::{Lexer, Token, TokenKind};

// --------------------------------------------------------------------------------------------
// AST
// --------------------------------------------------------------------------------------------

#[derive(Debug)]
struct AstSchema {
    name: String,
    classes: Vec<AstClass>,
    associations: Vec<AstAssociation>,
}

#[derive(Debug)]
struct AstClass {
    name: String,
    superclass: Option<String>,
    covering: bool,
    domain: Option<Domain>,
    dependents: Vec<AstDependent>,
}

#[derive(Debug)]
struct AstDependent {
    local_name: String,
    occurrence: Cardinality,
    domain: Option<Domain>,
    dependents: Vec<AstDependent>,
}

#[derive(Debug)]
struct AstAssociation {
    name: String,
    superassociation: Option<String>,
    acyclic: bool,
    covering: bool,
    roles: Vec<AstRole>,
    attributes: Vec<RelationshipAttribute>,
}

#[derive(Debug)]
struct AstRole {
    name: String,
    class: String,
    cardinality: Cardinality,
}

// --------------------------------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------------------------------

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> SchemaError {
        let t = self.peek();
        SchemaError::Parse { line: t.line, column: t.column, message: message.into() }
    }

    fn expect_ident(&mut self) -> SchemaResult<String> {
        match self.bump().kind {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> SchemaResult<()> {
        let ident = self.expect_ident()?;
        if ident == kw {
            Ok(())
        } else {
            Err(self.error(format!("expected keyword '{kw}', found '{ident}'")))
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> SchemaResult<()> {
        let t = self.bump();
        if &t.kind == kind {
            Ok(())
        } else {
            Err(SchemaError::Parse {
                line: t.line,
                column: t.column,
                message: format!("expected {kind}, found {}", t.kind),
            })
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let TokenKind::Ident(s) = &self.peek().kind {
            if s == kw {
                self.bump();
                return true;
            }
        }
        false
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    // ----- grammar ------------------------------------------------------------------------------

    fn schema(&mut self) -> SchemaResult<AstSchema> {
        self.expect_keyword("schema")?;
        let name = self.expect_ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut classes = Vec::new();
        let mut associations = Vec::new();
        loop {
            if self.eat(&TokenKind::RBrace) {
                break;
            }
            if self.peek_keyword("class") {
                classes.push(self.class()?);
            } else if self.peek_keyword("association") {
                associations.push(self.association()?);
            } else {
                return Err(self.error(format!(
                    "expected 'class', 'association' or '}}', found {}",
                    self.peek().kind
                )));
            }
        }
        self.expect(&TokenKind::Eof)?;
        Ok(AstSchema { name, classes, associations })
    }

    fn class(&mut self) -> SchemaResult<AstClass> {
        self.expect_keyword("class")?;
        let name = self.expect_ident()?;
        let superclass =
            if self.eat(&TokenKind::Colon) { Some(self.expect_ident()?) } else { None };
        let covering = self.eat_keyword("covering");
        let mut domain = None;
        let mut dependents = Vec::new();
        if self.eat(&TokenKind::LBrace) {
            loop {
                if self.eat(&TokenKind::RBrace) {
                    break;
                }
                if self.peek_keyword("dependent") {
                    dependents.push(self.dependent()?);
                } else if self.eat_keyword("value") {
                    domain = Some(self.domain()?);
                    self.expect(&TokenKind::Semicolon)?;
                } else {
                    return Err(self.error(format!(
                        "expected 'dependent', 'value' or '}}', found {}",
                        self.peek().kind
                    )));
                }
            }
        } else {
            self.expect(&TokenKind::Semicolon)?;
        }
        Ok(AstClass { name, superclass, covering, domain, dependents })
    }

    fn dependent(&mut self) -> SchemaResult<AstDependent> {
        self.expect_keyword("dependent")?;
        let local_name = self.expect_ident()?;
        let occurrence = if self.peek().kind == TokenKind::LBracket {
            self.cardinality()?
        } else {
            Cardinality::any()
        };
        let mut domain = None;
        let mut dependents = Vec::new();
        if self.eat(&TokenKind::Colon) {
            domain = Some(self.domain()?);
        }
        if self.eat(&TokenKind::LBrace) {
            loop {
                if self.eat(&TokenKind::RBrace) {
                    break;
                }
                dependents.push(self.dependent()?);
            }
        } else {
            self.expect(&TokenKind::Semicolon)?;
        }
        Ok(AstDependent { local_name, occurrence, domain, dependents })
    }

    fn association(&mut self) -> SchemaResult<AstAssociation> {
        self.expect_keyword("association")?;
        let name = self.expect_ident()?;
        let superassociation =
            if self.eat(&TokenKind::Colon) { Some(self.expect_ident()?) } else { None };
        let mut acyclic = false;
        let mut covering = false;
        loop {
            if self.eat_keyword("acyclic") {
                acyclic = true;
            } else if self.eat_keyword("covering") {
                covering = true;
            } else {
                break;
            }
        }
        self.expect(&TokenKind::LBrace)?;
        let mut roles = Vec::new();
        let mut attributes = Vec::new();
        loop {
            if self.eat(&TokenKind::RBrace) {
                break;
            }
            if self.peek_keyword("role") {
                roles.push(self.role()?);
            } else if self.peek_keyword("attribute") {
                attributes.push(self.attribute()?);
            } else {
                return Err(self.error(format!(
                    "expected 'role', 'attribute' or '}}', found {}",
                    self.peek().kind
                )));
            }
        }
        Ok(AstAssociation { name, superassociation, acyclic, covering, roles, attributes })
    }

    fn role(&mut self) -> SchemaResult<AstRole> {
        self.expect_keyword("role")?;
        let name = self.expect_ident()?;
        self.expect(&TokenKind::Colon)?;
        let class = self.expect_ident()?;
        let cardinality = if self.peek().kind == TokenKind::LBracket {
            self.cardinality()?
        } else {
            Cardinality::any()
        };
        self.expect(&TokenKind::Semicolon)?;
        Ok(AstRole { name, class, cardinality })
    }

    fn attribute(&mut self) -> SchemaResult<RelationshipAttribute> {
        self.expect_keyword("attribute")?;
        let name = self.expect_ident()?;
        self.expect(&TokenKind::Colon)?;
        let domain = self.domain()?;
        let required = self.eat_keyword("required");
        self.expect(&TokenKind::Semicolon)?;
        Ok(RelationshipAttribute::new(name, domain, required))
    }

    fn domain(&mut self) -> SchemaResult<Domain> {
        let kw = self.expect_ident()?;
        if kw.eq_ignore_ascii_case("ENUM") {
            self.expect(&TokenKind::LParen)?;
            let mut literals = Vec::new();
            loop {
                literals.push(self.expect_ident()?);
                if self.eat(&TokenKind::Comma) {
                    continue;
                }
                self.expect(&TokenKind::RParen)?;
                break;
            }
            return Ok(Domain::Enumeration(literals));
        }
        Domain::from_keyword(&kw).ok_or_else(|| self.error(format!("unknown domain '{kw}'")))
    }

    fn cardinality(&mut self) -> SchemaResult<Cardinality> {
        self.expect(&TokenKind::LBracket)?;
        let card = if self.eat(&TokenKind::Star) {
            Cardinality::any()
        } else {
            let min = match self.bump().kind {
                TokenKind::Number(n) => n,
                other => return Err(self.error(format!("expected number, found {other}"))),
            };
            self.expect(&TokenKind::DotDot)?;
            if self.eat(&TokenKind::Star) {
                Cardinality::new(min, None).map_err(|_| self.error("invalid cardinality"))?
            } else {
                let max = match self.bump().kind {
                    TokenKind::Number(n) => n,
                    other => {
                        return Err(self.error(format!("expected number or '*', found {other}")))
                    }
                };
                Cardinality::new(min, Some(max))
                    .map_err(|_| self.error(format!("invalid cardinality {min}..{max}")))?
            }
        };
        self.expect(&TokenKind::RBracket)?;
        Ok(card)
    }
}

// --------------------------------------------------------------------------------------------
// Lowering
// --------------------------------------------------------------------------------------------

fn lower(ast: AstSchema) -> SchemaResult<Schema> {
    let mut schema = Schema::new(ast.name);

    // Pass 1: classes and their dependent classes (depth first so path names exist).
    for class in &ast.classes {
        let id = schema.add_class(&class.name)?;
        if let Some(domain) = &class.domain {
            schema.set_class_domain(id, Some(domain.clone()))?;
        }
        for dep in &class.dependents {
            lower_dependent(&mut schema, id, dep)?;
        }
    }

    // Pass 2: class generalizations and covering flags.
    for class in &ast.classes {
        let id = schema.class_id(&class.name)?;
        if let Some(sup) = &class.superclass {
            let sup_id = schema.class_id(sup)?;
            schema.set_superclass(id, sup_id)?;
        }
        if class.covering {
            schema.set_class_covering(id, true)?;
        }
    }

    // Pass 3: associations.
    for assoc in &ast.associations {
        let roles = assoc
            .roles
            .iter()
            .map(|r| {
                Ok(crate::association::Role::new(
                    r.name.clone(),
                    schema.class_id(&r.class)?,
                    r.cardinality,
                ))
            })
            .collect::<SchemaResult<Vec<_>>>()?;
        let id = schema.add_association(&assoc.name, roles, assoc.acyclic)?;
        for attr in &assoc.attributes {
            schema.add_relationship_attribute(id, attr.clone())?;
        }
        if assoc.covering {
            schema.set_association_covering(id, true)?;
        }
    }

    // Pass 4: association generalizations (forward references allowed).
    for assoc in &ast.associations {
        if let Some(sup) = &assoc.superassociation {
            let id = schema.association_id(&assoc.name)?;
            let sup_id = schema.association_id(sup)?;
            schema.set_superassociation(id, sup_id)?;
        }
    }

    Ok(schema)
}

fn lower_dependent(
    schema: &mut Schema,
    owner: crate::ids::ClassId,
    dep: &AstDependent,
) -> SchemaResult<()> {
    let id =
        schema.add_dependent_class(owner, &dep.local_name, dep.occurrence, dep.domain.clone())?;
    for child in &dep.dependents {
        lower_dependent(schema, id, child)?;
    }
    Ok(())
}

/// Parses SDL text into a [`Schema`].
pub fn parse(input: &str) -> SchemaResult<Schema> {
    let tokens = Lexer::new(input).tokenize()?;
    let mut parser = Parser { tokens, pos: 0 };
    let ast = parser.schema()?;
    lower(ast)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        // The Figure 3 schema, abbreviated.
        schema Sample {
            class Thing covering {
                dependent Revised [0..1] : DATE;
            }
            class Data : Thing {
                dependent Text [0..16] {
                    dependent Selector [0..1] : STRING;
                }
            }
            class Action : Thing;
            class OutputData : Data;
            association Access covering {
                role from : Data [0..*];
                role by : Action [1..*];
            }
            association Write : Access {
                role to : OutputData [1..*];
                role by : Action [0..*];
                attribute NumberOfWrites : INTEGER required;
                attribute ErrorHandling : ENUM(abort, repeat);
            }
            association Contained acyclic {
                role in : Action [0..1];
                role container : Action [0..*];
            }
        }
    "#;

    #[test]
    fn parses_sample_schema() {
        let schema = parse(SAMPLE).unwrap();
        assert_eq!(schema.name, "Sample");
        assert_eq!(schema.class_count(), 7);
        assert_eq!(schema.association_count(), 3);

        let thing = schema.class_by_name("Thing").unwrap();
        assert!(thing.covering);
        let data = schema.class_by_name("Data").unwrap();
        assert_eq!(
            data.superclass.map(|s| schema.class(s).unwrap().name.clone()),
            Some("Thing".to_string())
        );
        let text = schema.class_by_name("Data.Text").unwrap();
        assert_eq!(text.occurrence, Cardinality::bounded(0, 16).unwrap());
        let selector = schema.class_by_name("Data.Text.Selector").unwrap();
        assert_eq!(selector.domain, Some(Domain::String));

        let write = schema.association_by_name("Write").unwrap();
        assert_eq!(
            write.superassociation.map(|s| schema.association(s).unwrap().name.clone()),
            Some("Access".to_string())
        );
        assert!(write.attribute("NumberOfWrites").unwrap().required);
        assert!(!write.attribute("ErrorHandling").unwrap().required);
        let contained = schema.association_by_name("Contained").unwrap();
        assert!(contained.acyclic);
        let access = schema.association_by_name("Access").unwrap();
        assert!(access.covering);
        assert_eq!(access.role("by").unwrap().cardinality, Cardinality::at_least_one());
    }

    #[test]
    fn missing_cardinality_defaults_to_any() {
        let schema = parse("schema S { class A { dependent X; } class B; association R { role a : A; role b : B; } }").unwrap();
        assert_eq!(schema.class_by_name("A.X").unwrap().occurrence, Cardinality::any());
        assert_eq!(
            schema.association_by_name("R").unwrap().role("a").unwrap().cardinality,
            Cardinality::any()
        );
    }

    #[test]
    fn unknown_class_in_role_is_an_error() {
        let err = parse("schema S { class A; association R { role a : A; role b : Ghost; } }");
        assert!(matches!(err, Err(SchemaError::UnknownClass(_))));
    }

    #[test]
    fn unknown_superclass_is_an_error() {
        let err = parse("schema S { class A : Ghost; }");
        assert!(matches!(err, Err(SchemaError::UnknownClass(_))));
    }

    #[test]
    fn syntax_errors_carry_positions() {
        let err = parse("schema S { klass A; }");
        match err {
            Err(SchemaError::Parse { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn forward_reference_to_superassociation_allowed() {
        let schema = parse(
            "schema S { class A; class B; \
             association Sub : Super { role a : A; role b : B; } \
             association Super { role a : A; role b : B; } }",
        )
        .unwrap();
        let sub = schema.association_by_name("Sub").unwrap();
        assert!(sub.superassociation.is_some());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("schema S { } extra").is_err());
    }

    #[test]
    fn class_level_value_domain() {
        let schema = parse("schema S { class Note { value TEXT; } }").unwrap();
        assert_eq!(schema.class_by_name("Note").unwrap().domain, Some(Domain::Text));
    }

    #[test]
    fn invalid_cardinality_rejected() {
        assert!(parse("schema S { class A { dependent X [5..2]; } }").is_err());
    }
}
