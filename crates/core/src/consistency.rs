//! The consistency checker.
//!
//! "Whenever an update operation is executed, SEED checks all consistency rules that are
//! derivable from the consistency information (...) and that apply to the data being updated.
//! Thus SEED permanently ensures database consistency."
//!
//! Consistency information comprises: class and association membership, value domains,
//! **maximum** cardinalities (of dependent classes and of association roles), ACYCLIC
//! conditions, and attached procedures.  Minimum cardinalities and covering conditions are
//! *completeness* information and are handled by [`crate::completeness`] instead — this split is
//! precisely how SEED admits incomplete data without giving up consistency checking.
//!
//! Pattern items are not checked ("patterns (...) are not checked for consistency unless they
//! are inherited by a 'normal' data item"); the checks run against the materialized view when a
//! pattern is inherited.

use std::collections::{HashMap, HashSet};
use std::fmt;

use seed_schema::{
    AssociationId, AttachedProcedure, ClassId, GeneralizationHierarchy, ProcedureEvent, Schema,
};

use crate::ident::{ItemId, ObjectId, RelationshipId};
use crate::object::ObjectRecord;
use crate::procedures::{ProcedureContext, ProcedureRegistry};
use crate::relationship::RelationshipRecord;
use crate::store::DataStore;
use crate::value::Value;

/// A single consistency problem detected by the checker.
#[derive(Debug, Clone, PartialEq)]
pub enum ConsistencyViolation {
    /// A dependent class instance was created without a parent, or an independent class
    /// instance with one.
    ParentMismatch { class: String, reason: String },
    /// The parent object's class does not own the dependent class being instantiated.
    WrongParentClass { class: String, parent_class: String },
    /// Creating the object would exceed the maximum occurrence of a dependent class within its
    /// parent (e.g. a 17th `Data.Text` under one `Data` object).
    OccurrenceExceeded { class: String, parent: String, max: u32, attempted: u32 },
    /// A value was supplied that does not conform to the class's (or attribute's) domain.
    DomainViolation { subject: String, expected: String, found: String },
    /// A value was supplied for a class that has no value domain.
    NotAValueClass { class: String },
    /// A role required by the association was not bound.
    MissingRoleBinding { association: String, role: String },
    /// A role name was bound that the association does not declare.
    UnknownRoleBinding { association: String, role: String },
    /// The object bound to a role is not an instance of (a specialization of) the role's class.
    RoleClassMismatch { association: String, role: String, expected: String, found: String },
    /// The object bound to a role does not exist or is deleted.
    DanglingBinding { association: String, role: String },
    /// Adding the relationship would exceed a role's maximum cardinality (counted across the
    /// association's whole generalization hierarchy).
    RoleMaxCardinalityExceeded {
        association: String,
        role: String,
        object: String,
        max: u32,
        attempted: u32,
    },
    /// Adding the relationship would create a cycle in an ACYCLIC association.
    CycleIntroduced { association: String, object: String },
    /// An attribute was supplied that the association (hierarchy) does not declare.
    UnknownAttribute { association: String, attribute: String },
    /// An attached procedure vetoed the update.
    ProcedureFailed { subject: String, procedure: String, reason: String },
    /// A re-classification target is not in the same generalization hierarchy.
    UnrelatedReclassification { from: String, to: String },
    /// After re-classification a dependent object would no longer be owned by a legal parent
    /// class, or a relationship binding would no longer be class-compatible.
    ReclassificationBreaksStructure { subject: String, reason: String },
    /// Inherited pattern information may only be changed through the pattern itself.
    InheritedInformationImmutable { inheritor: String, pattern: String },
}

impl fmt::Display for ConsistencyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsistencyViolation::ParentMismatch { class, reason } => {
                write!(f, "class '{class}': {reason}")
            }
            ConsistencyViolation::WrongParentClass { class, parent_class } => {
                write!(f, "objects of class '{class}' cannot be dependents of '{parent_class}' objects")
            }
            ConsistencyViolation::OccurrenceExceeded { class, parent, max, attempted } => write!(
                f,
                "'{parent}' may have at most {max} dependents of class '{class}' (attempted {attempted})"
            ),
            ConsistencyViolation::DomainViolation { subject, expected, found } => {
                write!(f, "'{subject}': value of type {found} does not conform to {expected}")
            }
            ConsistencyViolation::NotAValueClass { class } => {
                write!(f, "class '{class}' has no value domain")
            }
            ConsistencyViolation::MissingRoleBinding { association, role } => {
                write!(f, "association '{association}' requires a binding for role '{role}'")
            }
            ConsistencyViolation::UnknownRoleBinding { association, role } => {
                write!(f, "association '{association}' has no role '{role}'")
            }
            ConsistencyViolation::RoleClassMismatch { association, role, expected, found } => write!(
                f,
                "role '{role}' of '{association}' requires an instance of '{expected}', got '{found}'"
            ),
            ConsistencyViolation::DanglingBinding { association, role } => {
                write!(f, "role '{role}' of '{association}' is bound to a missing or deleted object")
            }
            ConsistencyViolation::RoleMaxCardinalityExceeded { association, role, object, max, attempted } => {
                write!(
                    f,
                    "'{object}' may participate in at most {max} '{association}' relationships as '{role}' (attempted {attempted})"
                )
            }
            ConsistencyViolation::CycleIntroduced { association, object } => {
                write!(f, "relationship would create a cycle in ACYCLIC association '{association}' at '{object}'")
            }
            ConsistencyViolation::UnknownAttribute { association, attribute } => {
                write!(f, "association '{association}' declares no attribute '{attribute}'")
            }
            ConsistencyViolation::ProcedureFailed { subject, procedure, reason } => {
                write!(f, "attached procedure '{procedure}' rejected update of '{subject}': {reason}")
            }
            ConsistencyViolation::UnrelatedReclassification { from, to } => {
                write!(f, "cannot re-classify from '{from}' to '{to}': not in the same generalization hierarchy")
            }
            ConsistencyViolation::ReclassificationBreaksStructure { subject, reason } => {
                write!(f, "re-classification of '{subject}' rejected: {reason}")
            }
            ConsistencyViolation::InheritedInformationImmutable { inheritor, pattern } => {
                write!(
                    f,
                    "'{inheritor}' inherits this information from pattern '{pattern}'; update the pattern instead"
                )
            }
        }
    }
}

/// Checks proposed updates against the consistency information of the schema.
pub struct ConsistencyChecker<'a> {
    schema: &'a Schema,
    store: &'a DataStore,
    procedures: &'a ProcedureRegistry,
}

impl<'a> ConsistencyChecker<'a> {
    /// Creates a checker over the given schema, store and procedure registry.
    pub fn new(
        schema: &'a Schema,
        store: &'a DataStore,
        procedures: &'a ProcedureRegistry,
    ) -> Self {
        Self { schema, store, procedures }
    }

    fn class_name(&self, class: ClassId) -> String {
        self.schema.class(class).map(|c| c.name.clone()).unwrap_or_else(|_| class.to_string())
    }

    fn assoc_name(&self, assoc: AssociationId) -> String {
        self.schema.association(assoc).map(|a| a.name.clone()).unwrap_or_else(|_| assoc.to_string())
    }

    // ----- attached procedures ---------------------------------------------------------------------

    fn run_procedures(
        &self,
        declared: &[AttachedProcedure],
        subject: &str,
        item: ItemId,
        event: ProcedureEvent,
        value: Option<&Value>,
        violations: &mut Vec<ConsistencyViolation>,
    ) {
        for proc in declared {
            let failed: Option<String> = match proc {
                AttachedProcedure::ValueRange { min, max } => match value {
                    Some(Value::Integer(i)) => {
                        if min.map(|lo| *i < lo).unwrap_or(false)
                            || max.map(|hi| *i > hi).unwrap_or(false)
                        {
                            Some(proc.describe())
                        } else {
                            None
                        }
                    }
                    Some(Value::Undefined) | None => None,
                    Some(other) => Some(format!("{} (got {})", proc.describe(), other.type_name())),
                },
                AttachedProcedure::ValueNotEmpty => match value {
                    Some(v) if !v.is_undefined() => match v.as_str() {
                        Some(s) if s.trim().is_empty() => Some(proc.describe()),
                        _ => None,
                    },
                    _ => None,
                },
                AttachedProcedure::ValueContains(needle) => match value.and_then(|v| v.as_str()) {
                    Some(s) if !s.contains(needle) => Some(proc.describe()),
                    _ => None,
                },
                AttachedProcedure::MaxLength(n) => match value.and_then(|v| v.as_str()) {
                    Some(s) if s.chars().count() > *n => Some(proc.describe()),
                    _ => None,
                },
                AttachedProcedure::Named(name) => {
                    let ctx = ProcedureContext { event, item, value, subject };
                    self.procedures.run(name, &ctx).err()
                }
            };
            if let Some(reason) = failed {
                violations.push(ConsistencyViolation::ProcedureFailed {
                    subject: subject.to_string(),
                    procedure: match proc {
                        AttachedProcedure::Named(n) => n.clone(),
                        other => other.describe(),
                    },
                    reason,
                });
            }
        }
    }

    // ----- object checks ----------------------------------------------------------------------------

    /// Checks the creation of an object of `class` under `parent` with `value`.
    ///
    /// `is_pattern` objects are exempt from all checks.
    pub fn check_new_object(
        &self,
        class: ClassId,
        parent: Option<ObjectId>,
        value: &Value,
        name: &str,
        is_pattern: bool,
    ) -> Vec<ConsistencyViolation> {
        if is_pattern {
            return Vec::new();
        }
        let mut violations = Vec::new();
        let Ok(class_def) = self.schema.class(class) else {
            violations.push(ConsistencyViolation::ParentMismatch {
                class: class.to_string(),
                reason: "unknown class".to_string(),
            });
            return violations;
        };

        match (class_def.owner, parent) {
            (Some(owner), Some(parent_id)) => {
                match self.store.live_object(parent_id) {
                    Some(parent_obj) => {
                        if !self.schema.class_is_a(parent_obj.class, owner) {
                            violations.push(ConsistencyViolation::WrongParentClass {
                                class: class_def.name.clone(),
                                parent_class: self.class_name(parent_obj.class),
                            });
                        } else if !parent_obj.is_pattern {
                            // Maximum occurrence of this dependent class within the parent.
                            // Pattern children do not count.
                            let existing = self
                                .store
                                .children_of_class(parent_id, class)
                                .iter()
                                .filter(|c| !c.is_pattern)
                                .count() as u32;
                            if !class_def.occurrence.allows(existing + 1) {
                                violations.push(ConsistencyViolation::OccurrenceExceeded {
                                    class: class_def.name.clone(),
                                    parent: parent_obj.name.to_string(),
                                    max: class_def.occurrence.max.unwrap_or(u32::MAX),
                                    attempted: existing + 1,
                                });
                            }
                        }
                    }
                    None => violations.push(ConsistencyViolation::ParentMismatch {
                        class: class_def.name.clone(),
                        reason: "parent object does not exist".to_string(),
                    }),
                }
            }
            (Some(_), None) => violations.push(ConsistencyViolation::ParentMismatch {
                class: class_def.name.clone(),
                reason: "dependent objects need a parent object".to_string(),
            }),
            (None, Some(_)) => violations.push(ConsistencyViolation::ParentMismatch {
                class: class_def.name.clone(),
                reason: "independent objects cannot have a parent".to_string(),
            }),
            (None, None) => {}
        }

        self.check_value_against_class(class, value, name, &mut violations);
        self.run_procedures(
            &class_def.procedures,
            name,
            ItemId::Object(ObjectId(0)),
            ProcedureEvent::Create,
            Some(value),
            &mut violations,
        );
        violations
    }

    fn check_value_against_class(
        &self,
        class: ClassId,
        value: &Value,
        subject: &str,
        violations: &mut Vec<ConsistencyViolation>,
    ) {
        let Ok(class_def) = self.schema.class(class) else { return };
        match &class_def.domain {
            Some(domain) => {
                if !value.conforms_to(domain) {
                    violations.push(ConsistencyViolation::DomainViolation {
                        subject: subject.to_string(),
                        expected: domain.keyword(),
                        found: value.type_name().to_string(),
                    });
                }
            }
            None => {
                if !value.is_undefined() {
                    violations.push(ConsistencyViolation::NotAValueClass {
                        class: class_def.name.clone(),
                    });
                }
            }
        }
    }

    /// Checks a value update of an existing object.
    pub fn check_value_update(
        &self,
        object: &ObjectRecord,
        value: &Value,
    ) -> Vec<ConsistencyViolation> {
        if object.is_pattern {
            return Vec::new();
        }
        let mut violations = Vec::new();
        self.check_value_against_class(
            object.class,
            value,
            &object.name.to_string(),
            &mut violations,
        );
        if let Ok(class_def) = self.schema.class(object.class) {
            self.run_procedures(
                &class_def.procedures,
                &object.name.to_string(),
                ItemId::Object(object.id),
                ProcedureEvent::Update,
                Some(value),
                &mut violations,
            );
        }
        violations
    }

    /// Checks deletion of an object (runs Delete procedures; structural max-cardinality checks
    /// never fail on deletion).
    pub fn check_delete_object(&self, object: &ObjectRecord) -> Vec<ConsistencyViolation> {
        if object.is_pattern {
            return Vec::new();
        }
        let mut violations = Vec::new();
        if let Ok(class_def) = self.schema.class(object.class) {
            self.run_procedures(
                &class_def.procedures,
                &object.name.to_string(),
                ItemId::Object(object.id),
                ProcedureEvent::Delete,
                None,
                &mut violations,
            );
        }
        violations
    }

    // ----- relationship checks ------------------------------------------------------------------------

    /// Checks creation of a relationship of `association` with the given role bindings and
    /// attribute values.  `exclude` is a relationship id to ignore when counting cardinalities
    /// and cycles (used when re-checking an existing relationship after re-classification).
    pub fn check_new_relationship(
        &self,
        association: AssociationId,
        bindings: &[(String, ObjectId)],
        attributes: &HashMap<String, Value>,
        is_pattern: bool,
        exclude: Option<RelationshipId>,
    ) -> Vec<ConsistencyViolation> {
        if is_pattern {
            return Vec::new();
        }
        let mut violations = Vec::new();
        let Ok(assoc_def) = self.schema.association(association) else {
            violations.push(ConsistencyViolation::UnknownRoleBinding {
                association: association.to_string(),
                role: "<unknown association>".to_string(),
            });
            return violations;
        };
        let assoc_name = assoc_def.name.clone();

        // Every declared role must be bound exactly once; no extra bindings.
        for role in &assoc_def.roles {
            if !bindings.iter().any(|(r, _)| r == &role.name) {
                violations.push(ConsistencyViolation::MissingRoleBinding {
                    association: assoc_name.clone(),
                    role: role.name.clone(),
                });
            }
        }
        for (role_name, object_id) in bindings {
            let Some(role) = assoc_def.role(role_name) else {
                violations.push(ConsistencyViolation::UnknownRoleBinding {
                    association: assoc_name.clone(),
                    role: role_name.clone(),
                });
                continue;
            };
            let Some(object) = self.store.live_object(*object_id) else {
                violations.push(ConsistencyViolation::DanglingBinding {
                    association: assoc_name.clone(),
                    role: role_name.clone(),
                });
                continue;
            };
            if !self.schema.class_is_a(object.class, role.class) {
                violations.push(ConsistencyViolation::RoleClassMismatch {
                    association: assoc_name.clone(),
                    role: role_name.clone(),
                    expected: self.class_name(role.class),
                    found: self.class_name(object.class),
                });
            }
        }

        // Maximum role cardinalities, counted per generalization ancestor by role position.
        if violations.is_empty() {
            self.check_role_maxima(association, bindings, exclude, &mut violations);
            self.check_acyclicity(association, bindings, exclude, &mut violations);
        }

        // Relationship attributes must be declared (on the association or an ancestor) and
        // conform to their domains.
        for (attr_name, attr_value) in attributes {
            let decl = self
                .schema
                .association_ancestors(association)
                .into_iter()
                .filter_map(|a| self.schema.association(a).ok())
                .find_map(|a| a.attribute(attr_name).cloned());
            match decl {
                Some(decl) => {
                    if !attr_value.conforms_to(&decl.domain) {
                        violations.push(ConsistencyViolation::DomainViolation {
                            subject: format!("{assoc_name}.{attr_name}"),
                            expected: decl.domain.keyword(),
                            found: attr_value.type_name().to_string(),
                        });
                    }
                }
                None => violations.push(ConsistencyViolation::UnknownAttribute {
                    association: assoc_name.clone(),
                    attribute: attr_name.clone(),
                }),
            }
        }

        self.run_procedures(
            &assoc_def.procedures,
            &assoc_name,
            ItemId::Relationship(RelationshipId(0)),
            ProcedureEvent::Create,
            None,
            &mut violations,
        );
        violations
    }

    /// Counts, for every ancestor association and every role position, how many live
    /// non-pattern relationships each bound object already participates in, and flags
    /// violations of the ancestor's maximum cardinality.
    fn check_role_maxima(
        &self,
        association: AssociationId,
        bindings: &[(String, ObjectId)],
        exclude: Option<RelationshipId>,
        violations: &mut Vec<ConsistencyViolation>,
    ) {
        let Ok(assoc_def) = self.schema.association(association) else { return };
        for ancestor_id in self.schema.association_ancestors(association) {
            let Ok(ancestor) = self.schema.association(ancestor_id) else { continue };
            // Relationships counting towards this ancestor: every live, non-pattern relationship
            // whose association is the ancestor or one of its descendants.
            let mut members: Vec<&RelationshipRecord> = Vec::new();
            let mut hierarchy: Vec<AssociationId> =
                self.schema.association_descendants(ancestor_id);
            hierarchy.push(ancestor_id);
            for assoc in hierarchy {
                members.extend(
                    self.store
                        .association_extent(assoc)
                        .into_iter()
                        .filter(|r| !r.is_pattern && Some(r.id) != exclude),
                );
            }
            for (idx, ancestor_role) in ancestor.roles.iter().enumerate() {
                let Some(max) = ancestor_role.cardinality.max else { continue };
                // The binding in the *new* relationship at this role position.
                let Some(own_role) = assoc_def.roles.get(idx) else { continue };
                let Some((_, bound_obj)) = bindings.iter().find(|(r, _)| r == &own_role.name)
                else {
                    continue;
                };
                let existing = members
                    .iter()
                    .filter(|r| r.bindings.get(idx).map(|(_, o)| o) == Some(bound_obj))
                    .count() as u32;
                if existing + 1 > max {
                    violations.push(ConsistencyViolation::RoleMaxCardinalityExceeded {
                        association: ancestor.name.clone(),
                        role: ancestor_role.name.clone(),
                        object: self
                            .store
                            .object(*bound_obj)
                            .map(|o| o.name.to_string())
                            .unwrap_or_else(|| bound_obj.to_string()),
                        max,
                        attempted: existing + 1,
                    });
                }
            }
        }
    }

    /// Checks that adding the relationship keeps every ACYCLIC ancestor association acyclic.
    fn check_acyclicity(
        &self,
        association: AssociationId,
        bindings: &[(String, ObjectId)],
        exclude: Option<RelationshipId>,
        violations: &mut Vec<ConsistencyViolation>,
    ) {
        let Ok(assoc_def) = self.schema.association(association) else { return };
        if assoc_def.roles.len() != 2 || bindings.len() < 2 {
            return;
        }
        for ancestor_id in self.schema.association_ancestors(association) {
            let Ok(ancestor) = self.schema.association(ancestor_id) else { continue };
            if !ancestor.acyclic || ancestor.roles.len() != 2 {
                continue;
            }
            // Edge direction: role 0 → role 1 (e.g. `in` → `container`).
            let Some(from_role) = assoc_def.roles.first() else { continue };
            let Some(to_role) = assoc_def.roles.get(1) else { continue };
            let Some((_, from_obj)) = bindings.iter().find(|(r, _)| r == &from_role.name) else {
                continue;
            };
            let Some((_, to_obj)) = bindings.iter().find(|(r, _)| r == &to_role.name) else {
                continue;
            };
            if from_obj == to_obj {
                violations.push(ConsistencyViolation::CycleIntroduced {
                    association: ancestor.name.clone(),
                    object: self
                        .store
                        .object(*from_obj)
                        .map(|o| o.name.to_string())
                        .unwrap_or_else(|| from_obj.to_string()),
                });
                continue;
            }
            // Build the edge set of the whole hierarchy and look for a path to_obj ↝ from_obj.
            let mut edges: HashMap<ObjectId, Vec<ObjectId>> = HashMap::new();
            let mut hierarchy: Vec<AssociationId> =
                self.schema.association_descendants(ancestor_id);
            hierarchy.push(ancestor_id);
            for assoc in hierarchy {
                for rel in self.store.association_extent(assoc) {
                    if rel.is_pattern || Some(rel.id) == exclude {
                        continue;
                    }
                    if let (Some((_, a)), Some((_, b))) =
                        (rel.bindings.first(), rel.bindings.get(1))
                    {
                        edges.entry(*a).or_default().push(*b);
                    }
                }
            }
            let mut seen: HashSet<ObjectId> = HashSet::new();
            let mut stack = vec![*to_obj];
            let mut cycle = false;
            while let Some(node) = stack.pop() {
                if node == *from_obj {
                    cycle = true;
                    break;
                }
                if !seen.insert(node) {
                    continue;
                }
                if let Some(nexts) = edges.get(&node) {
                    stack.extend(nexts.iter().copied());
                }
            }
            if cycle {
                violations.push(ConsistencyViolation::CycleIntroduced {
                    association: ancestor.name.clone(),
                    object: self
                        .store
                        .object(*from_obj)
                        .map(|o| o.name.to_string())
                        .unwrap_or_else(|| from_obj.to_string()),
                });
            }
        }
    }

    /// Checks a single relationship-attribute update.
    pub fn check_attribute_update(
        &self,
        relationship: &RelationshipRecord,
        attribute: &str,
        value: &Value,
    ) -> Vec<ConsistencyViolation> {
        if relationship.is_pattern {
            return Vec::new();
        }
        let mut attributes = HashMap::new();
        attributes.insert(attribute.to_string(), value.clone());
        // Reuse the attribute-validation part of the relationship check (bindings already valid).
        let mut violations = Vec::new();
        let assoc_name = self.assoc_name(relationship.association);
        let decl = self
            .schema
            .association_ancestors(relationship.association)
            .into_iter()
            .filter_map(|a| self.schema.association(a).ok())
            .find_map(|a| a.attribute(attribute).cloned());
        match decl {
            Some(decl) => {
                if !value.conforms_to(&decl.domain) {
                    violations.push(ConsistencyViolation::DomainViolation {
                        subject: format!("{assoc_name}.{attribute}"),
                        expected: decl.domain.keyword(),
                        found: value.type_name().to_string(),
                    });
                }
            }
            None => violations.push(ConsistencyViolation::UnknownAttribute {
                association: assoc_name,
                attribute: attribute.to_string(),
            }),
        }
        violations
    }

    // ----- re-classification checks ----------------------------------------------------------------------

    /// Checks moving an object to a new class within a generalization hierarchy.
    pub fn check_reclassify_object(
        &self,
        object: &ObjectRecord,
        new_class: ClassId,
    ) -> Vec<ConsistencyViolation> {
        let mut violations = Vec::new();
        let hierarchy = GeneralizationHierarchy::new(self.schema);
        use seed_schema::generalization::MoveKind;
        match hierarchy.classify_class_move(object.class, new_class) {
            MoveKind::Unrelated => {
                violations.push(ConsistencyViolation::UnrelatedReclassification {
                    from: self.class_name(object.class),
                    to: self.class_name(new_class),
                });
                return violations;
            }
            MoveKind::Identity
            | MoveKind::Specialize
            | MoveKind::Generalize
            | MoveKind::Lateral => {}
        }
        if object.is_pattern {
            return violations;
        }

        // The value must conform to the new class.
        self.check_value_against_class(
            new_class,
            &object.value,
            &object.name.to_string(),
            &mut violations,
        );

        // Dependent children must still hang off a legal owner class.
        for child in self.store.children_of(object.id) {
            if let Ok(child_class) = self.schema.class(child.class) {
                if let Some(owner) = child_class.owner {
                    if !self.schema.class_is_a(new_class, owner) {
                        violations.push(ConsistencyViolation::ReclassificationBreaksStructure {
                            subject: object.name.to_string(),
                            reason: format!(
                                "dependent object '{}' requires an owner of class '{}'",
                                child.name,
                                self.class_name(owner)
                            ),
                        });
                    }
                }
            }
        }

        // Every relationship the object participates in must still be class-compatible.
        for rel in self.store.relationships_of(object.id) {
            if rel.is_pattern {
                continue;
            }
            let Ok(assoc) = self.schema.association(rel.association) else { continue };
            for (role_name, bound) in &rel.bindings {
                if *bound != object.id {
                    continue;
                }
                if let Some(role) = assoc.role(role_name) {
                    if !self.schema.class_is_a(new_class, role.class) {
                        violations.push(ConsistencyViolation::ReclassificationBreaksStructure {
                            subject: object.name.to_string(),
                            reason: format!(
                                "relationship '{}' requires '{}' in role '{}'",
                                assoc.name,
                                self.class_name(role.class),
                                role_name
                            ),
                        });
                    }
                }
            }
        }

        // Attached procedures of the target class observe the re-classification as an update.
        if let Ok(class_def) = self.schema.class(new_class) {
            self.run_procedures(
                &class_def.procedures,
                &object.name.to_string(),
                ItemId::Object(object.id),
                ProcedureEvent::Update,
                Some(&object.value),
                &mut violations,
            );
        }
        violations
    }

    /// Checks moving a relationship to a new association within a generalization hierarchy
    /// (e.g. making a vague `Access` precise as a `Write`).
    pub fn check_reclassify_relationship(
        &self,
        relationship: &RelationshipRecord,
        new_association: AssociationId,
    ) -> Vec<ConsistencyViolation> {
        let mut violations = Vec::new();
        let hierarchy = GeneralizationHierarchy::new(self.schema);
        use seed_schema::generalization::MoveKind;
        if hierarchy.classify_association_move(relationship.association, new_association)
            == MoveKind::Unrelated
        {
            violations.push(ConsistencyViolation::UnrelatedReclassification {
                from: self.assoc_name(relationship.association),
                to: self.assoc_name(new_association),
            });
            return violations;
        }
        if relationship.is_pattern {
            return violations;
        }
        let Ok(new_assoc) = self.schema.association(new_association) else { return violations };
        let Ok(old_assoc) = self.schema.association(relationship.association) else {
            return violations;
        };

        // Re-bind by role position: role i of the old association corresponds to role i of the
        // new one (`Access.from` ↔ `Write.to`).
        let new_bindings: Vec<(String, ObjectId)> = relationship
            .bindings
            .iter()
            .enumerate()
            .map(|(idx, (_, obj))| {
                let role_name = new_assoc
                    .roles
                    .get(idx)
                    .map(|r| r.name.clone())
                    .unwrap_or_else(|| old_assoc.roles[idx].name.clone());
                (role_name, *obj)
            })
            .collect();
        // Attribute values were validated when they were set; they stay attached to the
        // relationship across re-classification (a `NumberOfWrites` recorded while the
        // relationship was a `Write` remains stored if the knowledge later becomes vague again),
        // so only the structural rules are re-checked here.
        violations.extend(self.check_new_relationship(
            new_association,
            &new_bindings,
            &HashMap::new(),
            false,
            Some(relationship.id),
        ));
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::ObjectName;
    use seed_schema::figure3_schema;

    struct Fixture {
        schema: Schema,
        store: DataStore,
        procedures: ProcedureRegistry,
    }

    impl Fixture {
        fn new() -> Self {
            Self {
                schema: figure3_schema(),
                store: DataStore::new(),
                procedures: ProcedureRegistry::new(),
            }
        }

        fn checker(&self) -> ConsistencyChecker<'_> {
            ConsistencyChecker::new(&self.schema, &self.store, &self.procedures)
        }

        fn add_object(&mut self, name: &str, class: &str) -> ObjectId {
            let class = self.schema.class_id(class).unwrap();
            let id = self.store.allocate_object_id();
            self.store.insert_object(ObjectRecord::new(id, class, ObjectName::root(name), None));
            id
        }

        fn add_relationship(
            &mut self,
            assoc: &str,
            bindings: Vec<(&str, ObjectId)>,
        ) -> RelationshipId {
            let assoc = self.schema.association_id(assoc).unwrap();
            let id = self.store.allocate_relationship_id();
            self.store.insert_relationship(RelationshipRecord::new(
                id,
                assoc,
                bindings.into_iter().map(|(r, o)| (r.to_string(), o)).collect(),
            ));
            id
        }
    }

    #[test]
    fn valid_object_creation_passes() {
        let mut fx = Fixture::new();
        let _ = fx.add_object("Sensor", "Action");
        let checker = fx.checker();
        let data = fx.schema.class_id("Data").unwrap();
        assert!(checker
            .check_new_object(data, None, &Value::Undefined, "Alarms", false)
            .is_empty());
    }

    #[test]
    fn dependent_object_requires_matching_parent() {
        let mut fx = Fixture::new();
        let alarms = fx.add_object("Alarms", "Data");
        let sensor = fx.add_object("Sensor", "Action");
        let text = fx.schema.class_id("Data.Text").unwrap();
        let checker = fx.checker();
        // Correct parent class.
        assert!(checker
            .check_new_object(text, Some(alarms), &Value::Undefined, "Alarms.Text", false)
            .is_empty());
        // Wrong parent class.
        let v =
            checker.check_new_object(text, Some(sensor), &Value::Undefined, "Sensor.Text", false);
        assert!(v.iter().any(|x| matches!(x, ConsistencyViolation::WrongParentClass { .. })));
        // Missing parent.
        let v = checker.check_new_object(text, None, &Value::Undefined, "Text", false);
        assert!(v.iter().any(|x| matches!(x, ConsistencyViolation::ParentMismatch { .. })));
        // Independent class with parent.
        let data = fx.schema.class_id("Data").unwrap();
        let v = checker.check_new_object(data, Some(alarms), &Value::Undefined, "X", false);
        assert!(v.iter().any(|x| matches!(x, ConsistencyViolation::ParentMismatch { .. })));
    }

    #[test]
    fn occurrence_maximum_enforced() {
        let mut fx = Fixture::new();
        let alarms = fx.add_object("Alarms", "Data");
        let text = fx.schema.class_id("Data.Text").unwrap();
        // Add 16 Text children (the maximum of Figure 2/3).
        for i in 0..16 {
            let id = fx.store.allocate_object_id();
            fx.store.insert_object(ObjectRecord {
                id,
                class: text,
                name: ObjectName::parse(&format!("Alarms.Text[{i}]")).unwrap(),
                parent: Some(alarms),
                value: Value::Undefined,
                is_pattern: false,
                deleted: false,
            });
        }
        let checker = fx.checker();
        let v = checker.check_new_object(
            text,
            Some(alarms),
            &Value::Undefined,
            "Alarms.Text[16]",
            false,
        );
        assert!(v.iter().any(|x| matches!(
            x,
            ConsistencyViolation::OccurrenceExceeded { max: 16, attempted: 17, .. }
        )));
    }

    #[test]
    fn value_domain_checked() {
        let fx = Fixture::new();
        let checker = fx.checker();
        let selector = fx.schema.class_id("Data.Text.Selector").unwrap();
        // Domain violations are reported even though the parent is missing (both violations appear).
        let v = checker.check_new_object(selector, None, &Value::Integer(3), "X", false);
        assert!(v.iter().any(|x| matches!(x, ConsistencyViolation::DomainViolation { .. })));
        // Value on a class without domain.
        let data = fx.schema.class_id("Data").unwrap();
        let v = checker.check_new_object(data, None, &Value::string("oops"), "Alarms", false);
        assert!(v.iter().any(|x| matches!(x, ConsistencyViolation::NotAValueClass { .. })));
        // Undefined conforms everywhere.
        let v = checker.check_new_object(data, None, &Value::Undefined, "Alarms", false);
        assert!(v.is_empty());
    }

    #[test]
    fn pattern_items_are_not_checked() {
        let fx = Fixture::new();
        let checker = fx.checker();
        let selector = fx.schema.class_id("Data.Text.Selector").unwrap();
        // Grossly invalid, but it is a pattern: no violations.
        let v = checker.check_new_object(selector, None, &Value::Integer(3), "P", true);
        assert!(v.is_empty());
    }

    #[test]
    fn relationship_role_checks() {
        let mut fx = Fixture::new();
        let alarms = fx.add_object("Alarms", "Data");
        let sensor = fx.add_object("Sensor", "Action");
        let checker = fx.checker();
        let access = fx.schema.association_id("Access").unwrap();
        // Valid.
        let v = checker.check_new_relationship(
            access,
            &[("from".into(), alarms), ("by".into(), sensor)],
            &HashMap::new(),
            false,
            None,
        );
        assert!(v.is_empty(), "{v:?}");
        // Role class mismatch: Action in the `from` role.
        let v = checker.check_new_relationship(
            access,
            &[("from".into(), sensor), ("by".into(), alarms)],
            &HashMap::new(),
            false,
            None,
        );
        assert_eq!(
            v.iter()
                .filter(|x| matches!(x, ConsistencyViolation::RoleClassMismatch { .. }))
                .count(),
            2
        );
        // Missing binding.
        let v = checker.check_new_relationship(
            access,
            &[("from".into(), alarms)],
            &HashMap::new(),
            false,
            None,
        );
        assert!(v.iter().any(|x| matches!(x, ConsistencyViolation::MissingRoleBinding { .. })));
        // Unknown role.
        let v = checker.check_new_relationship(
            access,
            &[("from".into(), alarms), ("by".into(), sensor), ("onto".into(), alarms)],
            &HashMap::new(),
            false,
            None,
        );
        assert!(v.iter().any(|x| matches!(x, ConsistencyViolation::UnknownRoleBinding { .. })));
        // Read requires InputData in `from`; plain Data is not enough.
        let read = fx.schema.association_id("Read").unwrap();
        let v = checker.check_new_relationship(
            read,
            &[("from".into(), alarms), ("by".into(), sensor)],
            &HashMap::new(),
            false,
            None,
        );
        assert!(v.iter().any(|x| matches!(x, ConsistencyViolation::RoleClassMismatch { .. })));
    }

    #[test]
    fn dangling_binding_detected() {
        let mut fx = Fixture::new();
        let alarms = fx.add_object("Alarms", "Data");
        let checker = fx.checker();
        let access = fx.schema.association_id("Access").unwrap();
        let v = checker.check_new_relationship(
            access,
            &[("from".into(), alarms), ("by".into(), ObjectId(999))],
            &HashMap::new(),
            false,
            None,
        );
        assert!(v.iter().any(|x| matches!(x, ConsistencyViolation::DanglingBinding { .. })));
    }

    #[test]
    fn contained_max_cardinality_and_acyclicity() {
        let mut fx = Fixture::new();
        let a = fx.add_object("A", "Action");
        let b = fx.add_object("B", "Action");
        let c = fx.add_object("C", "Action");
        // A in B, B in C.
        fx.add_relationship("Contained", vec![("in", a), ("container", b)]);
        fx.add_relationship("Contained", vec![("in", b), ("container", c)]);
        let checker = fx.checker();
        let contained = fx.schema.association_id("Contained").unwrap();
        // A already has a container: the 0..1 maximum of role `in` forbids a second one.
        let v = checker.check_new_relationship(
            contained,
            &[("in".into(), a), ("container".into(), c)],
            &HashMap::new(),
            false,
            None,
        );
        assert!(v
            .iter()
            .any(|x| matches!(x, ConsistencyViolation::RoleMaxCardinalityExceeded { max: 1, .. })));
        // C in A closes a cycle C -> A -> B -> C.
        let v = checker.check_new_relationship(
            contained,
            &[("in".into(), c), ("container".into(), a)],
            &HashMap::new(),
            false,
            None,
        );
        assert!(v.iter().any(|x| matches!(x, ConsistencyViolation::CycleIntroduced { .. })));
        // Self containment.
        let v = checker.check_new_relationship(
            contained,
            &[("in".into(), c), ("container".into(), c)],
            &HashMap::new(),
            false,
            None,
        );
        assert!(v.iter().any(|x| matches!(x, ConsistencyViolation::CycleIntroduced { .. })));
    }

    #[test]
    fn attribute_domains_checked() {
        let mut fx = Fixture::new();
        let alarms = fx.add_object("Alarms", "OutputData");
        let sensor = fx.add_object("Sensor", "Action");
        let checker = fx.checker();
        let write = fx.schema.association_id("Write").unwrap();
        let mut attrs = HashMap::new();
        attrs.insert("NumberOfWrites".to_string(), Value::Integer(2));
        attrs.insert("ErrorHandling".to_string(), Value::symbol("repeat"));
        let v = checker.check_new_relationship(
            write,
            &[("to".into(), alarms), ("by".into(), sensor)],
            &attrs,
            false,
            None,
        );
        assert!(v.is_empty(), "{v:?}");
        // Wrong domain and unknown attribute.
        let mut attrs = HashMap::new();
        attrs.insert("NumberOfWrites".to_string(), Value::string("two"));
        attrs.insert("Ghost".to_string(), Value::Integer(1));
        let v = checker.check_new_relationship(
            write,
            &[("to".into(), alarms), ("by".into(), sensor)],
            &attrs,
            false,
            None,
        );
        assert!(v.iter().any(|x| matches!(x, ConsistencyViolation::DomainViolation { .. })));
        assert!(v.iter().any(|x| matches!(x, ConsistencyViolation::UnknownAttribute { .. })));
        // Enumeration literal outside the domain.
        let rel = RelationshipRecord::new(
            RelationshipId(1),
            write,
            vec![("to".into(), alarms), ("by".into(), sensor)],
        );
        let v = checker.check_attribute_update(&rel, "ErrorHandling", &Value::symbol("retry"));
        assert!(v.iter().any(|x| matches!(x, ConsistencyViolation::DomainViolation { .. })));
    }

    #[test]
    fn named_procedure_veto() {
        let mut fx = Fixture::new();
        let selector = fx.schema.class_id("Data.Text.Selector").unwrap();
        fx.schema
            .attach_class_procedure(selector, AttachedProcedure::Named("no_umlauts".into()))
            .unwrap();
        fx.procedures.register("no_umlauts", |ctx| {
            if ctx.value.and_then(|v| v.as_str()).map(|s| s.contains('ä')).unwrap_or(false) {
                Err("umlauts are not allowed".to_string())
            } else {
                Ok(())
            }
        });
        let alarms = fx.add_object("Alarms", "Data");
        let text = fx.schema.class_id("Data.Text").unwrap();
        let text_id = fx.store.allocate_object_id();
        fx.store.insert_object(ObjectRecord::new(
            text_id,
            text,
            ObjectName::parse("Alarms.Text").unwrap(),
            Some(alarms),
        ));
        let checker = fx.checker();
        let bad = checker.check_new_object(
            selector,
            Some(text_id),
            &Value::string("Darstellung der Zustände"),
            "Alarms.Text.Selector",
            false,
        );
        assert!(bad.iter().any(|x| matches!(x, ConsistencyViolation::ProcedureFailed { .. })));
        let good = checker.check_new_object(
            selector,
            Some(text_id),
            &Value::string("Representation"),
            "Alarms.Text.Selector",
            false,
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn declarative_procedures_evaluated() {
        let mut fx = Fixture::new();
        let desc = fx.schema.class_id("Action.Description").unwrap();
        fx.schema.attach_class_procedure(desc, AttachedProcedure::ValueNotEmpty).unwrap();
        fx.schema.attach_class_procedure(desc, AttachedProcedure::MaxLength(20)).unwrap();
        let handler = fx.add_object("AlarmHandler", "Action");
        let checker = fx.checker();
        let ok = checker.check_new_object(
            desc,
            Some(handler),
            &Value::string("Handles alarms"),
            "AlarmHandler.Description",
            false,
        );
        assert!(ok.is_empty(), "{ok:?}");
        let empty = checker.check_new_object(
            desc,
            Some(handler),
            &Value::string("   "),
            "AlarmHandler.Description",
            false,
        );
        assert!(empty.iter().any(|x| matches!(x, ConsistencyViolation::ProcedureFailed { .. })));
        let long = checker.check_new_object(
            desc,
            Some(handler),
            &Value::string("Generates alarms from process data, triggers Operator Alert"),
            "AlarmHandler.Description",
            false,
        );
        assert!(long.iter().any(|x| matches!(x, ConsistencyViolation::ProcedureFailed { .. })));
    }

    #[test]
    fn reclassification_checks() {
        let mut fx = Fixture::new();
        let alarms = fx.add_object("Alarms", "Thing");
        let sensor = fx.add_object("Sensor", "Action");
        let data = fx.schema.class_id("Data").unwrap();
        let output = fx.schema.class_id("OutputData").unwrap();
        let action = fx.schema.class_id("Action").unwrap();
        let text_class = fx.schema.class_id("Data.Text").unwrap();
        {
            let checker = fx.checker();
            let obj = fx.store.object(alarms).unwrap();
            // Thing -> Data is a specialization: fine.
            assert!(checker.check_reclassify_object(obj, data).is_empty());
            // Thing -> Data.Text is unrelated.
            let v = checker.check_reclassify_object(obj, text_class);
            assert!(v
                .iter()
                .any(|x| matches!(x, ConsistencyViolation::UnrelatedReclassification { .. })));
        }
        // Now make Alarms a Data with an Access relationship from Sensor, then try to make it an
        // Action: lateral move, but the Access `from` role requires Data.
        fx.store.update_object(alarms, |o| o.class = data);
        fx.add_relationship("Access", vec![("from", alarms), ("by", sensor)]);
        {
            let checker = fx.checker();
            let obj = fx.store.object(alarms).unwrap();
            let v = checker.check_reclassify_object(obj, action);
            assert!(v.iter().any(|x| matches!(
                x,
                ConsistencyViolation::ReclassificationBreaksStructure { .. }
            )));
            // Data -> OutputData is fine.
            assert!(checker.check_reclassify_object(obj, output).is_empty());
        }
    }

    #[test]
    fn relationship_reclassification_checks() {
        let mut fx = Fixture::new();
        let alarms = fx.add_object("Alarms", "Data");
        let sensor = fx.add_object("Sensor", "Action");
        let rel_id = fx.add_relationship("Access", vec![("from", alarms), ("by", sensor)]);
        let write = fx.schema.association_id("Write").unwrap();
        let read = fx.schema.association_id("Read").unwrap();
        let contained = fx.schema.association_id("Contained").unwrap();
        {
            let checker = fx.checker();
            let rel = fx.store.relationship(rel_id).unwrap();
            // Access -> Write needs OutputData in role 0: Alarms is plain Data, so this fails.
            let v = checker.check_reclassify_relationship(rel, write);
            assert!(v.iter().any(|x| matches!(x, ConsistencyViolation::RoleClassMismatch { .. })));
            // Access -> Contained is unrelated.
            let v = checker.check_reclassify_relationship(rel, contained);
            assert!(v
                .iter()
                .any(|x| matches!(x, ConsistencyViolation::UnrelatedReclassification { .. })));
        }
        // Specialize Alarms to OutputData; now Access -> Write succeeds, Read still fails.
        let output = fx.schema.class_id("OutputData").unwrap();
        fx.store.update_object(alarms, |o| o.class = output);
        {
            let checker = fx.checker();
            let rel = fx.store.relationship(rel_id).unwrap();
            assert!(checker.check_reclassify_relationship(rel, write).is_empty());
            let v = checker.check_reclassify_relationship(rel, read);
            assert!(!v.is_empty());
        }
    }
}
