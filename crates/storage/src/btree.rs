//! In-memory B+ tree keyed by byte strings.
//!
//! Serves as the ordered name index of the storage engine: SEED's prototype interface is
//! "retrieval by name", and hierarchical object names (`Alarms.Text.Body`) make prefix scans
//! the natural access path.  The tree is persisted wholesale on checkpoint (see
//! [`crate::engine`]) which matches the modest database sizes of a specification environment.
//!
//! The implementation is a classic order-`B` B+ tree: values live only in leaves, leaves are
//! chained for range scans, internal nodes store separator keys.

use std::fmt;

/// Maximum number of keys per node before it splits.
const DEFAULT_ORDER: usize = 32;

#[derive(Debug, Clone)]
enum Node {
    Leaf { keys: Vec<Vec<u8>>, values: Vec<u64> },
    Internal { keys: Vec<Vec<u8>>, children: Vec<Node> },
}

impl Node {
    fn new_leaf() -> Self {
        Node::Leaf { keys: Vec::new(), values: Vec::new() }
    }

    fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    fn len(&self) -> usize {
        match self {
            Node::Leaf { keys, .. } | Node::Internal { keys, .. } => keys.len(),
        }
    }
}

/// Result of inserting into a subtree: either it fit, or the node split and the new right
/// sibling (with its separator key) must be linked by the parent.
enum InsertResult {
    Fit(Option<u64>),
    Split { sep: Vec<u8>, right: Box<Node>, replaced: Option<u64> },
}

/// An ordered map from byte-string keys to `u64` values (record ids in packed form).
pub struct BPlusTree {
    root: Box<Node>,
    order: usize,
    len: usize,
}

impl fmt::Debug for BPlusTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BPlusTree")
            .field("order", &self.order)
            .field("len", &self.len)
            .field("height", &self.height())
            .finish()
    }
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BPlusTree {
    /// Creates an empty tree with the default order.
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// Creates an empty tree with a custom order (minimum 4), mainly for tests that want to
    /// force many splits with few keys.
    pub fn with_order(order: usize) -> Self {
        Self { root: Box::new(Node::new_leaf()), order: order.max(4), len: 0 }
    }

    /// Number of key/value pairs stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &*self.root;
        while let Node::Internal { children, .. } = node {
            h += 1;
            node = &children[0];
        }
        h
    }

    /// Inserts `key -> value`, returning the previous value if the key was present.
    pub fn insert(&mut self, key: &[u8], value: u64) -> Option<u64> {
        let order = self.order;
        match Self::insert_rec(&mut self.root, key, value, order) {
            InsertResult::Fit(replaced) => {
                if replaced.is_none() {
                    self.len += 1;
                }
                replaced
            }
            InsertResult::Split { sep, right, replaced } => {
                if replaced.is_none() {
                    self.len += 1;
                }
                let old_root = std::mem::replace(&mut self.root, Box::new(Node::new_leaf()));
                *self.root = Node::Internal { keys: vec![sep], children: vec![*old_root, *right] };
                replaced
            }
        }
    }

    fn insert_rec(node: &mut Node, key: &[u8], value: u64, order: usize) -> InsertResult {
        match node {
            Node::Leaf { keys, values } => match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                Ok(i) => {
                    let old = values[i];
                    values[i] = value;
                    InsertResult::Fit(Some(old))
                }
                Err(i) => {
                    keys.insert(i, key.to_vec());
                    values.insert(i, value);
                    if keys.len() > order {
                        let mid = keys.len() / 2;
                        let right_keys = keys.split_off(mid);
                        let right_values = values.split_off(mid);
                        let sep = right_keys[0].clone();
                        InsertResult::Split {
                            sep,
                            right: Box::new(Node::Leaf { keys: right_keys, values: right_values }),
                            replaced: None,
                        }
                    } else {
                        InsertResult::Fit(None)
                    }
                }
            },
            Node::Internal { keys, children } => {
                let idx = match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                match Self::insert_rec(&mut children[idx], key, value, order) {
                    InsertResult::Fit(replaced) => InsertResult::Fit(replaced),
                    InsertResult::Split { sep, right, replaced } => {
                        keys.insert(idx, sep);
                        children.insert(idx + 1, *right);
                        if keys.len() > order {
                            let mid = keys.len() / 2;
                            let sep_up = keys[mid].clone();
                            let right_keys = keys.split_off(mid + 1);
                            keys.pop(); // the separator moves up, it is not duplicated
                            let right_children = children.split_off(mid + 1);
                            InsertResult::Split {
                                sep: sep_up,
                                right: Box::new(Node::Internal {
                                    keys: right_keys,
                                    children: right_children,
                                }),
                                replaced,
                            }
                        } else {
                            InsertResult::Fit(replaced)
                        }
                    }
                }
            }
        }
    }

    /// Looks up the value for `key`.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        let mut node = &*self.root;
        loop {
            match node {
                Node::Leaf { keys, values } => {
                    return keys
                        .binary_search_by(|k| k.as_slice().cmp(key))
                        .ok()
                        .map(|i| values[i]);
                }
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    node = &children[idx];
                }
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Removes `key`, returning its value if present.
    ///
    /// Removal uses lazy deletion (no rebalancing): leaves may become under-full, which is
    /// acceptable for the index workload (deletions are rare — SEED marks items as deleted
    /// logically rather than removing them physically).  Structural invariants required by
    /// lookups and scans are preserved.
    pub fn remove(&mut self, key: &[u8]) -> Option<u64> {
        fn remove_rec(node: &mut Node, key: &[u8]) -> Option<u64> {
            match node {
                Node::Leaf { keys, values } => {
                    match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                        Ok(i) => {
                            keys.remove(i);
                            Some(values.remove(i))
                        }
                        Err(_) => None,
                    }
                }
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    remove_rec(&mut children[idx], key)
                }
            }
        }
        let removed = remove_rec(&mut self.root, key);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Returns all `(key, value)` pairs whose key starts with `prefix`, in key order.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, u64)> {
        let mut out = Vec::new();
        self.visit_range(&mut |k, v| {
            if k.starts_with(prefix) {
                out.push((k.to_vec(), v));
                true
            } else {
                // Keys are visited in order; once past the prefix region we can stop.
                k < prefix || k.starts_with(prefix)
            }
        });
        out
    }

    /// Returns all `(key, value)` pairs with `low <= key < high`, in key order.
    pub fn scan_range(&self, low: &[u8], high: &[u8]) -> Vec<(Vec<u8>, u64)> {
        let mut out = Vec::new();
        self.visit_range(&mut |k, v| {
            if k >= high {
                return false;
            }
            if k >= low {
                out.push((k.to_vec(), v));
            }
            true
        });
        out
    }

    /// Returns every `(key, value)` pair in key order.
    pub fn iter_all(&self) -> Vec<(Vec<u8>, u64)> {
        let mut out = Vec::with_capacity(self.len);
        self.visit_range(&mut |k, v| {
            out.push((k.to_vec(), v));
            true
        });
        out
    }

    /// In-order traversal; the callback returns `false` to stop early.
    fn visit_range(&self, f: &mut dyn FnMut(&[u8], u64) -> bool) {
        fn walk(node: &Node, f: &mut dyn FnMut(&[u8], u64) -> bool) -> bool {
            match node {
                Node::Leaf { keys, values } => {
                    for (k, v) in keys.iter().zip(values) {
                        if !f(k, *v) {
                            return false;
                        }
                    }
                    true
                }
                Node::Internal { children, .. } => {
                    for child in children {
                        if !walk(child, f) {
                            return false;
                        }
                    }
                    true
                }
            }
        }
        walk(&self.root, f);
    }

    /// Rebuilds a tree from sorted or unsorted pairs (used when loading a checkpoint).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Vec<u8>, u64)>) -> Self {
        let mut tree = Self::new();
        for (k, v) in pairs {
            tree.insert(&k, v);
        }
        tree
    }

    /// Internal consistency check used by tests: keys are in order and every internal node has
    /// one more child than keys.
    pub fn check_invariants(&self) -> bool {
        fn check(node: &Node, last: &mut Option<Vec<u8>>) -> bool {
            match node {
                Node::Leaf { keys, values } => {
                    if keys.len() != values.len() {
                        return false;
                    }
                    for k in keys {
                        if let Some(prev) = last {
                            if &*prev >= k {
                                return false;
                            }
                        }
                        *last = Some(k.clone());
                    }
                    true
                }
                Node::Internal { keys, children } => {
                    if children.len() != keys.len() + 1 {
                        return false;
                    }
                    children.iter().all(|c| check(c, last))
                }
            }
        }
        // The root is allowed to be under-full; everything else is structural.
        let _ = self.root.is_leaf() || self.root.len() >= 1;
        check(&self.root, &mut None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(b"anything"), None);
        assert_eq!(t.height(), 1);
        assert!(t.check_invariants());
    }

    #[test]
    fn insert_get_overwrite() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert(b"Alarms", 1), None);
        assert_eq!(t.insert(b"AlarmHandler", 2), None);
        assert_eq!(t.get(b"Alarms"), Some(1));
        assert_eq!(t.get(b"AlarmHandler"), Some(2));
        assert_eq!(t.insert(b"Alarms", 10), Some(1));
        assert_eq!(t.get(b"Alarms"), Some(10));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn many_inserts_keep_order_and_split() {
        let mut t = BPlusTree::with_order(4);
        let n = 500u64;
        for i in 0..n {
            t.insert(format!("key{i:05}").as_bytes(), i);
        }
        assert_eq!(t.len(), n as usize);
        assert!(t.height() > 2, "tree with order 4 and 500 keys must have split");
        assert!(t.check_invariants());
        for i in 0..n {
            assert_eq!(t.get(format!("key{i:05}").as_bytes()), Some(i));
        }
        let all = t.iter_all();
        assert_eq!(all.len(), n as usize);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "iteration must be sorted");
    }

    #[test]
    fn reverse_and_random_order_inserts() {
        let mut t = BPlusTree::with_order(4);
        for i in (0..200u64).rev() {
            t.insert(format!("{i:04}").as_bytes(), i);
        }
        assert!(t.check_invariants());
        for i in 0..200u64 {
            assert_eq!(t.get(format!("{i:04}").as_bytes()), Some(i));
        }
    }

    #[test]
    fn remove_works() {
        let mut t = BPlusTree::with_order(4);
        for i in 0..100u64 {
            t.insert(format!("k{i:03}").as_bytes(), i);
        }
        assert_eq!(t.remove(b"k050"), Some(50));
        assert_eq!(t.remove(b"k050"), None);
        assert_eq!(t.get(b"k050"), None);
        assert_eq!(t.len(), 99);
        assert!(t.check_invariants());
    }

    #[test]
    fn prefix_scan_matches_hierarchical_names() {
        let mut t = BPlusTree::new();
        t.insert(b"Alarms", 1);
        t.insert(b"Alarms.Text", 2);
        t.insert(b"Alarms.Text.Body", 3);
        t.insert(b"Alarms.Text.Selector", 4);
        t.insert(b"AlarmHandler", 5);
        t.insert(b"Zebra", 6);
        let hits = t.scan_prefix(b"Alarms.");
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].0, b"Alarms.Text".to_vec());
        assert_eq!(hits[2].0, b"Alarms.Text.Selector".to_vec());
        let all_alarm = t.scan_prefix(b"Alarm");
        assert_eq!(all_alarm.len(), 5);
    }

    #[test]
    fn range_scan_bounds_are_half_open() {
        let mut t = BPlusTree::new();
        for i in 0..10u64 {
            t.insert(format!("{i}").as_bytes(), i);
        }
        let r = t.scan_range(b"3", b"7");
        let keys: Vec<_> = r.iter().map(|(k, _)| String::from_utf8(k.clone()).unwrap()).collect();
        assert_eq!(keys, vec!["3", "4", "5", "6"]);
    }

    #[test]
    fn from_pairs_rebuilds() {
        let pairs: Vec<(Vec<u8>, u64)> =
            (0..50u64).map(|i| (format!("p{i:02}").into_bytes(), i * 2)).collect();
        let t = BPlusTree::from_pairs(pairs.clone());
        assert_eq!(t.len(), 50);
        for (k, v) in pairs {
            assert_eq!(t.get(&k), Some(v));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn behaves_like_btreemap(
            ops in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 0..12), any::<u64>(), any::<bool>()),
                1..300,
            )
        ) {
            let mut tree = BPlusTree::with_order(4);
            let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
            for (key, value, is_remove) in ops {
                if is_remove {
                    prop_assert_eq!(tree.remove(&key), model.remove(&key));
                } else {
                    prop_assert_eq!(tree.insert(&key, value), model.insert(key.clone(), value));
                }
                prop_assert!(tree.check_invariants());
            }
            prop_assert_eq!(tree.len(), model.len());
            let tree_all = tree.iter_all();
            let model_all: Vec<(Vec<u8>, u64)> = model.iter().map(|(k, v)| (k.clone(), *v)).collect();
            prop_assert_eq!(tree_all, model_all);
        }

        #[test]
        fn prefix_scan_agrees_with_filter(
            keys in proptest::collection::btree_map(
                proptest::collection::vec(0u8..4, 0..6), any::<u64>(), 0..100
            ),
            prefix in proptest::collection::vec(0u8..4, 0..3),
        ) {
            let tree = BPlusTree::from_pairs(keys.iter().map(|(k, v)| (k.clone(), *v)));
            let expected: Vec<(Vec<u8>, u64)> = keys
                .iter()
                .filter(|(k, _)| k.starts_with(&prefix))
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            prop_assert_eq!(tree.scan_prefix(&prefix), expected);
        }
    }
}
