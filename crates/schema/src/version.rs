//! Schema versions.
//!
//! "When the schema is modified, the interpretation of versions that were created before this
//! modification becomes a problem.  Therefore, we must generate schema versions, too."
//! (paper, section *Versions*)
//!
//! The [`SchemaRegistry`] keeps every published schema version immutable and records which
//! schema version was current when each database version was created; `seed-core` stores the
//! association between database versions and schema versions.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::{SchemaError, SchemaResult};
use crate::schema::Schema;

/// Identifier of a schema version (monotonically increasing, starting at 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SchemaVersionId(pub u32);

impl std::fmt::Display for SchemaVersionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// A registry of immutable schema versions with one *current* version.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemaRegistry {
    versions: BTreeMap<u32, Schema>,
    current: u32,
}

impl SchemaRegistry {
    /// Creates a registry whose first (and current) version is `initial`.
    pub fn new(initial: Schema) -> Self {
        let mut versions = BTreeMap::new();
        versions.insert(1, initial);
        Self { versions, current: 1 }
    }

    /// The current schema version id.
    pub fn current_id(&self) -> SchemaVersionId {
        SchemaVersionId(self.current)
    }

    /// The current schema.
    pub fn current(&self) -> &Schema {
        self.versions.get(&self.current).expect("current version always exists")
    }

    /// The schema stored under `id`.
    pub fn get(&self, id: SchemaVersionId) -> SchemaResult<&Schema> {
        self.versions
            .get(&id.0)
            .ok_or_else(|| SchemaError::Invalid(format!("unknown schema version {id}")))
    }

    /// Publishes a new schema version, which becomes current.  Older versions stay retrievable
    /// so that database versions created under them remain interpretable.
    pub fn publish(&mut self, schema: Schema) -> SchemaVersionId {
        let id = self.versions.keys().max().copied().unwrap_or(0) + 1;
        self.versions.insert(id, schema);
        self.current = id;
        SchemaVersionId(id)
    }

    /// Makes a historical schema version current again (e.g. when working on a database
    /// alternative rooted before a schema change).
    pub fn select(&mut self, id: SchemaVersionId) -> SchemaResult<()> {
        if !self.versions.contains_key(&id.0) {
            return Err(SchemaError::Invalid(format!("unknown schema version {id}")));
        }
        self.current = id.0;
        Ok(())
    }

    /// All version ids in ascending order.
    pub fn version_ids(&self) -> Vec<SchemaVersionId> {
        self.versions.keys().map(|&k| SchemaVersionId(k)).collect()
    }

    /// Number of stored versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether the registry is empty (never true: a registry always has at least one version).
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Differences between two schema versions, as human-readable change descriptions.
    /// Used by tools to explain why old database versions may not satisfy the new schema.
    pub fn diff(&self, from: SchemaVersionId, to: SchemaVersionId) -> SchemaResult<Vec<String>> {
        let a = self.get(from)?;
        let b = self.get(to)?;
        let mut changes = Vec::new();
        for class in b.classes() {
            if a.class_by_name(&class.name).is_err() {
                changes.push(format!("class '{}' added", class.name));
            }
        }
        for class in a.classes() {
            if b.class_by_name(&class.name).is_err() {
                changes.push(format!("class '{}' removed", class.name));
            }
        }
        for assoc in b.associations() {
            if a.association_by_name(&assoc.name).is_err() {
                changes.push(format!("association '{}' added", assoc.name));
            }
        }
        for assoc in a.associations() {
            if b.association_by_name(&assoc.name).is_err() {
                changes.push(format!("association '{}' removed", assoc.name));
            }
        }
        Ok(changes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{figure2_schema, figure3_schema};

    #[test]
    fn registry_starts_with_one_version() {
        let reg = SchemaRegistry::new(figure2_schema());
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.current_id(), SchemaVersionId(1));
        assert_eq!(reg.current().name, "Figure2");
        assert!(!reg.is_empty());
    }

    #[test]
    fn publish_creates_new_current_and_keeps_old() {
        let mut reg = SchemaRegistry::new(figure2_schema());
        let v2 = reg.publish(figure3_schema());
        assert_eq!(v2, SchemaVersionId(2));
        assert_eq!(reg.current().name, "Figure3");
        assert_eq!(reg.get(SchemaVersionId(1)).unwrap().name, "Figure2");
        assert_eq!(reg.version_ids(), vec![SchemaVersionId(1), SchemaVersionId(2)]);
    }

    #[test]
    fn select_switches_current() {
        let mut reg = SchemaRegistry::new(figure2_schema());
        reg.publish(figure3_schema());
        reg.select(SchemaVersionId(1)).unwrap();
        assert_eq!(reg.current().name, "Figure2");
        assert!(reg.select(SchemaVersionId(9)).is_err());
    }

    #[test]
    fn diff_reports_added_elements() {
        let mut reg = SchemaRegistry::new(figure2_schema());
        let v2 = reg.publish(figure3_schema());
        let changes = reg.diff(SchemaVersionId(1), v2).unwrap();
        assert!(changes.iter().any(|c| c.contains("'Thing' added")));
        assert!(changes.iter().any(|c| c.contains("'Access' added")));
        let reverse = reg.diff(v2, SchemaVersionId(1)).unwrap();
        assert!(reverse.iter().any(|c| c.contains("'Thing' removed")));
    }

    #[test]
    fn unknown_version_errors() {
        let reg = SchemaRegistry::new(figure2_schema());
        assert!(reg.get(SchemaVersionId(3)).is_err());
        assert!(reg.diff(SchemaVersionId(1), SchemaVersionId(3)).is_err());
    }
}
