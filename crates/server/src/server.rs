//! The central server: one database, many clients, write locks, single-transaction check-in.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Mutex, RwLock};

use seed_core::{
    Database, NameSegment, ObjectId, ObjectRecord, SeedError, Snapshot, SnapshotCell, Value,
    VersionId,
};

use crate::error::{ServerError, ServerResult};
use crate::lock::LockTable;
use crate::protocol::{
    AssociationSummary, CheckoutSet, ClassSummary, ClientId, HealthStatus, PersistenceStatus,
    PromotionReceipt, QueryAnswer, RelationshipInfo, ReplicationRole, ReplicationStatus, Request,
    Response, SchemaSummary, Update,
};

/// The replica-side half of a controlled promotion, implemented by the replication driver
/// (`seed-net`'s `ReplicaNode`): fence the old primary, finish applying the shipped tail, flip
/// the replica store to a durable primary and install it on the server.  [`SeedServer`] holds a
/// registered promoter so [`Request::Promote`] can reach the driver through the protocol.
pub trait Promoter: Send + Sync {
    /// Carries out the promotion under topology epoch `epoch`; `new_primary` is the address
    /// this node will serve from (what fenced peers and redirected clients are told).
    fn promote(&self, epoch: u64, new_primary: &str) -> ServerResult<PromotionReceipt>;
}

/// Default replica readiness budget: a replica more than this many log records behind the
/// primary reports not-ready ([`SeedServer::health`]).
pub const DEFAULT_HEALTH_LAG_BUDGET: u64 = 1024;

/// Process-wide lock-table metrics (`docs/OBSERVABILITY.md`): how long check-outs wait to
/// enter the lock table, and how many write locks are held right now.
struct LockMetrics {
    wait_us: seed_obs::Histogram,
    held: seed_obs::Gauge,
}

fn lock_metrics() -> &'static LockMetrics {
    static METRICS: std::sync::OnceLock<LockMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = seed_obs::global();
        LockMetrics {
            wait_us: registry.histogram("lock_wait_us"),
            held: registry.gauge("locks_held"),
        }
    })
}

/// The central SEED server of the two-level multi-user scheme.
///
/// The **write** path (check-in, version creation, replica apply) runs under the database's
/// write lock; the **read** surface (retrieval, queries, check-out resolution, status) runs
/// against an immutable MVCC [`Snapshot`] published by every committed write — readers never
/// take the database lock at all, so a slow check-in cannot stall them (see
/// `docs/ARCHITECTURE.md`, *Snapshot reads*).  The lock table still serializes conflicting
/// check-outs; that is pessimistic by design (the paper's two-level scheme), orthogonal to
/// read snapshotting.
pub struct SeedServer {
    db: RwLock<Database>,
    /// The serving snapshot: published under [`SeedServer::db`]'s write lock at every commit
    /// point, read lock-free by the whole read surface.
    snapshots: SnapshotCell,
    locks: Mutex<LockTable>,
    /// Names each client has checked out (lock bookkeeping by name, since clients address
    /// objects by name).
    checkouts: Mutex<HashMap<ClientId, Vec<String>>>,
    /// Last activity per connected client, for idle-lock reclamation (the paper's crash
    /// recovery rule: a vanished client's checked-out data must come back).
    sessions: Mutex<HashMap<ClientId, Instant>>,
    next_client: AtomicU64,
    /// `Some(primary address)` turns this server into a read-only replica: every write surface
    /// answers [`ServerError::ReadOnlyReplica`] redirecting the client to the primary.
    read_only: Mutex<Option<String>>,
    /// `Some((new primary, epoch))` after this primary was fenced by a promotion: every write
    /// surface answers [`ServerError::Fenced`].  Mirrors the state persisted in the database
    /// meta (so fencing survives a restart); the authoritative compare-and-swap happens under
    /// the database write lock in [`SeedServer::fence`].
    fenced: Mutex<Option<(String, u64)>>,
    /// The replica-side promotion driver, registered by the network layer ([`Promoter`]).
    promoter: Mutex<Option<Arc<dyn Promoter>>>,
    /// Primary side of replication: last acknowledged LSN per connected subscriber.
    replica_acks: Mutex<HashMap<ClientId, u64>>,
    /// Recently disconnected subscribers' last acks: their cursors keep pinning WAL retention
    /// (bounded to [`RETIRED_ACK_CAP`] entries) so a replica that restarts across a primary
    /// checkpoint can catch up from the retained segments instead of resyncing from a snapshot.
    retired_acks: Mutex<HashMap<ClientId, u64>>,
    /// Replica side of replication: `(applied LSN, last observed primary LSN)`.
    replica_progress: Mutex<Option<(u64, u64)>>,
    /// Readiness budget for replicas, in log records ([`DEFAULT_HEALTH_LAG_BUDGET`]).
    health_lag_budget: AtomicU64,
}

/// How many disconnected subscribers' cursors keep pinning WAL retention.  When the set
/// overflows, the furthest-behind cursor is dropped first — it is the one most likely to need
/// a snapshot resync anyway, and dropping it releases the most log.
const RETIRED_ACK_CAP: usize = 16;

impl SeedServer {
    /// Creates a server around an existing database.
    pub fn new(mut db: Database) -> Self {
        let snapshots = SnapshotCell::new(&mut db);
        // A fenced primary stays fenced across restarts: the fence was persisted to meta.
        let fenced = db.fenced_to().map(|p| (p.to_string(), db.topology_epoch()));
        Self {
            db: RwLock::new(db),
            snapshots,
            locks: Mutex::new(LockTable::new()),
            checkouts: Mutex::new(HashMap::new()),
            sessions: Mutex::new(HashMap::new()),
            next_client: AtomicU64::new(1),
            read_only: Mutex::new(None),
            fenced: Mutex::new(fenced),
            promoter: Mutex::new(None),
            replica_acks: Mutex::new(HashMap::new()),
            retired_acks: Mutex::new(HashMap::new()),
            replica_progress: Mutex::new(None),
            health_lag_budget: AtomicU64::new(DEFAULT_HEALTH_LAG_BUDGET),
        }
    }

    // ----- replication roles --------------------------------------------------------------------

    /// Turns this server into a **read-only replica** of the primary at `primary`: checkout,
    /// check-in and version creation answer [`ServerError::ReadOnlyReplica`] carrying that
    /// address, while the whole read surface keeps working.  The replication driver
    /// (`seed-net`'s `ReplicaNode`) swaps freshly applied databases in via
    /// [`SeedServer::replace_database`].
    pub fn set_read_only(&self, primary: impl Into<String>) {
        *self.read_only.lock() = Some(primary.into());
    }

    /// The primary address when this server is a read-only replica.
    pub fn read_only_primary(&self) -> Option<String> {
        self.read_only.lock().clone()
    }

    fn guard_writable(&self) -> ServerResult<()> {
        if let Some((new_primary, epoch)) = &*self.fenced.lock() {
            return Err(ServerError::Fenced { new_primary: new_primary.clone(), epoch: *epoch });
        }
        match &*self.read_only.lock() {
            Some(primary) => Err(ServerError::ReadOnlyReplica { primary: primary.clone() }),
            None => Ok(()),
        }
    }

    /// Re-checks fencing **after** the database write lock is held: [`SeedServer::fence`]
    /// persists under the same lock, so a check-in that raced past [`guard_writable`] while a
    /// fence was landing still loses here — a fenced node never commits another write.
    fn guard_unfenced(db: &Database) -> ServerResult<()> {
        match db.fenced_to() {
            Some(new_primary) => Err(ServerError::Fenced {
                new_primary: new_primary.to_string(),
                epoch: db.topology_epoch(),
            }),
            None => Ok(()),
        }
    }

    // ----- promotion and fencing ----------------------------------------------------------------

    /// The topology epoch this node currently serves under (bumped by every promotion).
    pub fn topology_epoch(&self) -> u64 {
        self.db.read().topology_epoch()
    }

    /// `Some((new primary, epoch))` when this node was fenced by a promotion.
    pub fn fenced_state(&self) -> Option<(String, u64)> {
        self.fenced.lock().clone()
    }

    /// Registers the replica-side promotion driver ([`Promoter`]); the network layer installs
    /// its `ReplicaNode` here so [`Request::Promote`] can reach it.
    pub fn set_promoter(&self, promoter: Arc<dyn Promoter>) {
        *self.promoter.lock() = Some(promoter);
    }

    /// Handles [`Request::Promote`], role-dependent:
    ///
    /// * on a **replica**, delegates to the registered [`Promoter`] — drain the shipped tail,
    ///   flip the store, take over as primary;
    /// * on a **primary**, the promotion happened elsewhere: [`SeedServer::fence`] this node.
    pub fn promote(&self, epoch: u64, new_primary: &str) -> ServerResult<PromotionReceipt> {
        if self.read_only.lock().is_none() {
            return self.fence(epoch, new_primary);
        }
        let promoter = self.promoter.lock().clone();
        match promoter {
            Some(driver) => driver.promote(epoch, new_primary),
            None => Err(ServerError::Protocol(
                "no promotion driver is registered on this replica".to_string(),
            )),
        }
    }

    /// Fences this primary: persistently refuses all further writes, redirecting clients to
    /// `new_primary`.  The epoch comparison under the database write lock is the arbitration
    /// point when two promotions race — exactly one fence (the first to take the lock with a
    /// newer epoch) wins; the loser is told who won.  Returns the node's durable end of log:
    /// the last LSN it will ever write, which the new primary must have applied for zero loss.
    pub fn fence(&self, epoch: u64, new_primary: &str) -> ServerResult<PromotionReceipt> {
        let mut db = self.db.write();
        let current = db.topology_epoch();
        if epoch <= current {
            return Err(match db.fenced_to() {
                Some(winner) => {
                    ServerError::Fenced { new_primary: winner.to_string(), epoch: current }
                }
                None => ServerError::Protocol(format!(
                    "stale promotion epoch {epoch}: this node is already at epoch {current}"
                )),
            });
        }
        db.persist_topology(epoch, Some(new_primary.to_string())).map_err(ServerError::Rejected)?;
        *self.fenced.lock() = Some((new_primary.to_string(), epoch));
        Ok(PromotionReceipt { epoch, last_lsn: db.durable_lsn().unwrap_or(0) })
    }

    /// Installs a freshly promoted database as this node's primary state (the last step of the
    /// replica-side promotion): swaps the served database in, clears the replica role and
    /// progress, and publishes a snapshot.  Readers see the replica state or the primary state,
    /// never in between.
    pub fn install_primary(&self, db: Database) {
        let mut slot = self.db.write();
        *slot = db;
        *self.read_only.lock() = None;
        *self.replica_progress.lock() = None;
        *self.fenced.lock() = None;
        self.snapshots.publish(&mut slot);
    }

    /// Replaces the served database wholesale and publishes a fresh snapshot (the replica
    /// **reset** path, and test seams).  Readers see the state before or after the swap, never
    /// in between.
    pub fn replace_database(&self, db: Database) {
        let mut slot = self.db.write();
        *slot = db;
        self.snapshots.publish(&mut slot);
    }

    /// Like [`SeedServer::replace_database`], keying the published snapshot to an explicit
    /// LSN (a replica's applied cursor, which the serving database cannot derive itself).
    pub fn replace_database_at(&self, db: Database, lsn: u64) {
        let mut slot = self.db.write();
        *slot = db;
        self.snapshots.publish_at(&mut slot, Some(lsn));
    }

    /// Runs a mutating closure under the database write lock, then publishes a new snapshot —
    /// the generic commit point for callers outside the check-in path.
    pub fn with_database_mut<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        let mut db = self.db.write();
        let result = f(&mut db);
        self.snapshots.publish(&mut db);
        result
    }

    /// Like [`SeedServer::with_database_mut`], keying the published snapshot to an explicit
    /// LSN — the replica's **incremental** apply path: the batch's effects are patched onto
    /// the serving database in O(delta) and the snapshot advances to the batch's last LSN.
    pub fn with_database_mut_at<R>(&self, lsn: u64, f: impl FnOnce(&mut Database) -> R) -> R {
        let mut db = self.db.write();
        let result = f(&mut db);
        self.snapshots.publish_at(&mut db, Some(lsn));
        result
    }

    /// Like [`SeedServer::with_database_mut_at`], but publishes only when the closure
    /// succeeds: on `Err` the previously published snapshot keeps serving, so a closure that
    /// fails partway through a mutation never exposes a torn intermediate state to readers.
    /// The caller owns recovery of the (possibly half-mutated) authoritative database — e.g.
    /// by replacing it wholesale before the next publication.
    pub fn try_with_database_mut_at<R, E>(
        &self,
        lsn: u64,
        f: impl FnOnce(&mut Database) -> Result<R, E>,
    ) -> Result<R, E> {
        let mut db = self.db.write();
        let result = f(&mut db);
        if result.is_ok() {
            self.snapshots.publish_at(&mut db, Some(lsn));
        }
        result
    }

    /// Records a subscriber's acknowledged LSN (primary side; called by the network layer's
    /// replication sessions).  The subscriber's cursor pins WAL retention on the served
    /// database: checkpoints keep (budget permitting) every segment the slowest subscriber
    /// still needs.
    pub fn note_replica_ack(&self, client: ClientId, acked_lsn: u64) {
        self.replica_acks.lock().insert(client, acked_lsn);
        // A reconnecting subscriber sheds its retired entry — the live ack supersedes it.
        self.retired_acks.lock().remove(&client);
        self.update_retention_floor();
    }

    /// Retires a disconnected subscriber (primary side): it no longer counts as connected, but
    /// its last ack keeps pinning WAL retention (bounded) so a restart within the retention
    /// budget catches up from the log instead of a full snapshot.
    pub fn retire_replica(&self, client: ClientId) {
        if let Some(acked) = self.replica_acks.lock().remove(&client) {
            let mut retired = self.retired_acks.lock();
            retired.insert(client, acked);
            while retired.len() > RETIRED_ACK_CAP {
                let victim = *retired
                    .iter()
                    .min_by_key(|(_, lsn)| **lsn)
                    .map(|(c, _)| c)
                    .expect("non-empty");
                retired.remove(&victim);
            }
        }
        self.update_retention_floor();
    }

    /// Forgets a subscriber entirely (primary side): its cursor stops pinning WAL retention.
    pub fn forget_replica(&self, client: ClientId) {
        self.replica_acks.lock().remove(&client);
        self.retired_acks.lock().remove(&client);
        self.update_retention_floor();
    }

    /// Recomputes the WAL retention floor from every live and retired subscriber cursor and
    /// pushes it to the served database.  The acks locks are released before the database lock
    /// is taken (status reads nest the other way around).
    fn update_retention_floor(&self) {
        let floor = {
            let live = self.replica_acks.lock();
            let retired = self.retired_acks.lock();
            live.values().chain(retired.values()).copied().min().map(|acked| acked + 1)
        };
        self.db.read().set_replication_retention(floor);
    }

    /// Number of connected replication subscribers (primary side).
    pub fn subscriber_count(&self) -> usize {
        self.replica_acks.lock().len()
    }

    /// Updates this replica's progress: the LSN applied locally and the primary's durable end
    /// of log as last observed (replica side; called by the replication driver).
    pub fn set_replica_progress(&self, applied_lsn: u64, primary_lsn: u64) {
        *self.replica_progress.lock() = Some((applied_lsn, primary_lsn));
    }

    fn replication_status(&self, snapshot: &Snapshot) -> Option<ReplicationStatus> {
        if let Some((applied, primary)) = *self.replica_progress.lock() {
            return Some(ReplicationStatus {
                role: ReplicationRole::Replica,
                applied_lsn: applied,
                primary_lsn: primary,
                subscribers: 0,
                min_acked_lsn: 0,
                snapshot_lsn: snapshot.lsn(),
            });
        }
        // A primary always reports: even without subscribers, the serving snapshot's LSN is
        // the operator's read-staleness observable.  An in-memory primary has no durable
        // cursor — its snapshots are keyed by the publication epoch, which is not a WAL LSN,
        // so the LSN fields report 0 rather than an epoch counter an operator could mistake
        // for a durable position.
        let acks = self.replica_acks.lock();
        let lsn = if snapshot.durability().is_some() { snapshot.lsn() } else { 0 };
        Some(ReplicationStatus {
            role: ReplicationRole::Primary,
            applied_lsn: lsn,
            primary_lsn: lsn,
            subscribers: acks.len() as u32,
            min_acked_lsn: acks.values().copied().min().unwrap_or(0),
            snapshot_lsn: lsn,
        })
    }

    /// Opens a server over a **durable** database in `dir` (running restart recovery if the
    /// previous process crashed).  Every check-in commits as exactly one storage transaction:
    /// the per-item records staged by the batch's updates become durable with a single WAL
    /// sync, or not at all.
    pub fn open_durable(dir: impl AsRef<std::path::Path>) -> ServerResult<Self> {
        let db = Database::open_durable(dir).map_err(ServerError::Rejected)?;
        Ok(Self::new(db))
    }

    /// Creates a server over a fresh durable database in `dir`.
    pub fn create_durable(
        dir: impl AsRef<std::path::Path>,
        schema: seed_schema::Schema,
    ) -> ServerResult<Self> {
        let db = Database::create_durable(dir, schema).map_err(ServerError::Rejected)?;
        Ok(Self::new(db))
    }

    /// The durability state of the central database, as captured by the serving snapshot.
    /// After [`SeedServer::open_durable`], the counts report what restart recovery
    /// reconstructed — this is how recovery is observable over the protocol
    /// ([`Request::Persistence`]).  Lock-free: status is part of the read surface.
    pub fn persistence_status(&self) -> PersistenceStatus {
        let snapshot = self.snapshots.read();
        let status = snapshot.durability();
        PersistenceStatus {
            durable: status.is_some(),
            path: status.map(|s| s.path.display().to_string()),
            wal_bytes: status.map(|s| s.wal_bytes).unwrap_or(0),
            objects: snapshot.object_count(),
            relationships: snapshot.relationship_count(),
            versions: snapshot.versions().len(),
            replication: self.replication_status(&snapshot),
        }
    }

    /// Overrides the replica readiness budget (log records behind the primary).
    pub fn set_health_lag_budget(&self, records: u64) {
        self.health_lag_budget.store(records, Ordering::SeqCst);
    }

    /// The liveness/readiness probe ([`Request::Health`]).  Liveness is implied by any answer
    /// at all; readiness means the node can do its job right now — a primary's WAL accepts
    /// writes ([`Database::wal_writable`]), a replica is within its lag budget.  Lock-free on
    /// the replica path; the primary path takes the database read lock for the WAL probe.
    pub fn health(&self) -> HealthStatus {
        let snapshot = self.snapshots.read();
        let status = self.replication_status(&snapshot).unwrap_or_default();
        let lag_budget = self.health_lag_budget.load(Ordering::SeqCst);
        // A fenced node is alive but permanently not-ready: it answers probes (so operators
        // can see the fence) yet must never attract traffic again.
        if let Some((new_primary, epoch)) = self.fenced_state() {
            return HealthStatus {
                ready: false,
                role: ReplicationRole::Primary,
                lag: 0,
                lag_budget,
                detail: format!("fenced at epoch {epoch}; the primary is now at {new_primary}"),
            };
        }
        match status.role {
            ReplicationRole::Replica => {
                let lag = status.lag();
                let ready = lag <= lag_budget;
                HealthStatus {
                    ready,
                    role: ReplicationRole::Replica,
                    lag,
                    lag_budget,
                    detail: if ready {
                        "ok".to_string()
                    } else {
                        format!("replica {lag} records behind primary (budget {lag_budget})")
                    },
                }
            }
            ReplicationRole::Primary => {
                let ready = self.with_database(|db| db.wal_writable());
                HealthStatus {
                    ready,
                    role: ReplicationRole::Primary,
                    lag: 0,
                    lag_budget,
                    detail: if ready { "ok".to_string() } else { "WAL not writable".to_string() },
                }
            }
        }
    }

    /// Checkpoints the durable storage (errors when the database is in-memory).  Publishes a
    /// snapshot on success so the status surface sees the truncated WAL immediately.
    pub fn checkpoint(&self) -> ServerResult<()> {
        let mut db = self.db.write();
        db.checkpoint().map_err(ServerError::Rejected)?;
        self.snapshots.publish(&mut db);
        Ok(())
    }

    /// Registers a client and returns its id.
    pub fn connect(&self) -> ClientId {
        let client = self.next_client.fetch_add(1, Ordering::SeqCst);
        self.sessions.lock().insert(client, Instant::now());
        client
    }

    /// Records activity for `client` (connect-on-first-use for clients created before the
    /// session tracking existed).
    pub fn touch(&self, client: ClientId) {
        self.sessions.lock().insert(client, Instant::now());
    }

    /// Number of clients with a tracked session.
    pub fn session_count(&self) -> usize {
        self.sessions.lock().len()
    }

    /// Detaches a client: releases all its locks and forgets its session.  The network layer
    /// calls this when a connection closes — the paper's crash-recovery rule for checked-out
    /// data.  Returns the number of locks released.
    pub fn disconnect(&self, client: ClientId) -> usize {
        self.sessions.lock().remove(&client);
        self.release(client)
    }

    /// Detaches a batch of clients in one session-table sweep — the event-loop server's
    /// shutdown path, where every live connection disconnects at once.  Returns the total
    /// number of locks released.
    pub fn disconnect_many(&self, clients: &[ClientId]) -> usize {
        {
            let mut sessions = self.sessions.lock();
            for client in clients {
                sessions.remove(client);
            }
        }
        clients.iter().map(|client| self.release(*client)).sum()
    }

    /// Reclaims the locks of every client whose last activity is older than `max_idle` and that
    /// still holds checked-out data, and prunes the session entries of lock-free idle clients
    /// (so stale ids never accumulate).  Returns the ids whose locks were reclaimed.  This is
    /// the timeout path for clients that vanished without the transport noticing (crashed
    /// workstation, dead TCP peer): their write locks and checkout bookkeeping must not leak
    /// forever.
    pub fn reclaim_idle(&self, max_idle: Duration) -> Vec<ClientId> {
        let now = Instant::now();
        // Hold the sessions map for the whole sweep: `touch` (the first thing checkout/checkin
        // do) blocks on it, so no client can slip a fresh checkout between the staleness check
        // and the release and have its just-acquired locks revoked.
        let mut sessions = self.sessions.lock();
        let stale: Vec<ClientId> = sessions
            .iter()
            .filter(|(_, last)| now.duration_since(**last) >= max_idle)
            .map(|(client, _)| *client)
            .collect();
        let mut reclaimed = Vec::new();
        for client in stale {
            sessions.remove(&client);
            // Sequential (never nested) checkout-table and lock-table accesses, matching the
            // lock order everywhere else.
            let had_checkouts = self.checkouts.lock().remove(&client).is_some();
            let mut locks = self.locks.lock();
            let released = locks.release_all(client);
            lock_metrics().held.set(locks.len() as i64);
            drop(locks);
            if had_checkouts || released > 0 {
                reclaimed.push(client);
            }
            // Idle clients without checked-out data just lose their session entry (activity
            // re-registers it) and are not reported as reclaimed.
        }
        reclaimed
    }

    /// Runs a read-only closure against the **live** central database, under its read lock.
    /// This is for callers that need the durability engine underneath (WAL tails, replication
    /// snapshots, retention floors) — it blocks while a check-in holds the write lock.  The
    /// query/read surface uses [`SeedServer::snapshot`] instead, which never blocks.
    pub fn with_database<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(&self.db.read())
    }

    /// The immutable snapshot the read surface currently serves.  Lock-free with respect to
    /// writers: an in-flight check-in cannot stall this (it publishes a *new* snapshot at its
    /// commit point), and the returned handle stays consistent for as long as it is held.
    pub fn snapshot(&self) -> Snapshot {
        self.snapshots.read()
    }

    /// Retrieves a copy of an object by name.
    pub fn retrieve(&self, name: &str) -> ServerResult<ObjectRecord> {
        self.snapshots
            .read()
            .object_by_name(name)
            .map_err(|_| ServerError::Unknown(format!("object '{name}'")))
    }

    /// Number of write locks currently held.
    pub fn locked_count(&self) -> usize {
        self.locks.lock().len()
    }

    /// A structural summary of the current schema for remote clients.
    pub fn schema_summary(&self) -> SchemaSummary {
        let db = self.snapshots.read();
        let schema = db.schema();
        SchemaSummary {
            name: schema.name.clone(),
            classes: schema
                .classes()
                .iter()
                .map(|c| ClassSummary {
                    // Local names: "Text", not "Data.Text" — clients resolve dependents by the
                    // local name in the context of an owner class.
                    name: c.local_name().to_string(),
                    owner: c.owner.map(|o| o.0),
                    superclass: c.superclass.map(|s| s.0),
                    occurrence_max: c.occurrence.max,
                })
                .collect(),
            associations: schema
                .associations()
                .iter()
                .map(|a| AssociationSummary {
                    name: a.name.clone(),
                    superassociation: a.superassociation.map(|s| s.0),
                    roles: a.roles.iter().map(|r| r.name.clone()).collect(),
                })
                .collect(),
        }
    }

    /// The (materialized) children of an object, by name.
    pub fn children_of(&self, name: &str) -> ServerResult<Vec<ObjectRecord>> {
        let db = self.snapshots.read();
        let root = db
            .object_by_name(name)
            .map_err(|_| ServerError::Unknown(format!("object '{name}'")))?;
        Ok(db.children(root.id).into_iter().map(|c| c.record).collect())
    }

    /// All objects whose hierarchical name starts with `prefix`.
    pub fn objects_with_prefix(&self, prefix: &str) -> Vec<ObjectRecord> {
        self.snapshots.read().objects_with_name_prefix(prefix)
    }

    /// The relationships an object participates in, rendered by name for remote clients.
    pub fn relationships_of(&self, name: &str) -> ServerResult<Vec<RelationshipInfo>> {
        let db = self.snapshots.read();
        let root = db
            .object_by_name(name)
            .map_err(|_| ServerError::Unknown(format!("object '{name}'")))?;
        let schema = db.schema();
        let mut infos = Vec::new();
        for rel in db.relationships(root.id) {
            let association = schema
                .association(rel.record.association)
                .map(|a| a.name.clone())
                .map_err(|e| ServerError::Rejected(SeedError::Schema(e)))?;
            let mut bindings = Vec::with_capacity(rel.record.bindings.len());
            for (role, obj) in &rel.record.bindings {
                let object_name =
                    db.object(*obj).map(|o| o.name.to_string()).map_err(ServerError::Rejected)?;
                bindings.push((role.clone(), object_name));
            }
            infos.push(RelationshipInfo {
                association,
                bindings,
                inherited: rel.inherited_from.is_some(),
            });
        }
        Ok(infos)
    }

    /// The extent of a class by name (optionally including subclasses).
    pub fn objects_of_class(
        &self,
        class: &str,
        transitive: bool,
    ) -> ServerResult<Vec<ObjectRecord>> {
        self.snapshots.read().objects_of_class(class, transitive).map_err(ServerError::Rejected)
    }

    /// Counts the live relationships of `association` (optionally including specializations).
    pub fn relationship_count_in(
        &self,
        association: &str,
        transitive: bool,
    ) -> ServerResult<usize> {
        let db = self.snapshots.read();
        let schema = db.schema();
        let root = schema
            .association_id(association)
            .map_err(|e| ServerError::Rejected(SeedError::Schema(e)))?;
        let mut hierarchy =
            if transitive { schema.association_descendants(root) } else { Vec::new() };
        hierarchy.push(root);
        Ok(db
            .store()
            .all_relationships()
            .filter(|r| r.is_visible() && hierarchy.contains(&r.association))
            .count())
    }

    /// Runs the completeness analysis and returns the number of findings.
    pub fn completeness_count(&self) -> usize {
        self.snapshots.read().completeness_report().len()
    }

    /// Evaluates a retrieval-language query (`find` / `count`, or `explain` for the physical
    /// plan) on the central database.  Queries take no locks: retrieval is served directly by
    /// the server, and the planner's indexed access paths keep it cheap under load.
    pub fn query(&self, text: &str) -> ServerResult<QueryAnswer> {
        let db = self.snapshots.read();
        let outcome = seed_query::run(&db, text).map_err(|e| ServerError::Query(e.to_string()))?;
        Ok(QueryAnswer {
            names: outcome.names(),
            count: outcome.count(),
            plan: outcome.plan().map(str::to_string),
        })
    }

    /// Convenience: the rendered physical plan for a query (prepends `explain` when absent).
    pub fn explain(&self, text: &str) -> ServerResult<String> {
        let text = text.trim();
        let explained =
            if text.starts_with("explain") { text.to_string() } else { format!("explain {text}") };
        self.query(&explained)?.plan.ok_or_else(|| {
            ServerError::Query("explain produced no plan (not a find/count query?)".to_string())
        })
    }

    /// Checks out the named objects for `client`: takes write locks on them (and their dependent
    /// objects) and returns copies of the objects plus the relationships among them.
    pub fn checkout(&self, client: ClientId, names: &[&str]) -> ServerResult<CheckoutSet> {
        self.guard_writable()?;
        self.touch(client);
        // Check-out resolution reads the serving snapshot; only the lock table itself is
        // mutated.  The lock table must be acquired BEFORE the snapshot is pinned: check-in
        // publishes its snapshot and only then releases its locks under this mutex, so a
        // snapshot read while holding the mutex includes every check-in whose locks appear
        // free — reading the snapshot first would let a concurrent check-in commit and
        // release in between, handing the client locks over stale copies (a lost update).
        let lock_start = Instant::now();
        let mut locks = self.locks.lock();
        lock_metrics().wait_us.observe_duration(lock_start.elapsed());
        let db = self.snapshots.read();

        // Resolve every requested root and its dependents first, so a conflict acquires nothing.
        let mut object_ids: Vec<(String, ObjectId)> = Vec::new();
        let mut records: Vec<ObjectRecord> = Vec::new();
        for name in names {
            let root = db
                .object_by_name(name)
                .map_err(|_| ServerError::Unknown(format!("object '{name}'")))?;
            let mut frontier = vec![root.clone()];
            while let Some(record) = frontier.pop() {
                object_ids.push((record.name.to_string(), record.id));
                for child in db.children(record.id) {
                    if child.inherited_from.is_none() {
                        frontier.push(child.record.clone());
                    }
                }
                records.push(record);
            }
        }
        // Conflict check before acquisition.
        for (name, id) in &object_ids {
            if let Some(holder) = locks.holder(*id) {
                if holder != client {
                    return Err(ServerError::Locked { object: name.clone(), holder });
                }
            }
        }
        for (_, id) in &object_ids {
            locks.acquire(*id, client).expect("conflicts were ruled out above");
        }
        lock_metrics().held.set(locks.len() as i64);
        self.checkouts
            .lock()
            .entry(client)
            .or_default()
            .extend(object_ids.iter().map(|(n, _)| n.clone()));

        // Relationships among the checked-out objects.
        let id_set: Vec<ObjectId> = object_ids.iter().map(|(_, id)| *id).collect();
        let mut relationships = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for id in &id_set {
            for rel in db.relationships(*id) {
                if rel.inherited_from.is_none() && seen.insert(rel.record.id) {
                    relationships.push(rel.record.clone());
                }
            }
        }
        Ok(CheckoutSet { objects: records, relationships })
    }

    /// Applies a client's updates as **one** transaction on the central database, then releases
    /// the client's locks.  If any update fails (consistency violation, lock discipline breach),
    /// nothing is applied and the locks are kept so the client can fix and retry.
    pub fn checkin(&self, client: ClientId, updates: &[Update]) -> ServerResult<()> {
        self.guard_writable()?;
        self.touch(client);
        let mut db = self.db.write();
        Self::guard_unfenced(&db)?;
        let locks = self.locks.lock();

        // Lock discipline: every touched existing object must be checked out by this client.
        for update in updates {
            for name in update.touched_objects() {
                if let Ok(obj) = db.object_by_name(name) {
                    if !locks.holds(obj.id, client) {
                        return Err(ServerError::NotCheckedOut(name.to_string()));
                    }
                }
            }
        }
        drop(locks);

        db.begin_transaction().map_err(ServerError::Rejected)?;
        let result = Self::apply_updates(&mut db, updates);
        match result {
            Ok(()) => {
                db.commit_transaction().map_err(ServerError::Rejected)?;
                // Publish before releasing the write lock: once any reader can observe the
                // released locks, the serving snapshot already contains this check-in.
                self.snapshots.publish(&mut db);
                drop(db);
                self.release(client);
                Ok(())
            }
            Err(e) => {
                db.rollback_transaction().map_err(ServerError::Rejected)?;
                Err(ServerError::Rejected(e))
            }
        }
    }

    fn apply_updates(db: &mut Database, updates: &[Update]) -> Result<(), SeedError> {
        for update in updates {
            match update {
                Update::CreateObject { class, name } => {
                    db.create_object(class, name)?;
                }
                Update::CreateDependent { parent, class_local, value } => {
                    let parent_id = db.object_by_name(parent)?.id;
                    db.create_dependent(parent_id, class_local, value.clone())?;
                }
                Update::CreateDependentNamed { parent, class_local, name, value } => {
                    let parent_id = db.object_by_name(parent)?.id;
                    db.create_dependent_named(
                        parent_id,
                        class_local,
                        NameSegment::plain(name.clone()),
                        value.clone(),
                    )?;
                }
                Update::SetValue { object, value } => {
                    let id = db.object_by_name(object)?.id;
                    db.set_value(id, value.clone())?;
                }
                Update::Reclassify { object, new_class } => {
                    let id = db.object_by_name(object)?.id;
                    db.reclassify_object(id, new_class)?;
                }
                Update::CreateRelationship { association, bindings } => {
                    let mut resolved: Vec<(&str, seed_core::ObjectId)> = Vec::new();
                    for (role, name) in bindings {
                        resolved.push((role.as_str(), db.object_by_name(name)?.id));
                    }
                    db.create_relationship(association, &resolved)?;
                }
                Update::ReclassifyRelationship { association, bindings, new_association } => {
                    let rel = Self::resolve_relationship(db, association, bindings)?;
                    db.reclassify_relationship(rel, new_association)?;
                }
                Update::DeleteObject { object } => {
                    let id = db.object_by_name(object)?.id;
                    db.delete_object(id)?;
                }
            }
        }
        Ok(())
    }

    /// Finds the live, own relationship with the given association whose bindings map the given
    /// roles to the given object names (structural addressing — clients do not know server ids).
    fn resolve_relationship(
        db: &Database,
        association: &str,
        bindings: &[(String, String)],
    ) -> Result<seed_core::RelationshipId, SeedError> {
        let describe = || {
            format!(
                "relationship {association}({})",
                bindings.iter().map(|(r, o)| format!("{r}: {o}")).collect::<Vec<_>>().join(", ")
            )
        };
        let (_, anchor_name) = bindings
            .first()
            .ok_or_else(|| SeedError::Invalid("relationship address needs bindings".into()))?;
        let anchor = db.object_by_name(anchor_name)?.id;
        let assoc_id = db.schema().association_id(association)?;
        for rel in db.relationships(anchor) {
            if rel.inherited_from.is_some() || rel.record.association != assoc_id {
                continue;
            }
            // The address must cover the whole binding set — matched from the relationship's
            // side, so neither a subset address nor one padded with duplicate pairs can pick a
            // relationship whose other participants (and their locks) it never named.
            if rel.record.bindings.len() != bindings.len() {
                continue;
            }
            let matches = rel.record.bindings.iter().all(|(r, o)| {
                db.object(*o)
                    .map(|rec| {
                        let bound_name = rec.name.to_string();
                        bindings.iter().any(|(role, name)| role == r && *name == bound_name)
                    })
                    .unwrap_or(false)
            });
            if matches {
                return Ok(rel.record.id);
            }
        }
        Err(SeedError::NotFound(describe()))
    }

    /// Releases every lock held by `client` (explicit release or after a successful check-in).
    pub fn release(&self, client: ClientId) -> usize {
        self.checkouts.lock().remove(&client);
        let mut locks = self.locks.lock();
        let released = locks.release_all(client);
        lock_metrics().held.set(locks.len() as i64);
        released
    }

    /// Creates a global version snapshot on the central database.
    pub fn create_version(&self, comment: &str) -> ServerResult<VersionId> {
        self.guard_writable()?;
        let mut db = self.db.write();
        Self::guard_unfenced(&db)?;
        let version = db.create_version(comment).map_err(ServerError::Rejected)?;
        self.snapshots.publish(&mut db);
        Ok(version)
    }

    /// Dispatches one protocol request to the corresponding server operation.
    ///
    /// [`Request::Shutdown`] is transport-scoped (stop the server thread, close the TCP
    /// session) and is answered with [`Response::ShuttingDown`] — the caller decides what
    /// "shutting down" means for its transport.
    pub fn handle(&self, request: Request) -> Response {
        let start = Instant::now();
        let kind = request.kind_name();
        let client = request.client_id();
        // Kept aside for the slow-op log: the request is consumed by the dispatch below.
        let query_text = match &request {
            Request::Query { text } => Some(text.clone()),
            _ => None,
        };
        let response = self.dispatch(request);
        let elapsed = start.elapsed();
        let registry = seed_obs::global();
        if elapsed >= registry.slow_op_threshold() {
            let mut detail: Vec<(&str, String)> = Vec::new();
            if let Some(text) = query_text {
                detail.push(("text", text));
            }
            if let Response::Answer(Ok(answer)) = &response {
                if let Some(plan) = &answer.plan {
                    detail.push(("plan", plan.clone()));
                }
            }
            registry.observe_op(kind, client, elapsed, &detail);
        }
        response
    }

    fn dispatch(&self, request: Request) -> Response {
        match request {
            Request::Connect => Response::Connected(self.connect()),
            Request::Checkout { client, objects } => {
                let names: Vec<&str> = objects.iter().map(|s| s.as_str()).collect();
                Response::Checkout(self.checkout(client, &names))
            }
            Request::Checkin { client, updates } => Response::Ack(self.checkin(client, &updates)),
            Request::Release { client } => {
                self.release(client);
                Response::Ack(Ok(()))
            }
            Request::Retrieve { name } => Response::Object(self.retrieve(&name)),
            Request::Query { text } => Response::Answer(self.query(&text)),
            Request::CreateVersion { comment } => Response::Version(self.create_version(&comment)),
            Request::Persistence => Response::Persistence(self.persistence_status()),
            Request::Checkpoint => Response::Ack(self.checkpoint()),
            Request::Schema => Response::Schema(self.schema_summary()),
            Request::Children { name } => Response::Objects(self.children_of(&name)),
            Request::Prefix { prefix } => Response::Objects(Ok(self.objects_with_prefix(&prefix))),
            Request::RelationshipsOf { name } => {
                Response::Relationships(self.relationships_of(&name))
            }
            Request::ObjectsOfClass { class, transitive } => {
                Response::Objects(self.objects_of_class(&class, transitive))
            }
            Request::RelationshipCount { association, transitive } => {
                Response::Count(self.relationship_count_in(&association, transitive))
            }
            Request::Completeness => Response::Count(Ok(self.completeness_count())),
            Request::Shutdown => Response::ShuttingDown,
            Request::Stats => Response::Stats(seed_obs::global().snapshot()),
            Request::Health => Response::Health(self.health()),
            Request::Promote { epoch, new_primary } => {
                Response::Promoted(self.promote(epoch, &new_primary))
            }
        }
    }

    /// Spawns a server thread servicing requests over a channel; returns a cloneable handle.
    pub fn spawn(self) -> (ServerHandle, JoinHandle<SeedServer>) {
        let server = Arc::new(self);
        let (tx, rx) = unbounded::<(Request, Sender<Response>)>();
        let thread_server = server.clone();
        let join = std::thread::spawn(move || {
            while let Ok((request, reply)) = rx.recv() {
                let shutdown = matches!(request, Request::Shutdown);
                let response = thread_server.handle(request);
                let _ = reply.send(response);
                if shutdown {
                    break;
                }
            }
            // Hand the server back to the caller when the thread finishes.
            Arc::try_unwrap(thread_server).unwrap_or_else(|arc| {
                // A handle still exists; clone the database out so callers can inspect it.
                SeedServer::new(arc.with_database(|db| {
                    // Databases are not `Clone`; rebuild from persistence parts is overkill here,
                    // so return an empty database over the same schema.
                    Database::new(db.schema().clone())
                }))
            })
        });
        (ServerHandle { tx: Some(tx) }, join)
    }
}

/// A handle to a spawned server thread.
#[derive(Clone)]
pub struct ServerHandle {
    tx: Option<Sender<(Request, Sender<Response>)>>,
}

impl ServerHandle {
    /// Sends a request and waits for the response.
    pub fn call(&self, request: Request) -> ServerResult<Response> {
        let tx = self.tx.as_ref().ok_or(ServerError::Disconnected)?;
        let (reply_tx, reply_rx) = unbounded();
        tx.send((request, reply_tx)).map_err(|_| ServerError::Disconnected)?;
        reply_rx.recv().map_err(|_| ServerError::Disconnected)
    }

    /// Convenience: registers a client.
    pub fn connect(&self) -> ServerResult<ClientId> {
        match self.call(Request::Connect)? {
            Response::Connected(id) => Ok(id),
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Convenience: asks the server thread to stop.
    pub fn shutdown(&self) -> ServerResult<()> {
        match self.call(Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Convenience: retrieves an object by name.
    pub fn retrieve(&self, name: &str) -> ServerResult<ObjectRecord> {
        match self.call(Request::Retrieve { name: name.to_string() })? {
            Response::Object(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Convenience: evaluates a query (or an `explain`) on the central database.
    pub fn query(&self, text: &str) -> ServerResult<QueryAnswer> {
        match self.call(Request::Query { text: text.to_string() })? {
            Response::Answer(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Convenience: the durability state of the central database.
    pub fn persistence(&self) -> ServerResult<PersistenceStatus> {
        match self.call(Request::Persistence)? {
            Response::Persistence(status) => Ok(status),
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Convenience: sets a value through a one-shot checkout/check-in cycle.
    pub fn quick_set_value(
        &self,
        client: ClientId,
        object: &str,
        value: Value,
    ) -> ServerResult<()> {
        match self.call(Request::Checkout { client, objects: vec![object.to_string()] })? {
            Response::Checkout(Ok(_)) => {}
            Response::Checkout(Err(e)) => return Err(e),
            _ => return Err(ServerError::Disconnected),
        }
        match self.call(Request::Checkin {
            client,
            updates: vec![Update::SetValue { object: object.to_string(), value }],
        })? {
            Response::Ack(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_schema::figure3_schema;

    fn server_with_data() -> SeedServer {
        let mut db = Database::new(figure3_schema());
        let alarms = db.create_object("Data", "Alarms").unwrap();
        let sensor = db.create_object("Action", "Sensor").unwrap();
        db.create_relationship("Access", &[("from", alarms), ("by", sensor)]).unwrap();
        let handler = db.create_object("Action", "AlarmHandler").unwrap();
        db.create_dependent(handler, "Description", Value::string("Handles alarms")).unwrap();
        SeedServer::new(db)
    }

    #[test]
    fn checkout_copies_objects_and_takes_locks() {
        let server = server_with_data();
        let c1 = server.connect();
        let c2 = server.connect();
        assert_ne!(c1, c2);

        let set = server.checkout(c1, &["AlarmHandler"]).unwrap();
        assert_eq!(set.len(), 2, "root + Description dependent");
        assert!(set.object_names().contains(&"AlarmHandler.Description".to_string()));
        assert!(server.locked_count() >= 2);

        // A second client cannot check the same object out...
        let err = server.checkout(c2, &["AlarmHandler"]).unwrap_err();
        assert!(matches!(err, ServerError::Locked { .. }));
        // ...but can check out something else, and can still retrieve (read) anything.
        assert!(server.checkout(c2, &["Alarms"]).is_ok());
        assert!(server.retrieve("AlarmHandler").is_ok());
        assert!(server.retrieve("Ghost").is_err());
    }

    #[test]
    fn checkin_applies_updates_in_one_transaction() {
        let server = server_with_data();
        let c1 = server.connect();
        server.checkout(c1, &["AlarmHandler"]).unwrap();
        server
            .checkin(
                c1,
                &[
                    Update::SetValue {
                        object: "AlarmHandler.Description".into(),
                        value: Value::string("Generates alarms from process data"),
                    },
                    Update::CreateObject { class: "Data".into(), name: "OperatorAlert".into() },
                ],
            )
            .unwrap();
        assert_eq!(
            server.retrieve("AlarmHandler.Description").unwrap().value,
            Value::string("Generates alarms from process data")
        );
        assert!(server.retrieve("OperatorAlert").is_ok());
        // Locks are released after a successful check-in.
        assert_eq!(server.locked_count(), 0);
    }

    #[test]
    fn failed_checkin_applies_nothing_and_keeps_locks() {
        let server = server_with_data();
        let c1 = server.connect();
        server.checkout(c1, &["AlarmHandler"]).unwrap();
        let held = server.locked_count();
        let err = server
            .checkin(
                c1,
                &[
                    Update::CreateObject { class: "Data".into(), name: "NewData".into() },
                    // Fails: Description has a STRING domain, an integer is rejected.
                    Update::SetValue {
                        object: "AlarmHandler.Description".into(),
                        value: Value::Integer(42),
                    },
                ],
            )
            .unwrap_err();
        assert!(matches!(err, ServerError::Rejected(_)));
        // The single transaction means the first update is rolled back too.
        assert!(server.retrieve("NewData").is_err());
        assert_eq!(server.locked_count(), held, "locks kept for retry");
        // Fixing the batch succeeds.
        server
            .checkin(
                c1,
                &[Update::SetValue {
                    object: "AlarmHandler.Description".into(),
                    value: Value::string("fixed"),
                }],
            )
            .unwrap();
    }

    #[test]
    fn checkin_requires_prior_checkout() {
        let server = server_with_data();
        let c1 = server.connect();
        let err = server
            .checkin(
                c1,
                &[Update::SetValue {
                    object: "AlarmHandler.Description".into(),
                    value: Value::string("x"),
                }],
            )
            .unwrap_err();
        assert!(matches!(err, ServerError::NotCheckedOut(_)));
        // Creating brand-new objects needs no lock.
        server
            .checkin(c1, &[Update::CreateObject { class: "Data".into(), name: "Fresh".into() }])
            .unwrap();
    }

    #[test]
    fn release_frees_locks_without_changes() {
        let server = server_with_data();
        let c1 = server.connect();
        let c2 = server.connect();
        server.checkout(c1, &["Alarms"]).unwrap();
        assert!(server.checkout(c2, &["Alarms"]).is_err());
        assert!(server.release(c1) > 0);
        assert!(server.checkout(c2, &["Alarms"]).is_ok());
    }

    #[test]
    fn server_creates_global_versions() {
        let server = server_with_data();
        let v = server.create_version("global snapshot").unwrap();
        assert_eq!(v.to_string(), "1.0");
        let c1 = server.connect();
        server.checkout(c1, &["Alarms"]).unwrap();
        server
            .checkin(
                c1,
                &[Update::Reclassify { object: "Alarms".into(), new_class: "OutputData".into() }],
            )
            .unwrap();
        let v2 = server.create_version("after reclassification").unwrap();
        assert_eq!(v2.to_string(), "2.0");
        server.with_database(|db| {
            assert_eq!(db.versions().len(), 2);
        });
    }

    #[test]
    fn queries_and_explain_are_served_centrally() {
        let server = server_with_data();
        // Retrieval-language queries run without locks.
        let answer = server.query(r#"find Data where name prefix "Alarm""#).unwrap();
        assert_eq!(answer.names, vec!["Alarms"]);
        assert_eq!(answer.count, 1);
        assert!(answer.plan.is_none());
        let answer = server.query("count Action").unwrap();
        assert_eq!(answer.count, 2);
        assert!(answer.names.is_empty());
        // Explain returns the physical plan, with or without the explicit keyword.
        let plan = server.explain(r#"find Thing where name = "Alarms""#).unwrap();
        assert!(plan.contains("probe name index"), "got: {plan}");
        let answer = server.query("explain count Data").unwrap();
        assert!(answer.plan.unwrap().contains("output  count"));
        // Errors are reported, not panicked.
        assert!(matches!(server.query("bogus"), Err(ServerError::Query(_))));
        assert!(matches!(server.query("find Ghost"), Err(ServerError::Query(_))));

        // The same surface over the threaded protocol.
        let (handle, join) = server.spawn();
        let answer = handle.query(r#"find Data where name prefix "Alarm""#).unwrap();
        assert_eq!(answer.names, vec!["Alarms"]);
        let answer = handle.query(r#"explain find Data where name prefix "Alarm""#).unwrap();
        assert!(answer.plan.is_some());
        assert!(handle.query("bogus").is_err());
        handle.shutdown().unwrap();
        join.join().unwrap();
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("seed-server-durable-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_server_checkin_is_one_storage_transaction_and_recovers() {
        let dir = temp_dir("checkin");
        {
            let server = SeedServer::create_durable(&dir, figure3_schema()).unwrap();
            let status = server.persistence_status();
            assert!(status.durable);
            assert_eq!(status.objects, 0);
            let c1 = server.connect();
            // A successful check-in commits the whole batch as one storage transaction.
            server
                .checkin(
                    c1,
                    &[
                        Update::CreateObject { class: "Data".into(), name: "Alarms".into() },
                        Update::CreateObject { class: "Action".into(), name: "Sensor".into() },
                        Update::CreateRelationship {
                            association: "Access".into(),
                            bindings: vec![
                                ("from".into(), "Alarms".into()),
                                ("by".into(), "Sensor".into()),
                            ],
                        },
                    ],
                )
                .unwrap();
            // A rejected check-in leaves no durable trace (its storage transaction aborts).
            let err = server
                .checkin(
                    c1,
                    &[
                        Update::CreateObject { class: "Data".into(), name: "Ghost".into() },
                        Update::CreateObject { class: "Nonsense".into(), name: "X".into() },
                    ],
                )
                .unwrap_err();
            assert!(matches!(err, ServerError::Rejected(_)));
            server.create_version("global snapshot").unwrap();
            // Crash: server dropped without checkpoint or close.
        }
        // Restart recovery, observable over the protocol.
        let server = SeedServer::open_durable(&dir).unwrap();
        let (handle, join) = server.spawn();
        let status = handle.persistence().unwrap();
        assert!(status.durable);
        assert_eq!(status.objects, 2, "committed check-in recovered");
        assert_eq!(status.relationships, 1);
        assert_eq!(status.versions, 1);
        assert!(handle.retrieve("Alarms").is_ok());
        assert!(handle.retrieve("Ghost").is_err(), "rejected check-in left no trace");
        // Checkpoint over the protocol truncates the WAL.
        match handle.call(Request::Checkpoint).unwrap() {
            Response::Ack(result) => result.unwrap(),
            other => panic!("unexpected response {other:?}"),
        }
        assert_eq!(handle.persistence().unwrap().wal_bytes, 0);
        handle.shutdown().unwrap();
        join.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_only_replica_serves_reads_and_redirects_writes() {
        let server = server_with_data();
        server.set_read_only("primary.example:7044");
        assert_eq!(server.read_only_primary().as_deref(), Some("primary.example:7044"));
        // The whole read surface keeps working.
        assert!(server.retrieve("Alarms").is_ok());
        assert_eq!(server.query("count Action").unwrap().count, 2);
        assert!(server.schema_summary().class_id("Data").is_some());
        assert!(server.completeness_count() > 0);
        // Writes are redirected, not applied.
        let c1 = server.connect();
        for err in [
            server.checkout(c1, &["Alarms"]).unwrap_err(),
            server.checkin(c1, &[]).unwrap_err(),
            server.create_version("nope").unwrap_err(),
        ] {
            match err {
                ServerError::ReadOnlyReplica { primary } => {
                    assert_eq!(primary, "primary.example:7044");
                }
                other => panic!("expected a redirect, got {other:?}"),
            }
        }
        assert_eq!(server.locked_count(), 0, "a redirected checkout must acquire nothing");
        // The apply path: a freshly loaded database replaces the served one atomically.
        let mut next = Database::new(figure3_schema());
        next.create_object("Data", "FromTheStream").unwrap();
        server.replace_database(next);
        assert!(server.retrieve("FromTheStream").is_ok());
        assert!(server.retrieve("Alarms").is_err(), "the old state was swapped out in full");
        // Replica progress is surfaced through the persistence status.
        server.set_replica_progress(41, 44);
        let status = server.persistence_status();
        let replication = status.replication.expect("replica status present");
        assert_eq!(replication.role, ReplicationRole::Replica);
        assert_eq!(replication.lag(), 3);
        // The apply path keys the serving snapshot to the applied cursor explicitly.
        let mut next = Database::new(figure3_schema());
        next.create_object("Data", "Keyed").unwrap();
        server.replace_database_at(next, 41);
        let replication = server.persistence_status().replication.expect("replica status");
        assert_eq!(replication.snapshot_lsn, 41, "snapshot keyed to the applied LSN");
    }

    #[test]
    fn primary_reports_subscribers_in_persistence_status() {
        let server = server_with_data();
        // Even without subscribers the primary reports: the serving snapshot's LSN is the
        // operator's read-staleness observable.
        let idle = server.persistence_status().replication.expect("primary always reports");
        assert_eq!(idle.role, ReplicationRole::Primary);
        assert_eq!(idle.subscribers, 0);
        // An in-memory primary keys its snapshots by publication epoch, which is NOT a WAL
        // LSN: the LSN fields report 0 so tooling never mistakes the epoch for a durable
        // position (the epoch stays internal).
        assert_eq!(idle.snapshot_lsn, 0);
        assert_eq!(idle.applied_lsn, 0);
        assert_eq!(idle.primary_lsn, 0);
        server.note_replica_ack(7, 12);
        server.note_replica_ack(9, 8);
        let status = server.persistence_status().replication.expect("primary status present");
        assert_eq!(status.role, ReplicationRole::Primary);
        assert_eq!(status.subscribers, 2);
        assert_eq!(status.min_acked_lsn, 8);
        assert_eq!(status.lag(), 0, "a primary never lags itself");
        assert_eq!(status.snapshot_lsn, idle.snapshot_lsn, "no write, same serving snapshot");
        assert_eq!(server.subscriber_count(), 2);
        server.forget_replica(9);
        assert_eq!(server.subscriber_count(), 1);
        server.forget_replica(7);
        let status = server.persistence_status().replication.expect("primary always reports");
        assert_eq!(status.subscribers, 0);
    }

    #[test]
    fn failed_fallible_mutations_publish_nothing() {
        let server = server_with_data();
        let torn: Result<(), ()> = server.try_with_database_mut_at(99, |db| {
            db.create_object("Data", "Torn").unwrap();
            Err(())
        });
        assert!(torn.is_err());
        // The half-applied mutation is invisible: the previous snapshot keeps serving.
        assert!(server.retrieve("Torn").is_err());
        let whole: Result<(), ()> = server.try_with_database_mut_at(100, |db| {
            db.create_object("Data", "Whole").unwrap();
            Ok(())
        });
        assert!(whole.is_ok());
        // A successful closure publishes the authoritative state wholesale — including the
        // earlier unpublished mutation, whose recovery the caller owns (replica apply swaps
        // in a freshly loaded database before publishing again).
        assert!(server.retrieve("Whole").is_ok());
        assert!(server.retrieve("Torn").is_ok());
        // Through the replica status surface, the serving snapshot carries only the
        // successfully published LSN — the failed publication never surfaced its own.
        server.set_replica_progress(100, 100);
        let replication = server.persistence_status().replication.expect("replica status");
        assert_eq!(replication.snapshot_lsn, 100, "failed publication must not surface its LSN");
    }

    #[test]
    fn subscriber_acks_pin_wal_retention_across_checkpoints() {
        use seed_storage::WalTail;
        let dir = temp_dir("retention");
        let server = SeedServer::create_durable(&dir, figure3_schema()).unwrap();
        let client = server.connect();
        for i in 0..20 {
            server
                .checkin(
                    client,
                    &[Update::CreateObject { class: "Data".into(), name: format!("D{i:03}") }],
                )
                .unwrap();
        }
        let durable = server.with_database(|db| db.durable_lsn().unwrap());
        let replication = server.persistence_status().replication.expect("primary status");
        assert_eq!(replication.snapshot_lsn, durable, "durable primary reports the real WAL LSN");
        assert_eq!(replication.applied_lsn, durable);
        let cursor = durable - 5;

        // A live subscriber's cursor survives a checkpoint: the tail it still needs is retained.
        server.note_replica_ack(client, cursor);
        server.checkpoint().unwrap();
        let tail = server.with_database(|db| db.wal_tail(cursor + 1).unwrap());
        assert!(matches!(tail, WalTail::Records(_)), "live ack must pin the tail, got {tail:?}");

        // A retired (disconnected) subscriber keeps pinning until it is forgotten.
        server.retire_replica(client);
        assert_eq!(server.subscriber_count(), 0);
        server.checkpoint().unwrap();
        let tail = server.with_database(|db| db.wal_tail(cursor + 1).unwrap());
        assert!(matches!(tail, WalTail::Records(_)), "retired ack must pin the tail");

        // Forgetting releases the pin: the next checkpoint prunes everything.
        server.forget_replica(client);
        server.checkpoint().unwrap();
        let tail = server.with_database(|db| db.wal_tail(cursor + 1).unwrap());
        assert!(matches!(tail, WalTail::Truncated { .. }), "released pin must prune, got {tail:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fencing_rejects_writes_survives_restart_and_arbitrates_races() {
        let dir = temp_dir("fence");
        {
            let server = SeedServer::create_durable(&dir, figure3_schema()).unwrap();
            let client = server.connect();
            server
                .checkin(
                    client,
                    &[Update::CreateObject { class: "Data".into(), name: "Before".into() }],
                )
                .unwrap();
            assert_eq!(server.topology_epoch(), 0);
            assert!(server.fenced_state().is_none());

            // The first promotion with a newer epoch fences the node.
            let receipt = server.promote(1, "10.0.0.2:7044").unwrap();
            assert_eq!(receipt.epoch, 1);
            assert!(receipt.last_lsn > 0, "a durable primary reports its end of log");
            assert_eq!(server.fenced_state(), Some(("10.0.0.2:7044".to_string(), 1)));

            // A racing promotion (same or older epoch) loses and is told who won.
            match server.promote(1, "10.0.0.3:7044").unwrap_err() {
                ServerError::Fenced { new_primary, epoch } => {
                    assert_eq!(new_primary, "10.0.0.2:7044");
                    assert_eq!(epoch, 1);
                }
                other => panic!("expected Fenced, got {other:?}"),
            }

            // Every write surface refuses; the read surface keeps serving.
            for err in [
                server.checkout(client, &["Before"]).unwrap_err(),
                server.checkin(client, &[]).unwrap_err(),
                server.create_version("nope").unwrap_err(),
            ] {
                assert!(matches!(err, ServerError::Fenced { .. }), "got {err:?}");
            }
            assert!(server.retrieve("Before").is_ok());

            // Health: alive, permanently not-ready, still reporting as a (fenced) primary.
            let health = server.health();
            assert!(!health.ready);
            assert_eq!(health.role, ReplicationRole::Primary);
            assert!(health.detail.contains("fenced at epoch 1"), "got: {}", health.detail);
            // Crash without checkpoint: the fence must already be durable.
        }
        let server = SeedServer::open_durable(&dir).unwrap();
        assert_eq!(server.fenced_state(), Some(("10.0.0.2:7044".to_string(), 1)));
        assert_eq!(server.topology_epoch(), 1);
        let client = server.connect();
        assert!(matches!(server.checkin(client, &[]).unwrap_err(), ServerError::Fenced { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn promote_on_a_replica_needs_a_registered_driver() {
        let server = server_with_data();
        server.set_read_only("primary.example:7044");
        assert!(matches!(server.promote(1, "replica.example:7044"), Err(ServerError::Protocol(_))));

        struct FakeDriver;
        impl Promoter for FakeDriver {
            fn promote(&self, epoch: u64, _new_primary: &str) -> ServerResult<PromotionReceipt> {
                Ok(PromotionReceipt { epoch, last_lsn: 42 })
            }
        }
        server.set_promoter(Arc::new(FakeDriver));
        let receipt = server.promote(2, "replica.example:7044").unwrap();
        assert_eq!(receipt, PromotionReceipt { epoch: 2, last_lsn: 42 });
    }

    #[test]
    fn install_primary_clears_the_replica_role_atomically() {
        let server = server_with_data();
        server.set_read_only("old-primary:7044");
        server.set_replica_progress(10, 10);
        let mut promoted = Database::new(figure3_schema());
        promoted.create_object("Data", "PostPromotion").unwrap();
        server.install_primary(promoted);
        assert!(server.read_only_primary().is_none());
        assert!(server.retrieve("PostPromotion").is_ok());
        let replication = server.persistence_status().replication.expect("primary reports");
        assert_eq!(replication.role, ReplicationRole::Primary);
        let client = server.connect();
        server
            .checkin(client, &[Update::CreateObject { class: "Data".into(), name: "New".into() }])
            .unwrap();
    }

    #[test]
    fn in_memory_server_reports_non_durable_and_rejects_checkpoint() {
        let server = server_with_data();
        let status = server.persistence_status();
        assert!(!status.durable);
        assert_eq!(status.path, None);
        assert!(server.checkpoint().is_err());
    }

    #[test]
    fn idle_locks_are_reclaimed_and_disconnect_releases() {
        let server = server_with_data();
        let c1 = server.connect();
        let sessions_before = server.session_count();
        server.checkout(c1, &["Alarms"]).unwrap();
        assert!(server.locked_count() > 0);
        // Recent activity: nothing is reclaimed.
        assert!(server.reclaim_idle(Duration::from_secs(3600)).is_empty());
        // Zero tolerance: the client counts as vanished and its locks come back.
        assert_eq!(server.reclaim_idle(Duration::ZERO), vec![c1]);
        assert_eq!(server.locked_count(), 0);
        assert_eq!(server.session_count(), sessions_before - 1);
        // A client without checked-out data is never reclaimed, no matter how idle.
        let c2 = server.connect();
        assert!(server.reclaim_idle(Duration::ZERO).is_empty());
        // The reclaimed client can come back: activity re-registers its session.
        server.checkout(c1, &["Alarms"]).unwrap();
        assert!(server.checkout(c2, &["Alarms"]).is_err());
        // Disconnect (the transport's close path) releases everything at once.
        assert!(server.disconnect(c1) > 0);
        assert!(server.checkout(c2, &["Alarms"]).is_ok());
    }

    #[test]
    fn structural_updates_cover_named_dependents_and_relationship_reclassification() {
        let server = server_with_data();
        let c1 = server.connect();
        server.checkout(c1, &["Alarms", "Sensor"]).unwrap();
        // Remote-style check-in: re-classify the object, then the Access relationship to Write,
        // addressing the relationship structurally by association + named bindings.
        server
            .checkin(
                c1,
                &[
                    Update::Reclassify { object: "Alarms".into(), new_class: "OutputData".into() },
                    Update::ReclassifyRelationship {
                        association: "Access".into(),
                        bindings: vec![
                            ("from".into(), "Alarms".into()),
                            ("by".into(), "Sensor".into()),
                        ],
                        new_association: "Write".into(),
                    },
                ],
            )
            .unwrap();
        let rels = server.relationships_of("Alarms").unwrap();
        assert_eq!(rels.len(), 1);
        assert_eq!(rels[0].association, "Write");
        assert!(rels[0].involves("Sensor"));
        assert!(!rels[0].inherited);

        // An explicit plain segment name lands byte-for-byte.
        server.checkout(c1, &["Sensor"]).unwrap();
        server
            .checkin(
                c1,
                &[Update::CreateDependentNamed {
                    parent: "Sensor".into(),
                    class_local: "Description".into(),
                    name: "Description".into(),
                    value: Value::string("reads process data"),
                }],
            )
            .unwrap();
        assert_eq!(
            server.retrieve("Sensor.Description").unwrap().value,
            Value::string("reads process data")
        );
        // Addressing a relationship that does not exist fails cleanly.
        server.checkout(c1, &["Alarms", "Sensor"]).unwrap();
        let err = server
            .checkin(
                c1,
                &[Update::ReclassifyRelationship {
                    association: "Read".into(),
                    bindings: vec![
                        ("from".into(), "Alarms".into()),
                        ("by".into(), "Sensor".into()),
                    ],
                    new_association: "Write".into(),
                }],
            )
            .unwrap_err();
        assert!(matches!(err, ServerError::Rejected(_)));
        // A partial address (a strict subset of the bindings) is rejected, never matched
        // against "whichever relationship comes first".
        let err = server
            .checkin(
                c1,
                &[Update::ReclassifyRelationship {
                    association: "Write".into(),
                    bindings: vec![("to".into(), "Alarms".into())],
                    new_association: "Access".into(),
                }],
            )
            .unwrap_err();
        assert!(matches!(err, ServerError::Rejected(SeedError::NotFound(_))));
        // Padding the address with duplicate pairs cannot fake full coverage either (that
        // would let a client touch a relationship whose other participant it never locked).
        let err = server
            .checkin(
                c1,
                &[Update::ReclassifyRelationship {
                    association: "Write".into(),
                    bindings: vec![("to".into(), "Alarms".into()), ("to".into(), "Alarms".into())],
                    new_association: "Access".into(),
                }],
            )
            .unwrap_err();
        assert!(matches!(err, ServerError::Rejected(SeedError::NotFound(_))));
    }

    #[test]
    fn read_surface_serves_schema_children_and_counts() {
        let server = server_with_data();
        let schema = server.schema_summary();
        assert_eq!(schema.name, "Figure3");
        assert!(schema.class_id("Data").is_some());
        assert!(schema.class_name(0).is_some());
        let hierarchy = server.schema_summary().association_hierarchy("Access");
        assert!(hierarchy.contains(&"Access".to_string()));
        assert!(hierarchy.contains(&"Read".to_string()));
        assert!(hierarchy.contains(&"Write".to_string()));
        assert_eq!(schema.association("Access").unwrap().roles[0], "from");

        let children = server.children_of("AlarmHandler").unwrap();
        assert_eq!(children.len(), 1);
        assert_eq!(children[0].name.to_string(), "AlarmHandler.Description");
        assert!(server.children_of("Ghost").is_err());

        let prefixed = server.objects_with_prefix("Alarm");
        assert!(prefixed.len() >= 3, "Alarms, AlarmHandler, AlarmHandler.Description");

        let actions = server.objects_of_class("Action", true).unwrap();
        assert_eq!(actions.len(), 2);
        assert!(server.objects_of_class("Nonsense", true).is_err());

        assert_eq!(server.relationship_count_in("Access", true).unwrap(), 1);
        assert!(server.relationship_count_in("Nonsense", true).is_err());
        // The populated fixture is deliberately incomplete (e.g. undescribed data).
        assert!(server.completeness_count() > 0);
    }

    #[test]
    fn reads_are_never_torn_by_concurrent_checkins() {
        // The RwLock refactor's contract: one read (one closure, one query) sees the database
        // either before or after a whole check-in, never in between.
        let mut db = Database::new(figure3_schema());
        for name in ["Left", "Right"] {
            let id = db.create_object("Action", name).unwrap();
            db.create_dependent(id, "Description", Value::string("round 0")).unwrap();
        }
        let server = Arc::new(SeedServer::new(db));

        let writer = {
            let server = server.clone();
            std::thread::spawn(move || {
                let client = server.connect();
                for round in 1..=50u32 {
                    server.checkout(client, &["Left", "Right"]).unwrap();
                    server
                        .checkin(
                            client,
                            &[
                                Update::SetValue {
                                    object: "Left.Description".into(),
                                    value: Value::string(format!("round {round}")),
                                },
                                Update::SetValue {
                                    object: "Right.Description".into(),
                                    value: Value::string(format!("round {round}")),
                                },
                            ],
                        )
                        .unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let server = server.clone();
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let (left, right) = server.with_database(|db| {
                            (
                                db.object_by_name("Left.Description").unwrap().value.clone(),
                                db.object_by_name("Right.Description").unwrap().value.clone(),
                            )
                        });
                        assert_eq!(left, right, "a read observed half a check-in");
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(server.retrieve("Left.Description").unwrap().value, Value::string("round 50"));
    }

    #[test]
    fn threaded_server_serves_concurrent_clients() {
        let server = server_with_data();
        let (handle, join) = server.spawn();

        let mut workers = Vec::new();
        for i in 0..4u64 {
            let handle = handle.clone();
            workers.push(std::thread::spawn(move || {
                let client = handle.connect().unwrap();
                // Each worker creates its own object and updates it — no conflicts.
                let name = format!("Worker{i}Data");
                match handle
                    .call(Request::Checkin {
                        client,
                        updates: vec![Update::CreateObject {
                            class: "Data".into(),
                            name: name.clone(),
                        }],
                    })
                    .unwrap()
                {
                    Response::Ack(result) => result.unwrap(),
                    other => panic!("unexpected response {other:?}"),
                }
                handle
                    .quick_set_value(
                        client,
                        "AlarmHandler.Description",
                        Value::string(format!("by {i}")),
                    )
                    .ok(); // may conflict with another worker holding the lock; that's fine
                handle.retrieve(&name).unwrap();
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
        // All four objects exist centrally.
        for i in 0..4u64 {
            assert!(handle.retrieve(&format!("Worker{i}Data")).is_ok());
        }
        handle.shutdown().unwrap();
        let _server_back = join.join().unwrap();
    }
}
