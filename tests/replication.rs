//! Integration: WAL-shipping replication across the whole stack — a durable primary behind the
//! TCP frontend, two [`ReplicaNode`]s streaming its WAL, the SPADES tool reading through all
//! three nodes, and replica crash/restart mid-stream.  The wire contract behind this is
//! `docs/PROTOCOL.md`; the runbook is `docs/OPERATIONS.md`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use seed::core::Database;
use seed::net::{RemoteClient, ReplicaNode, SeedNetServer};
use seed::schema::figure3_schema;
use seed::server::{ReplicationRole, SeedServer, ServerError, Update};
use seed::spades::{specification_report, RemoteBackend, Workload, WorkloadConfig};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir(name: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::SeqCst);
    let dir =
        std::env::temp_dir().join(format!("seed-replication-it-{}-{name}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_primary(dir: &std::path::Path) -> SeedNetServer {
    let db = Database::create_durable(dir, figure3_schema()).unwrap();
    SeedNetServer::bind(SeedServer::new(db), "127.0.0.1:0").unwrap()
}

fn primary_lsn(net: &SeedNetServer) -> u64 {
    net.core().with_database(|db| db.durable_lsn().unwrap())
}

/// The acceptance scenario: primary + 2 replicas over loopback; after a burst of check-ins,
/// both replicas answer the SPADES specification report byte-identically to the primary.
#[test]
fn spades_reports_are_byte_identical_across_primary_and_replicas() {
    let primary_dir = temp_dir("spades-primary");
    let replica_dirs = [temp_dir("spades-r1"), temp_dir("spades-r2")];
    let primary = durable_primary(&primary_dir);
    let addr = primary.local_addr();
    let replicas: Vec<ReplicaNode> = replica_dirs
        .iter()
        .map(|dir| ReplicaNode::start(dir, addr, "127.0.0.1:0").unwrap())
        .collect();

    // A burst of check-ins: the SPADES editing workload through the remote backend.
    let workload = Workload::generate(&WorkloadConfig {
        data_elements: 10,
        actions: 5,
        checkpoint_every: 1_000,
        ..WorkloadConfig::default()
    });
    let mut editor = RemoteBackend::new(RemoteClient::connect(addr).unwrap()).unwrap();
    assert_eq!(workload.apply(&mut editor), 0, "workload must apply cleanly");

    let target = primary_lsn(&primary);
    for replica in &replicas {
        assert!(replica.wait_for_lsn(target, Duration::from_secs(30)), "replica lagged out");
    }

    // Fresh read-side backends on all three nodes render the same bytes.
    let report_via = |addr| {
        let backend = RemoteBackend::new(RemoteClient::connect(addr).unwrap()).unwrap();
        specification_report(&backend)
    };
    let expected = report_via(addr);
    assert!(expected.contains("elements"), "report looks real: {expected}");
    for replica in &replicas {
        assert_eq!(report_via(replica.local_addr()), expected, "replica report diverged");
    }

    // Both sides surface replication in their persistence status.
    let mut primary_client = RemoteClient::connect(addr).unwrap();
    let status = primary_client.persistence().unwrap().replication.expect("primary status");
    assert_eq!(status.role, ReplicationRole::Primary);
    assert_eq!(status.subscribers, 2);
    let mut replica_client = RemoteClient::connect(replicas[0].local_addr()).unwrap();
    let status = replica_client.persistence().unwrap().replication.expect("replica status");
    assert_eq!(status.role, ReplicationRole::Replica);
    assert_eq!(status.lag(), 0);

    for replica in replicas {
        replica.shutdown();
    }
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&primary_dir);
    for dir in replica_dirs {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Kill a replica mid-stream (while a writer keeps committing), restart it on the same
/// directory, and it resumes from its last durable LSN and converges — including across a
/// primary checkpoint that truncated the records it missed.
#[test]
fn replica_killed_mid_stream_restarts_and_converges() {
    let primary_dir = temp_dir("kill-primary");
    let replica_dir = temp_dir("kill-replica");
    let primary = durable_primary(&primary_dir);
    let addr = primary.local_addr();
    let mut writer = RemoteClient::connect(addr).unwrap();

    let replica = ReplicaNode::start(&replica_dir, addr, "127.0.0.1:0").unwrap();
    writer
        .checkin(vec![Update::CreateObject { class: "Data".into(), name: "Round0".into() }])
        .unwrap();
    assert!(replica.wait_for_lsn(primary_lsn(&primary), Duration::from_secs(30)));
    let cursor_at_kill = replica.applied_lsn();
    replica.shutdown(); // the "kill": the stream dies, the store keeps its durable cursor

    // The primary keeps committing while the replica is down, then checkpoints — the WAL
    // records the replica missed are truncated away.
    for round in 1..=5 {
        writer
            .checkin(vec![Update::CreateObject {
                class: "Data".into(),
                name: format!("Round{round}"),
            }])
            .unwrap();
    }
    writer.checkpoint().unwrap();

    // Restart on the same directory: resumes from the durable cursor, is forced through the
    // snapshot resync, and converges to the primary's keyed-scan state.
    let replica = ReplicaNode::start(&replica_dir, addr, "127.0.0.1:0").unwrap();
    assert!(replica.applied_lsn() >= cursor_at_kill, "the durable cursor survived the kill");
    assert!(replica.wait_for_lsn(primary_lsn(&primary), Duration::from_secs(30)));
    let mut reader = RemoteClient::connect(replica.local_addr()).unwrap();
    for round in 0..=5 {
        let name = format!("Round{round}");
        assert_eq!(reader.retrieve(&name).unwrap().name.to_string(), name);
    }
    assert_eq!(reader.query("count Data").unwrap().count, 6);

    // And it keeps streaming after the resync.
    writer
        .checkin(vec![Update::CreateObject { class: "Data".into(), name: "PostResync".into() }])
        .unwrap();
    assert!(replica.wait_for_lsn(primary_lsn(&primary), Duration::from_secs(30)));
    assert!(reader.retrieve("PostResync").is_ok());

    replica.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&replica_dir);
}

/// A long shipped stream is applied incrementally: the replica patches its serving snapshot
/// in place, O(delta) items per batch, and never falls back to a wholesale reload.  This is
/// the E12/E14 lag mechanism — a batch that touches one object must not cost a full rebuild
/// of a database holding hundreds.
#[test]
fn long_streams_apply_incrementally_without_wholesale_reloads() {
    let primary_dir = temp_dir("incr-primary");
    let replica_dir = temp_dir("incr-replica");
    let primary = durable_primary(&primary_dir);
    let addr = primary.local_addr();
    let mut writer = RemoteClient::connect(addr).unwrap();

    // Bulk state first, so a rebuild would be visibly more expensive than a patch.
    let bulk: Vec<Update> = (0..200)
        .map(|i| Update::CreateObject { class: "Data".into(), name: format!("Bulk{i}") })
        .collect();
    writer.checkin(bulk).unwrap();

    let replica = ReplicaNode::start(&replica_dir, addr, "127.0.0.1:0").unwrap();
    assert!(replica.wait_for_lsn(primary_lsn(&primary), Duration::from_secs(30)));
    let after_sync = replica.items_applied();

    // A long stream of small commits: one object each.
    const ROUNDS: u64 = 40;
    for round in 0..ROUNDS {
        writer
            .checkin(vec![Update::CreateObject {
                class: "Data".into(),
                name: format!("Stream{round}"),
            }])
            .unwrap();
    }
    assert!(replica.wait_for_lsn(primary_lsn(&primary), Duration::from_secs(30)));

    assert_eq!(replica.resets_applied(), 0, "an uninterrupted stream never forces a reload");
    let streamed = replica.items_applied() - after_sync;
    // Each commit touches exactly one object; batching may coalesce commits but the total
    // item count is O(delta), nowhere near ROUNDS * 200 (what per-batch rebuilds would cost).
    assert!(
        streamed >= ROUNDS,
        "every shipped object must be applied (saw {streamed}, expected >= {ROUNDS})"
    );
    assert!(
        streamed <= ROUNDS * 4,
        "apply touched {streamed} items for {ROUNDS} one-object commits — not O(delta)"
    );

    // And the patched snapshot actually serves the streamed state.
    let mut reader = RemoteClient::connect(replica.local_addr()).unwrap();
    assert_eq!(reader.query("count Data").unwrap().count, 240);
    assert!(reader.retrieve("Stream39").is_ok());
    let status = reader.persistence().unwrap().replication.expect("replica status");
    assert_eq!(status.snapshot_lsn, status.applied_lsn, "reads serve the applied cursor");

    replica.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&replica_dir);
}

/// Version snapshots created on the primary are visible on replicas (the `vi/` and `v/` key
/// spaces ship like everything else), and a replica refuses to create its own.
#[test]
fn versions_replicate_and_replicas_refuse_to_mint_them() {
    let primary_dir = temp_dir("versions-primary");
    let replica_dir = temp_dir("versions-replica");
    let primary = durable_primary(&primary_dir);
    let addr = primary.local_addr();
    let mut writer = RemoteClient::connect(addr).unwrap();
    writer
        .checkin(vec![Update::CreateObject { class: "Data".into(), name: "Versioned".into() }])
        .unwrap();
    writer.create_version("global snapshot").unwrap();

    let replica = ReplicaNode::start(&replica_dir, addr, "127.0.0.1:0").unwrap();
    assert!(replica.wait_for_lsn(primary_lsn(&primary), Duration::from_secs(30)));
    let mut reader = RemoteClient::connect(replica.local_addr()).unwrap();
    assert_eq!(reader.persistence().unwrap().versions, 1, "the version shipped");
    assert!(matches!(
        reader.create_version("not allowed"),
        Err(ServerError::ReadOnlyReplica { .. })
    ));

    replica.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&replica_dir);
}
