//! Client-side session: local copies, locally staged updates, check-in.
//!
//! "Several clients use the server for retrieval operations, but take local copies for making
//! updates."  A [`ClientSession`] keeps the copies received at check-out, stages updates
//! locally, and sends them back as one check-in batch.

use std::collections::HashMap;

use seed_core::{ObjectRecord, Value};

use crate::error::{ServerError, ServerResult};
use crate::protocol::{CheckoutSet, ClientId, Request, Response, Update};
use crate::server::ServerHandle;

/// A client session talking to a spawned server thread.
pub struct ClientSession {
    handle: ServerHandle,
    client: ClientId,
    /// Local copies of checked-out objects, keyed by name.
    workspace: HashMap<String, ObjectRecord>,
    /// Updates staged locally, sent at check-in.
    staged: Vec<Update>,
}

impl ClientSession {
    /// Connects a new session to the server.
    pub fn connect(handle: ServerHandle) -> ServerResult<Self> {
        let client = handle.connect()?;
        Ok(Self { handle, client, workspace: HashMap::new(), staged: Vec::new() })
    }

    /// The server-assigned client id.
    pub fn id(&self) -> ClientId {
        self.client
    }

    /// Number of staged (not yet checked-in) updates.
    pub fn staged_count(&self) -> usize {
        self.staged.len()
    }

    /// Objects currently in the local workspace.
    pub fn workspace_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.workspace.keys().cloned().collect();
        names.sort();
        names
    }

    /// Reads an object: from the local workspace if checked out, otherwise straight from the
    /// server (retrieval does not need a copy).
    pub fn read(&self, name: &str) -> ServerResult<ObjectRecord> {
        if let Some(copy) = self.workspace.get(name) {
            return Ok(copy.clone());
        }
        self.handle.retrieve(name)
    }

    /// Checks out objects (taking write locks centrally) and adds their copies to the local
    /// workspace.
    pub fn checkout(&mut self, names: &[&str]) -> ServerResult<CheckoutSet> {
        let response = self.handle.call(Request::Checkout {
            client: self.client,
            objects: names.iter().map(|s| s.to_string()).collect(),
        })?;
        match response {
            Response::Checkout(Ok(set)) => {
                for obj in &set.objects {
                    self.workspace.insert(obj.name.to_string(), obj.clone());
                }
                Ok(set)
            }
            Response::Checkout(Err(e)) => Err(e),
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Stages a value update on a local copy.
    pub fn set_value(&mut self, object: &str, value: Value) -> ServerResult<()> {
        let copy = self
            .workspace
            .get_mut(object)
            .ok_or_else(|| ServerError::NotCheckedOut(object.to_string()))?;
        copy.value = value.clone();
        self.staged.push(Update::SetValue { object: object.to_string(), value });
        Ok(())
    }

    /// Stages the creation of a new independent object (no lock needed — it does not exist yet).
    pub fn create_object(&mut self, class: &str, name: &str) {
        self.staged.push(Update::CreateObject { class: class.to_string(), name: name.to_string() });
    }

    /// Stages the creation of a dependent object under a checked-out parent.
    pub fn create_dependent(
        &mut self,
        parent: &str,
        class_local: &str,
        value: Value,
    ) -> ServerResult<()> {
        if !self.workspace.contains_key(parent) {
            return Err(ServerError::NotCheckedOut(parent.to_string()));
        }
        self.staged.push(Update::CreateDependent {
            parent: parent.to_string(),
            class_local: class_local.to_string(),
            value,
        });
        Ok(())
    }

    /// Stages a re-classification of a checked-out object.
    pub fn reclassify(&mut self, object: &str, new_class: &str) -> ServerResult<()> {
        if !self.workspace.contains_key(object) {
            return Err(ServerError::NotCheckedOut(object.to_string()));
        }
        self.staged.push(Update::Reclassify {
            object: object.to_string(),
            new_class: new_class.to_string(),
        });
        Ok(())
    }

    /// Stages a relationship creation among checked-out (or newly created) objects.
    pub fn create_relationship(&mut self, association: &str, bindings: &[(&str, &str)]) {
        self.staged.push(Update::CreateRelationship {
            association: association.to_string(),
            bindings: bindings.iter().map(|(r, o)| (r.to_string(), o.to_string())).collect(),
        });
    }

    /// Stages a deletion of a checked-out object.
    pub fn delete_object(&mut self, object: &str) -> ServerResult<()> {
        if !self.workspace.contains_key(object) {
            return Err(ServerError::NotCheckedOut(object.to_string()));
        }
        self.staged.push(Update::DeleteObject { object: object.to_string() });
        Ok(())
    }

    /// Sends the staged updates as one check-in transaction.  On success the workspace and the
    /// staged list are cleared (the server released the locks); on failure both are kept so the
    /// user can amend and retry.
    pub fn commit(&mut self) -> ServerResult<()> {
        let response = self
            .handle
            .call(Request::Checkin { client: self.client, updates: self.staged.clone() })?;
        match response {
            Response::Ack(Ok(())) => {
                self.staged.clear();
                self.workspace.clear();
                Ok(())
            }
            Response::Ack(Err(e)) => Err(e),
            _ => Err(ServerError::Disconnected),
        }
    }

    /// Abandons local work: clears the workspace and asks the server to release the locks.
    pub fn abandon(&mut self) -> ServerResult<()> {
        self.staged.clear();
        self.workspace.clear();
        match self.handle.call(Request::Release { client: self.client })? {
            Response::Ack(result) => result,
            _ => Err(ServerError::Disconnected),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::SeedServer;
    use seed_core::Database;
    use seed_schema::figure3_schema;

    fn spawn_server() -> (ServerHandle, std::thread::JoinHandle<SeedServer>) {
        let mut db = Database::new(figure3_schema());
        let handler = db.create_object("Action", "AlarmHandler").unwrap();
        db.create_dependent(handler, "Description", Value::string("Handles alarms")).unwrap();
        db.create_object("Data", "Alarms").unwrap();
        SeedServer::new(db).spawn()
    }

    #[test]
    fn session_checkout_edit_commit() {
        let (handle, join) = spawn_server();
        {
            let mut session = ClientSession::connect(handle.clone()).unwrap();
            assert!(session.id() > 0);
            session.checkout(&["AlarmHandler"]).unwrap();
            assert_eq!(session.workspace_names().len(), 2);
            // Local read sees the local copy after a staged edit.
            session
                .set_value("AlarmHandler.Description", Value::string("Generates alarms"))
                .unwrap();
            assert_eq!(
                session.read("AlarmHandler.Description").unwrap().value,
                Value::string("Generates alarms")
            );
            // The server still has the old value until commit.
            assert_eq!(
                handle.retrieve("AlarmHandler.Description").unwrap().value,
                Value::string("Handles alarms")
            );
            session.create_object("Data", "OperatorAlert");
            session.create_relationship(
                "Access",
                &[("from", "OperatorAlert"), ("by", "AlarmHandler")],
            );
            assert_eq!(session.staged_count(), 3);
            session.commit().unwrap();
            assert_eq!(session.staged_count(), 0);
            assert_eq!(
                handle.retrieve("AlarmHandler.Description").unwrap().value,
                Value::string("Generates alarms")
            );
            assert!(handle.retrieve("OperatorAlert").is_ok());
        }
        handle.shutdown().unwrap();
        join.join().unwrap();
    }

    #[test]
    fn conflicting_checkouts_and_abandon() {
        let (handle, join) = spawn_server();
        {
            let mut alice = ClientSession::connect(handle.clone()).unwrap();
            let mut bob = ClientSession::connect(handle.clone()).unwrap();
            alice.checkout(&["Alarms"]).unwrap();
            assert!(matches!(bob.checkout(&["Alarms"]), Err(ServerError::Locked { .. })));
            // Alice abandons; Bob can now check out and edit.
            alice.abandon().unwrap();
            bob.checkout(&["Alarms"]).unwrap();
            bob.reclassify("Alarms", "OutputData").unwrap();
            bob.commit().unwrap();
            let central = handle.retrieve("Alarms").unwrap();
            // Reads from a fresh session confirm the class change took effect centrally.
            let session = ClientSession::connect(handle.clone()).unwrap();
            assert_eq!(session.read("Alarms").unwrap().id, central.id);
        }
        handle.shutdown().unwrap();
        join.join().unwrap();
    }

    #[test]
    fn staging_requires_checkout() {
        let (handle, join) = spawn_server();
        {
            let mut session = ClientSession::connect(handle.clone()).unwrap();
            assert!(session.set_value("Alarms", Value::Undefined).is_err());
            assert!(session.reclassify("Alarms", "OutputData").is_err());
            assert!(session.delete_object("Alarms").is_err());
            assert!(session.create_dependent("Alarms", "Text", Value::Undefined).is_err());
        }
        handle.shutdown().unwrap();
        join.join().unwrap();
    }

    #[test]
    fn failed_commit_keeps_staged_updates() {
        let (handle, join) = spawn_server();
        {
            let mut session = ClientSession::connect(handle.clone()).unwrap();
            session.checkout(&["AlarmHandler"]).unwrap();
            // Invalid value (integer into a STRING domain).
            session.set_value("AlarmHandler.Description", Value::Integer(7)).unwrap();
            assert!(session.commit().is_err());
            assert_eq!(session.staged_count(), 1, "staged updates kept for amendment");
            // Amend and retry: replace the staged batch by abandoning and redoing it.
            session.abandon().unwrap();
            session.checkout(&["AlarmHandler"]).unwrap();
            session.set_value("AlarmHandler.Description", Value::string("ok")).unwrap();
            session.commit().unwrap();
            assert_eq!(
                handle.retrieve("AlarmHandler.Description").unwrap().value,
                Value::string("ok")
            );
        }
        handle.shutdown().unwrap();
        join.join().unwrap();
    }
}
