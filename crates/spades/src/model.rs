//! Tool-level model: the kinds of things a SPADES specification talks about.

use std::fmt;

/// What kind of specification element a name refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ElementKind {
    /// Not yet known whether the element is data or an action (the vague `Thing` of Figure 3).
    Thing,
    /// A data element.
    Data,
    /// A data element known to be an input.
    InputData,
    /// A data element known to be an output.
    OutputData,
    /// An action (process, procedure, activity).
    Action,
}

impl ElementKind {
    /// Whether this kind is (a specialization of) data.
    pub fn is_data(self) -> bool {
        matches!(self, ElementKind::Data | ElementKind::InputData | ElementKind::OutputData)
    }

    /// Whether a refinement from `self` to `target` makes the information more precise (or is a
    /// lateral move within the data family).
    pub fn can_refine_to(self, target: ElementKind) -> bool {
        match self {
            ElementKind::Thing => true,
            ElementKind::Data => target.is_data(),
            ElementKind::InputData | ElementKind::OutputData => target.is_data(),
            ElementKind::Action => target == ElementKind::Action,
        }
    }

    /// The SEED class name this kind maps to in the Figure 3 schema.
    pub fn class_name(self) -> &'static str {
        match self {
            ElementKind::Thing => "Thing",
            ElementKind::Data => "Data",
            ElementKind::InputData => "InputData",
            ElementKind::OutputData => "OutputData",
            ElementKind::Action => "Action",
        }
    }
}

impl fmt::Display for ElementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.class_name())
    }
}

/// How precisely a data flow is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlowKind {
    /// "There is a data flow" — direction unknown (the vague `Access` of Figure 3).
    Access,
    /// The action reads the data.
    Read,
    /// The action writes the data.
    Write,
}

impl FlowKind {
    /// The SEED association name this kind maps to in the Figure 3 schema.
    pub fn association_name(self) -> &'static str {
        match self {
            FlowKind::Access => "Access",
            FlowKind::Read => "Read",
            FlowKind::Write => "Write",
        }
    }

    /// Whether a flow of this kind may be refined into `target`.
    pub fn can_refine_to(self, target: FlowKind) -> bool {
        match self {
            FlowKind::Access => true,
            FlowKind::Read | FlowKind::Write => target != FlowKind::Access,
        }
    }
}

impl fmt::Display for FlowKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.association_name())
    }
}

/// A summary of one specification element, independent of the backend.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementInfo {
    /// The element's name.
    pub name: String,
    /// Its current kind (possibly still vague).
    pub kind: ElementKind,
    /// Free-text description, if any.
    pub description: Option<String>,
    /// Keywords attached to the element.
    pub keywords: Vec<String>,
    /// Data flows the element participates in, as `(data, kind, action)` triples.
    pub flows: Vec<(String, FlowKind, String)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_refinement_rules() {
        assert!(ElementKind::Thing.can_refine_to(ElementKind::Data));
        assert!(ElementKind::Thing.can_refine_to(ElementKind::Action));
        assert!(ElementKind::Data.can_refine_to(ElementKind::OutputData));
        assert!(
            ElementKind::OutputData.can_refine_to(ElementKind::InputData),
            "lateral move allowed"
        );
        assert!(!ElementKind::Data.can_refine_to(ElementKind::Action));
        assert!(!ElementKind::Action.can_refine_to(ElementKind::Data));
        assert!(ElementKind::InputData.is_data());
        assert!(!ElementKind::Action.is_data());
        assert_eq!(ElementKind::OutputData.class_name(), "OutputData");
        assert_eq!(ElementKind::Thing.to_string(), "Thing");
    }

    #[test]
    fn flow_refinement_rules() {
        assert!(FlowKind::Access.can_refine_to(FlowKind::Read));
        assert!(FlowKind::Access.can_refine_to(FlowKind::Write));
        assert!(FlowKind::Read.can_refine_to(FlowKind::Write), "lateral correction allowed");
        assert!(!FlowKind::Write.can_refine_to(FlowKind::Access), "no un-refinement");
        assert_eq!(FlowKind::Write.association_name(), "Write");
        assert_eq!(FlowKind::Access.to_string(), "Access");
    }
}
