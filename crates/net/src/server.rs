//! The concurrent TCP frontend: one session thread per connection over a shared
//! [`SeedServer`].
//!
//! Each connection is handshaken onto its own [`ClientId`]; the session enforces that identity
//! on every lock-table request (a peer cannot act for another connection's client), and when
//! the connection closes — cleanly or not — the client's write locks and checkout bookkeeping
//! are released, the paper's crash-recovery rule for checked-out data.  A background reaper
//! additionally reclaims the locks of clients that stay connected but fall silent beyond the
//! configured idle timeout.

use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use seed_server::{ClientId, Request, Response, SeedServer, ServerError};

use crate::codec::{decode_request, encode_response_versioned};
use crate::error::WireError;
use crate::wire::{negotiate, read_frame, write_frame, FrameKind, HandshakeRole, Hello, Welcome};

/// Tuning knobs of the TCP frontend.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Reclaim the locks of clients idle longer than this (`None` disables the reaper; the
    /// disconnect path still releases locks when a connection closes).
    pub idle_timeout: Option<Duration>,
    /// How often the reaper checks for idle clients.
    pub reaper_interval: Duration,
    /// Free-form server identification sent in the handshake.
    pub banner: String,
    /// How often a replication session polls the WAL for news to ship.
    pub replication_poll: Duration,
    /// Longest a replication session stays silent: an empty heartbeat batch ships after this,
    /// so replicas can track the primary's end of log (and their lag) through idle periods.
    pub replication_heartbeat: Duration,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        Self {
            idle_timeout: None,
            reaper_interval: Duration::from_millis(200),
            banner: format!("seed-net/{}", env!("CARGO_PKG_VERSION")),
            replication_poll: Duration::from_millis(10),
            replication_heartbeat: Duration::from_secs(1),
        }
    }
}

/// A running TCP server around a shared [`SeedServer`].
pub struct SeedNetServer {
    core: Arc<SeedServer>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    reaper_thread: Option<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl SeedNetServer {
    /// Binds with default configuration.  Use `"127.0.0.1:0"` to let the OS pick a port (see
    /// [`SeedNetServer::local_addr`]).
    pub fn bind(server: SeedServer, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::with_config(server, addr, NetServerConfig::default())
    }

    /// Binds a listener and starts the accept loop (and the idle reaper, when configured).
    pub fn with_config(
        server: SeedServer,
        addr: impl ToSocketAddrs,
        config: NetServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let core = Arc::new(server);
        let stop = Arc::new(AtomicBool::new(false));
        let sessions: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_thread = {
            let core = core.clone();
            let stop = stop.clone();
            let sessions = sessions.clone();
            let config = Arc::new(config.clone());
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let core = core.clone();
                    let stop = stop.clone();
                    let config = config.clone();
                    let handle =
                        std::thread::spawn(move || serve_connection(&core, stream, &stop, &config));
                    let mut sessions = sessions.lock();
                    sessions.retain(|h| !h.is_finished());
                    sessions.push(handle);
                }
            })
        };

        let reaper_thread = config.idle_timeout.map(|timeout| {
            let core = core.clone();
            let stop = stop.clone();
            let interval = config.reaper_interval;
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(interval);
                    core.reclaim_idle(timeout);
                }
            })
        });

        Ok(Self { core, addr, stop, accept_thread: Some(accept_thread), reaper_thread, sessions })
    }

    /// The address the server listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared central server (for in-process inspection next to remote clients).
    pub fn core(&self) -> Arc<SeedServer> {
        self.core.clone()
    }

    /// Stops accepting, waits for the accept loop, the reaper and every live session to finish.
    /// Sessions notice the stop flag at their next read-timeout tick.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.  An unspecified bind address
        // (0.0.0.0 / ::) is not connectable on all platforms — wake via loopback instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&wake, Duration::from_secs(1));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.reaper_thread.take() {
            let _ = handle.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut self.sessions.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for SeedNetServer {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// How often a blocked session read wakes up to check the stop flag.
const SESSION_POLL: Duration = Duration::from_millis(100);

/// Upper bound on a blocked frame write.  A peer that stops draining its socket would
/// otherwise park the session thread in `write_all` forever (the stop flag only unblocks
/// reads) and hang server shutdown.
const SESSION_WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// How long a fresh connection may take to complete the handshake.  Without a deadline, a peer
/// that connects and never sends its hello would park a session thread for the server's whole
/// lifetime — and the idle reaper cannot reclaim it, because no client id exists yet.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// A reader that turns the socket's read timeout into stop-flag polling **without losing
/// partial progress**: `read` retries on `WouldBlock`/`TimedOut` until at least one byte
/// arrives, the server is stopping, or the optional deadline (pre-handshake only) passes.
/// `Read::read_exact` on top of this never observes a timeout mid-frame, so a frame split
/// across poll ticks (slow or fragmented link) is reassembled instead of desynchronizing the
/// stream.
struct PollRead<'a> {
    inner: TcpStream,
    stop: &'a AtomicBool,
    deadline: Option<std::time::Instant>,
}

impl std::io::Read for PollRead<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            match self.inner.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.stop.load(Ordering::SeqCst) {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::ConnectionAborted,
                            "server shutting down",
                        ));
                    }
                    if self.deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "handshake deadline passed",
                        ));
                    }
                }
                other => return other,
            }
        }
    }
}

fn serve_connection(
    core: &SeedServer,
    stream: TcpStream,
    stop: &AtomicBool,
    config: &NetServerConfig,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(SESSION_POLL));
    let _ = stream.set_write_timeout(Some(SESSION_WRITE_TIMEOUT));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => PollRead {
            inner: s,
            stop,
            deadline: Some(std::time::Instant::now() + HANDSHAKE_TIMEOUT),
        },
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream.try_clone().expect("second clone after first"));

    // Handshake: Hello in, Welcome (or Reject) out.
    let (client, role, version) = match handshake(core, &mut reader, &mut writer, &config.banner) {
        Some(outcome) => outcome,
        None => {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };
    // Handshaken sessions may idle between frames as long as they like (the reaper governs
    // their locks); only the handshake itself is deadlined.
    reader.get_mut().deadline = None;

    if role == HandshakeRole::Replica {
        crate::replication::serve_replica(core, &mut reader, &mut writer, stop, client, config);
        // Retire (not forget): the session's last ack keeps pinning WAL retention so the
        // replica can catch up from the retained log when it reconnects.
        core.retire_replica(client);
        core.disconnect(client);
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }

    loop {
        let frame = match read_frame(&mut reader) {
            Ok(frame) => frame,
            Err(WireError::Recoverable(msg)) => {
                // The frame boundary held: reject the frame, keep the connection.
                let response = Response::Error(ServerError::Protocol(msg));
                if write_frame(
                    &mut writer,
                    FrameKind::Response,
                    &encode_response_versioned(&response, version),
                )
                .is_err()
                {
                    break;
                }
                continue;
            }
            Err(_) => break, // desync, dead socket, or server shutdown
        };
        if frame.kind != FrameKind::Request {
            let response = Response::Error(ServerError::Protocol(format!(
                "expected a request frame, got {:?}",
                frame.kind
            )));
            if write_frame(
                &mut writer,
                FrameKind::Response,
                &encode_response_versioned(&response, version),
            )
            .is_err()
            {
                break;
            }
            continue;
        }
        let request = match decode_request(&frame.payload) {
            Ok(request) => request,
            Err(e) => {
                let response = Response::Error(ServerError::from(e));
                if write_frame(
                    &mut writer,
                    FrameKind::Response,
                    &encode_response_versioned(&response, version),
                )
                .is_err()
                {
                    break;
                }
                continue;
            }
        };
        // Per-connection identity: lock-table requests may only act for the client id bound to
        // this connection at handshake.
        if let Some(claimed) = request.client_id() {
            if claimed != client {
                let response = Response::Error(ServerError::Protocol(format!(
                    "request claims client {claimed}, but this connection is client {client}"
                )));
                if write_frame(
                    &mut writer,
                    FrameKind::Response,
                    &encode_response_versioned(&response, version),
                )
                .is_err()
                {
                    break;
                }
                continue;
            }
        }
        // Identity is assigned at handshake, one per connection; serving Connect here would
        // mint session entries nothing ever cleans up.
        if matches!(request, Request::Connect) {
            let response = Response::Error(ServerError::Protocol(
                "client identity is assigned at handshake; open a new connection instead"
                    .to_string(),
            ));
            if write_frame(
                &mut writer,
                FrameKind::Response,
                &encode_response_versioned(&response, version),
            )
            .is_err()
            {
                break;
            }
            continue;
        }
        core.touch(client);
        let closing = matches!(request, Request::Shutdown);
        let response = core.handle(request);
        if write_frame(
            &mut writer,
            FrameKind::Response,
            &encode_response_versioned(&response, version),
        )
        .is_err()
        {
            break;
        }
        if closing {
            break;
        }
    }

    // The crash-recovery rule: whatever this client still had checked out comes back.
    core.disconnect(client);
    let _ = stream.shutdown(Shutdown::Both);
}

fn handshake(
    core: &SeedServer,
    reader: &mut impl std::io::Read,
    writer: &mut impl std::io::Write,
    banner: &str,
) -> Option<(ClientId, HandshakeRole, u16)> {
    let Ok(frame) = read_frame(reader) else { return None };
    if frame.kind != FrameKind::Hello {
        let _ = write_frame(writer, FrameKind::Reject, b"handshake must start with a hello frame");
        return None;
    }
    let hello = match Hello::decode(&frame.payload) {
        Ok(hello) => hello,
        Err(e) => {
            let _ = write_frame(writer, FrameKind::Reject, e.to_string().as_bytes());
            return None;
        }
    };
    let version = match negotiate(&hello) {
        Ok(version) => version,
        Err(reason) => {
            let _ = write_frame(writer, FrameKind::Reject, reason.as_bytes());
            return None;
        }
    };
    // The replication kinds exist only from v2 on; a v1-negotiated replica could never speak
    // its own stream.
    if hello.role == HandshakeRole::Replica && version < 2 {
        let _ = write_frame(writer, FrameKind::Reject, b"replication requires protocol v2");
        return None;
    }
    let client = core.connect();
    let welcome = Welcome { version, client_id: client, banner: banner.to_string() };
    if write_frame(writer, FrameKind::Welcome, &welcome.encode()).is_err() {
        core.disconnect(client);
        return None;
    }
    Some((client, hello.role, version))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RemoteClient;
    use crate::wire::{Hello, PROTOCOL_VERSION};
    use seed_core::{Database, Value};
    use seed_schema::figure3_schema;
    use seed_server::Update;

    fn start_server() -> SeedNetServer {
        let mut db = Database::new(figure3_schema());
        let alarms = db.create_object("Data", "Alarms").unwrap();
        let sensor = db.create_object("Action", "Sensor").unwrap();
        db.create_relationship("Access", &[("from", alarms), ("by", sensor)]).unwrap();
        let handler = db.create_object("Action", "AlarmHandler").unwrap();
        db.create_dependent(handler, "Description", Value::string("Handles alarms")).unwrap();
        SeedNetServer::bind(SeedServer::new(db), "127.0.0.1:0").unwrap()
    }

    #[test]
    fn handshake_and_full_request_surface_over_loopback() {
        let server = start_server();
        let mut client = RemoteClient::connect(server.local_addr()).unwrap();
        assert!(client.id() > 0);
        assert_eq!(client.protocol_version(), PROTOCOL_VERSION);
        assert!(client.server_banner().starts_with("seed-net/"));

        // Reads.
        assert_eq!(client.retrieve("Alarms").unwrap().name.to_string(), "Alarms");
        assert!(matches!(client.retrieve("Ghost"), Err(ServerError::Unknown(_))));
        let answer = client.query(r#"find Data where name prefix "Alarm""#).unwrap();
        assert_eq!(answer.names, vec!["Alarms"]);
        assert!(client.explain("count Data").unwrap().contains("count"));
        assert!(matches!(client.query("bogus"), Err(ServerError::Query(_))));
        let schema = client.schema().unwrap();
        assert_eq!(schema.name, "Figure3");
        assert!(schema.class_id("Data").is_some());
        assert_eq!(client.children("AlarmHandler").unwrap().len(), 1);
        assert_eq!(client.objects_of_class("Action", true).unwrap().len(), 2);
        assert_eq!(client.relationship_count("Access", true).unwrap(), 1);
        let rels = client.relationships_of("Alarms").unwrap();
        assert_eq!(rels.len(), 1);
        assert!(rels[0].involves("Sensor"));
        assert!(client.completeness_count().unwrap() > 0);
        assert!(!client.objects_with_prefix("Alarm").unwrap().is_empty());
        assert!(!client.persistence().unwrap().durable);

        // Checkout / check-in cycle.
        let set = client.checkout(&["AlarmHandler"]).unwrap();
        assert_eq!(set.len(), 2, "root + Description dependent");
        client
            .checkin(vec![Update::SetValue {
                object: "AlarmHandler.Description".into(),
                value: Value::string("updated over TCP"),
            }])
            .unwrap();
        assert_eq!(
            client.retrieve("AlarmHandler.Description").unwrap().value,
            Value::string("updated over TCP")
        );
        client.create_version("over the wire").unwrap();
        assert_eq!(client.persistence().unwrap().versions, 1);
        client.close().unwrap();
        server.shutdown();
    }

    #[test]
    fn two_clients_race_exactly_one_wins_and_loser_learns_the_holder() {
        let server = start_server();
        let addr = server.local_addr();
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    let mut client = RemoteClient::connect(addr).unwrap();
                    barrier.wait();
                    let outcome = client.checkout(&["Alarms"]).map(|_| client.id());
                    (client, outcome)
                })
            })
            .collect();
        let results: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        let winners: Vec<u64> =
            results.iter().filter_map(|(_, o)| o.as_ref().ok().copied()).collect();
        assert_eq!(winners.len(), 1, "exactly one checkout must win");
        let loser_error = results
            .iter()
            .find_map(|(_, o)| o.as_ref().err())
            .expect("exactly one checkout must lose");
        match loser_error {
            ServerError::Locked { object, holder } => {
                assert_eq!(object, "Alarms");
                assert_eq!(*holder, winners[0], "the loser learns who holds the lock");
            }
            other => panic!("loser expected Locked, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn disconnect_releases_the_clients_locks() {
        let server = start_server();
        let addr = server.local_addr();
        let core = server.core();
        {
            let mut client = RemoteClient::connect(addr).unwrap();
            client.checkout(&["Alarms"]).unwrap();
            assert!(core.locked_count() > 0);
            // Dropped without release or close: the TCP connection dies with it.
        }
        // The session thread notices EOF and runs the crash-recovery rule.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while core.locked_count() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(core.locked_count(), 0, "disconnect must release the client's locks");
        let mut next = RemoteClient::connect(addr).unwrap();
        next.checkout(&["Alarms"]).unwrap();
        server.shutdown();
    }

    #[test]
    fn idle_clients_are_reaped_on_timeout() {
        let mut db = Database::new(figure3_schema());
        db.create_object("Data", "Alarms").unwrap();
        let config = NetServerConfig {
            idle_timeout: Some(Duration::from_millis(100)),
            reaper_interval: Duration::from_millis(20),
            ..NetServerConfig::default()
        };
        let server =
            SeedNetServer::with_config(SeedServer::new(db), "127.0.0.1:0", config).unwrap();
        let core = server.core();
        let mut sleeper = RemoteClient::connect(server.local_addr()).unwrap();
        sleeper.checkout(&["Alarms"]).unwrap();
        assert!(core.locked_count() > 0);
        // The client keeps its TCP connection but falls silent; the reaper reclaims its locks.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while core.locked_count() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(core.locked_count(), 0, "idle locks must be reclaimed");
        let mut other = RemoteClient::connect(server.local_addr()).unwrap();
        other.checkout(&["Alarms"]).unwrap();
        server.shutdown();
    }

    #[test]
    fn identity_is_enforced_per_connection() {
        let server = start_server();
        let mut alice = RemoteClient::connect(server.local_addr()).unwrap();
        let mut mallory = RemoteClient::connect(server.local_addr()).unwrap();
        alice.checkout(&["Alarms"]).unwrap();
        // Mallory forges requests with Alice's client id: the session rejects them outright.
        let forged = Request::Release { client: alice.id() };
        assert!(matches!(mallory.call(forged), Err(ServerError::Protocol(_))));
        let forged = Request::Checkin {
            client: alice.id(),
            updates: vec![Update::SetValue { object: "Alarms".into(), value: Value::Undefined }],
        };
        assert!(matches!(mallory.call(forged), Err(ServerError::Protocol(_))));
        // Alice is unaffected.
        assert!(server.core().locked_count() > 0);
        alice.release().unwrap();
        server.shutdown();
    }

    #[test]
    fn malformed_frames_are_rejected_without_losing_the_connection() {
        use std::io::Write as _;
        let server = start_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut writer = std::io::BufWriter::new(stream);
        write_frame(&mut writer, FrameKind::Hello, &Hello::current("raw").encode()).unwrap();
        let welcome = read_frame(&mut reader).unwrap();
        assert_eq!(welcome.kind, FrameKind::Welcome);

        // A frame with a valid header but garbage payload: rejected, connection lives.
        write_frame(&mut writer, FrameKind::Request, &[0xFF, 0xEE, 0xDD]).unwrap();
        let reply = read_frame(&mut reader).unwrap();
        assert_eq!(reply.kind, FrameKind::Response);
        assert!(matches!(
            crate::codec::decode_response(&reply.payload).unwrap(),
            Response::Error(ServerError::Protocol(_))
        ));

        // A corrupted checksum: rejected, connection lives.
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            FrameKind::Request,
            &crate::codec::encode_request(&Request::Persistence),
        )
        .unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        writer.write_all(&buf).unwrap();
        writer.flush().unwrap();
        let reply = read_frame(&mut reader).unwrap();
        assert!(matches!(
            crate::codec::decode_response(&reply.payload).unwrap(),
            Response::Error(ServerError::Protocol(_))
        ));

        // A hello frame mid-session is also a protocol error, not a hangup.
        write_frame(&mut writer, FrameKind::Hello, &Hello::current("again").encode()).unwrap();
        let reply = read_frame(&mut reader).unwrap();
        assert!(matches!(
            crate::codec::decode_response(&reply.payload).unwrap(),
            Response::Error(ServerError::Protocol(_))
        ));

        // After all that abuse, a well-formed request still works.
        write_frame(
            &mut writer,
            FrameKind::Request,
            &crate::codec::encode_request(&Request::Persistence),
        )
        .unwrap();
        let reply = read_frame(&mut reader).unwrap();
        assert!(matches!(
            crate::codec::decode_response(&reply.payload).unwrap(),
            Response::Persistence(_)
        ));
        server.shutdown();
    }

    #[test]
    fn v1_negotiated_sessions_get_v1_byte_shapes() {
        // A v1-only peer must decode every reply with its original six-field persistence
        // decoder: the server keys response encoding on the session's negotiated version.
        let server = start_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut writer = std::io::BufWriter::new(stream);
        let v1_hello = Hello { max_version: 1, ..Hello::current("v1 peer") };
        write_frame(&mut writer, FrameKind::Hello, &v1_hello.encode()).unwrap();
        let welcome = read_frame(&mut reader).unwrap();
        assert_eq!(welcome.kind, FrameKind::Welcome);
        assert_eq!(crate::wire::Welcome::decode(&welcome.payload).unwrap().version, 1);
        write_frame(
            &mut writer,
            FrameKind::Request,
            &crate::codec::encode_request(&Request::Persistence),
        )
        .unwrap();
        let reply = read_frame(&mut reader).unwrap();
        // The payload must end right after the `versions` varint — no v2 replication flag.
        let expected = crate::codec::encode_response_versioned(
            &Response::Persistence(server.core().persistence_status()),
            1,
        );
        assert_eq!(reply.payload, expected, "v1 session got a non-v1 byte shape");
        server.shutdown();
    }

    #[test]
    fn incompatible_versions_are_rejected_at_handshake() {
        let server = start_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut writer = std::io::BufWriter::new(stream);
        let future = Hello {
            min_version: PROTOCOL_VERSION + 1,
            max_version: PROTOCOL_VERSION + 2,
            agent: "from the future".into(),
            role: HandshakeRole::Client,
        };
        write_frame(&mut writer, FrameKind::Hello, &future.encode()).unwrap();
        let reply = read_frame(&mut reader).unwrap();
        assert_eq!(reply.kind, FrameKind::Reject);
        assert!(String::from_utf8_lossy(&reply.payload).contains("no common protocol version"));
        server.shutdown();
    }
}
