//! Completeness analysis.
//!
//! "Minimum cardinalities and covering conditions for generalizations represent completeness
//! information."  They are deliberately *not* enforced on updates — that is what lets SEED
//! accept incomplete data — but the development must eventually become "sufficiently formal,
//! complete, and precise to serve as a basis for implementation".  "Formal detection of
//! incompleteness is provided by operations which check the rules that are derivable from the
//! completeness conditions in the schema."
//!
//! [`analyze`] is that operation: it scans the visible database and reports every completeness
//! finding without modifying anything.

use std::fmt;

use seed_schema::{GeneralizationHierarchy, Schema};

use crate::ident::{ObjectId, RelationshipId};
use crate::store::DataStore;

/// One incompleteness finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Incompleteness {
    /// An object participates in fewer relationships of an association (in a given role) than
    /// the role's minimum cardinality requires.
    MissingRelationships {
        /// The object that is missing relationships.
        object: ObjectId,
        /// The object's name.
        object_name: String,
        /// Association whose minimum is not met.
        association: String,
        /// Role of the object in the missing relationships.
        role: String,
        /// Required minimum.
        required: u32,
        /// Actual count.
        actual: u32,
    },
    /// An object has fewer dependent objects of a class than the occurrence minimum requires.
    MissingDependents {
        /// The incomplete parent object.
        object: ObjectId,
        /// The parent object's name.
        object_name: String,
        /// Dependent class whose minimum is not met.
        dependent_class: String,
        /// Required minimum.
        required: u32,
        /// Actual count.
        actual: u32,
    },
    /// An object still sits at a covering generalized class and must eventually be specialized.
    UnspecializedObject {
        /// The object.
        object: ObjectId,
        /// The object's name.
        object_name: String,
        /// The covering class it still belongs to.
        class: String,
    },
    /// A relationship still sits at a covering generalized association.
    UnspecializedRelationship {
        /// The relationship.
        relationship: RelationshipId,
        /// The covering association it still belongs to.
        association: String,
    },
    /// An object of a value class still has an undefined value.
    UndefinedValue {
        /// The object.
        object: ObjectId,
        /// The object's name.
        object_name: String,
        /// The class whose domain awaits a value.
        class: String,
    },
    /// A relationship lacks a required attribute value.
    MissingAttribute {
        /// The relationship.
        relationship: RelationshipId,
        /// Its association.
        association: String,
        /// The required attribute that is absent or undefined.
        attribute: String,
    },
}

impl Incompleteness {
    /// The name of the item concerned (object name or association name).
    pub fn subject(&self) -> &str {
        match self {
            Incompleteness::MissingRelationships { object_name, .. }
            | Incompleteness::MissingDependents { object_name, .. }
            | Incompleteness::UnspecializedObject { object_name, .. }
            | Incompleteness::UndefinedValue { object_name, .. } => object_name,
            Incompleteness::UnspecializedRelationship { association, .. }
            | Incompleteness::MissingAttribute { association, .. } => association,
        }
    }
}

impl fmt::Display for Incompleteness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Incompleteness::MissingRelationships {
                object_name,
                association,
                role,
                required,
                actual,
                ..
            } => {
                write!(
                    f,
                    "'{object_name}' needs at least {required} '{association}' relationship(s) as '{role}' (has {actual})"
                )
            }
            Incompleteness::MissingDependents {
                object_name,
                dependent_class,
                required,
                actual,
                ..
            } => {
                write!(
                    f,
                    "'{object_name}' needs at least {required} dependent(s) of class '{dependent_class}' (has {actual})"
                )
            }
            Incompleteness::UnspecializedObject { object_name, class, .. } => {
                write!(
                    f,
                    "'{object_name}' must eventually be specialized below covering class '{class}'"
                )
            }
            Incompleteness::UnspecializedRelationship { relationship, association } => {
                write!(f, "relationship {relationship} must eventually be specialized below covering association '{association}'")
            }
            Incompleteness::UndefinedValue { object_name, class, .. } => {
                write!(f, "'{object_name}' of class '{class}' still has an undefined value")
            }
            Incompleteness::MissingAttribute { association, attribute, .. } => {
                write!(f, "a '{association}' relationship lacks required attribute '{attribute}'")
            }
        }
    }
}

/// The result of a completeness analysis.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompletenessReport {
    /// Every finding, in a stable (object-id then kind) order.
    pub findings: Vec<Incompleteness>,
}

impl CompletenessReport {
    /// Whether the database is complete.
    pub fn is_complete(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.findings.len()
    }

    /// Whether there are no findings.
    pub fn is_empty(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings concerning a particular object name.
    pub fn for_subject(&self, subject: &str) -> Vec<&Incompleteness> {
        self.findings.iter().filter(|f| f.subject() == subject).collect()
    }
}

impl fmt::Display for CompletenessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.findings.is_empty() {
            return writeln!(f, "database is complete");
        }
        writeln!(f, "{} incompleteness finding(s):", self.findings.len())?;
        for finding in &self.findings {
            writeln!(f, "  - {finding}")?;
        }
        Ok(())
    }
}

/// Analyzes the store for incompleteness with respect to the schema's completeness information.
///
/// Pattern items are skipped (they are invisible until inherited); relationships materialized
/// through pattern inheritance count towards the inheritor's obligations.
pub fn analyze(schema: &Schema, store: &DataStore) -> CompletenessReport {
    let hierarchy = GeneralizationHierarchy::new(schema);
    let mut findings = Vec::new();

    let mut objects: Vec<_> = store.visible_objects().collect();
    objects.sort_by_key(|o| o.id);

    for object in &objects {
        let object_name = object.name.to_string();
        let Ok(class_def) = schema.class(object.class) else { continue };

        // (1) Minimum role cardinalities: for every association role this object's class must
        // eventually fill, count its live participations across the association's hierarchy,
        // including relationships inherited from patterns.
        for (assoc, role) in schema.completeness_obligations(object.class) {
            let role_index = assoc.role_index(&role.name).unwrap_or(0);
            let mut count = 0u32;
            // Direct participations in the association or any of its specializations.
            let mut hierarchy_ids = schema.association_descendants(assoc.id);
            hierarchy_ids.push(assoc.id);
            for rel in store.relationships_of(object.id) {
                if rel.is_pattern {
                    continue;
                }
                if hierarchy_ids.contains(&rel.association)
                    && rel.bindings.get(role_index).map(|(_, o)| *o) == Some(object.id)
                {
                    count += 1;
                }
            }
            // Participations inherited from patterns: a pattern the object inherits may be bound
            // in relationships that materialize in the object's context.
            for pattern in store.inherited_patterns(object.id) {
                for rel in store.relationships_of(pattern) {
                    if hierarchy_ids.contains(&rel.association)
                        && rel.bindings.get(role_index).map(|(_, o)| *o) == Some(pattern)
                    {
                        count += 1;
                    }
                }
            }
            if count < role.cardinality.min {
                findings.push(Incompleteness::MissingRelationships {
                    object: object.id,
                    object_name: object_name.clone(),
                    association: assoc.name.clone(),
                    role: role.name.clone(),
                    required: role.cardinality.min,
                    actual: count,
                });
            }
        }

        // (2) Minimum occurrences of dependent classes.
        for dependent in schema.dependent_classes(object.class) {
            if dependent.occurrence.min == 0 {
                continue;
            }
            let actual = store
                .children_of_class(object.id, dependent.id)
                .iter()
                .filter(|c| !c.is_pattern)
                .count() as u32;
            if actual < dependent.occurrence.min {
                findings.push(Incompleteness::MissingDependents {
                    object: object.id,
                    object_name: object_name.clone(),
                    dependent_class: dependent.name.clone(),
                    required: dependent.occurrence.min,
                    actual,
                });
            }
        }

        // (3) Covering classes: the object must eventually move to a specialization.
        if class_def.covering && !schema.subclasses(object.class).is_empty() {
            findings.push(Incompleteness::UnspecializedObject {
                object: object.id,
                object_name: object_name.clone(),
                class: class_def.name.clone(),
            });
        }

        // (4) Undefined values of value classes.
        if class_def.domain.is_some() && object.value.is_undefined() {
            findings.push(Incompleteness::UndefinedValue {
                object: object.id,
                object_name: object_name.clone(),
                class: class_def.name.clone(),
            });
        }
        let _ = &hierarchy;
    }

    // (5) Covering associations and (6) required relationship attributes.
    let mut relationships: Vec<_> = store.all_relationships().filter(|r| r.is_visible()).collect();
    relationships.sort_by_key(|r| r.id);
    for rel in relationships {
        let Ok(assoc_def) = schema.association(rel.association) else { continue };
        if assoc_def.covering && !schema.subassociations(rel.association).is_empty() {
            findings.push(Incompleteness::UnspecializedRelationship {
                relationship: rel.id,
                association: assoc_def.name.clone(),
            });
        }
        for ancestor in schema.association_ancestors(rel.association) {
            let Ok(ancestor_def) = schema.association(ancestor) else { continue };
            for attr in &ancestor_def.attributes {
                if !attr.required {
                    continue;
                }
                let present =
                    rel.attributes.get(&attr.name).map(|v| !v.is_undefined()).unwrap_or(false);
                if !present {
                    findings.push(Incompleteness::MissingAttribute {
                        relationship: rel.id,
                        association: assoc_def.name.clone(),
                        attribute: attr.name.clone(),
                    });
                }
            }
        }
    }

    CompletenessReport { findings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::ObjectName;
    use crate::object::ObjectRecord;
    use crate::relationship::RelationshipRecord;
    use crate::value::Value;
    use seed_schema::figure3_schema;

    struct Fixture {
        schema: Schema,
        store: DataStore,
    }

    impl Fixture {
        fn new() -> Self {
            Self { schema: figure3_schema(), store: DataStore::new() }
        }

        fn add_object(&mut self, name: &str, class: &str) -> ObjectId {
            let class = self.schema.class_id(class).unwrap();
            let id = self.store.allocate_object_id();
            self.store.insert_object(ObjectRecord::new(id, class, ObjectName::root(name), None));
            id
        }

        fn add_relationship(
            &mut self,
            assoc: &str,
            bindings: Vec<(&str, ObjectId)>,
        ) -> RelationshipId {
            let assoc = self.schema.association_id(assoc).unwrap();
            let id = self.store.allocate_relationship_id();
            self.store.insert_relationship(RelationshipRecord::new(
                id,
                assoc,
                bindings.into_iter().map(|(r, o)| (r.to_string(), o)).collect(),
            ));
            id
        }
    }

    #[test]
    fn empty_database_is_complete() {
        let fx = Fixture::new();
        let report = analyze(&fx.schema, &fx.store);
        assert!(report.is_complete());
        assert!(report.to_string().contains("complete"));
    }

    #[test]
    fn thing_object_is_incomplete_until_specialized() {
        let mut fx = Fixture::new();
        let alarms = fx.add_object("Alarms", "Thing");
        let report = analyze(&fx.schema, &fx.store);
        // Thing is covering, so 'Alarms' must be specialized eventually.
        assert!(report.findings.iter().any(
            |f| matches!(f, Incompleteness::UnspecializedObject { object, .. } if *object == alarms)
        ));
        // Specialize to Data: the covering finding disappears, but Data's role minima appear.
        let data = fx.schema.class_id("Data").unwrap();
        fx.store.update_object(alarms, |o| o.class = data);
        let report = analyze(&fx.schema, &fx.store);
        assert!(!report
            .findings
            .iter()
            .any(|f| matches!(f, Incompleteness::UnspecializedObject { .. })));
    }

    #[test]
    fn action_needs_an_access_relationship() {
        let mut fx = Fixture::new();
        let sensor = fx.add_object("Sensor", "Action");
        let report = analyze(&fx.schema, &fx.store);
        // 'Access by' has minimum 1..*: every Action must eventually access some Data.
        assert!(report.findings.iter().any(|f| matches!(
            f,
            Incompleteness::MissingRelationships { object, association, .. }
                if *object == sensor && association == "Access"
        )));
        // Adding an Access (or any specialization) satisfies it.
        let alarms = fx.add_object("Alarms", "Data");
        fx.add_relationship("Access", vec![("from", alarms), ("by", sensor)]);
        let report = analyze(&fx.schema, &fx.store);
        assert!(!report.findings.iter().any(|f| matches!(
            f,
            Incompleteness::MissingRelationships { object, .. } if *object == sensor
        )));
    }

    #[test]
    fn specialized_relationship_satisfies_generalized_minimum() {
        let mut fx = Fixture::new();
        let sensor = fx.add_object("Sensor", "Action");
        let alarms = fx.add_object("Alarms", "OutputData");
        fx.add_relationship("Write", vec![("to", alarms), ("by", sensor)]);
        let report = analyze(&fx.schema, &fx.store);
        // The Write relationship counts towards 'Access by: 1..*' for Sensor and towards
        // 'Write to: 1..*' for Alarms.
        assert!(!report.findings.iter().any(|f| matches!(
            f,
            Incompleteness::MissingRelationships { object, .. } if *object == sensor
        )));
        assert!(!report.findings.iter().any(|f| matches!(
            f,
            Incompleteness::MissingRelationships { object, association, .. }
                if *object == alarms && association == "Write"
        )));
    }

    #[test]
    fn data_object_missing_read_and_write() {
        let mut fx = Fixture::new();
        // Figure 3: InputData must be read (1..*), OutputData must be written (1..*).
        let input = fx.add_object("ProcessData", "InputData");
        let report = analyze(&fx.schema, &fx.store);
        assert!(report.findings.iter().any(|f| matches!(
            f,
            Incompleteness::MissingRelationships { object, association, .. }
                if *object == input && association == "Read"
        )));
    }

    #[test]
    fn undefined_value_and_missing_attribute_reported() {
        let mut fx = Fixture::new();
        let alarms = fx.add_object("Alarms", "OutputData");
        let sensor = fx.add_object("Sensor", "Action");
        // A Selector sub-object with no value yet.
        let selector_class = fx.schema.class_id("Data.Text.Selector").unwrap();
        let sel_id = fx.store.allocate_object_id();
        fx.store.insert_object(ObjectRecord::new(
            sel_id,
            selector_class,
            ObjectName::parse("Alarms.Text.Selector").unwrap(),
            Some(alarms),
        ));
        // A Write relationship without the required NumberOfWrites attribute.
        fx.add_relationship("Write", vec![("to", alarms), ("by", sensor)]);
        let report = analyze(&fx.schema, &fx.store);
        assert!(report.findings.iter().any(
            |f| matches!(f, Incompleteness::UndefinedValue { object, .. } if *object == sel_id)
        ));
        assert!(report.findings.iter().any(|f| matches!(
            f,
            Incompleteness::MissingAttribute { attribute, .. } if attribute == "NumberOfWrites"
        )));
        // Filling the value and the attribute clears both findings.
        fx.store.update_object(sel_id, |o| o.value = Value::string("Representation"));
        let rels: Vec<_> = fx.store.relationships_of(alarms).iter().map(|r| r.id).collect();
        fx.store.update_relationship(rels[0], |r| {
            r.attributes.insert("NumberOfWrites".into(), Value::Integer(2));
        });
        let report = analyze(&fx.schema, &fx.store);
        assert!(!report
            .findings
            .iter()
            .any(|f| matches!(f, Incompleteness::UndefinedValue { .. })));
        assert!(!report
            .findings
            .iter()
            .any(|f| matches!(f, Incompleteness::MissingAttribute { .. })));
    }

    #[test]
    fn covering_association_reported_until_specialized() {
        let mut fx = Fixture::new();
        let alarms = fx.add_object("Alarms", "Data");
        let sensor = fx.add_object("Sensor", "Action");
        let rel = fx.add_relationship("Access", vec![("from", alarms), ("by", sensor)]);
        let report = analyze(&fx.schema, &fx.store);
        assert!(report.findings.iter().any(|f| matches!(
            f,
            Incompleteness::UnspecializedRelationship { relationship, .. } if *relationship == rel
        )));
        // Specialize the relationship to Read: finding disappears.
        let read = fx.schema.association_id("Read").unwrap();
        fx.store.update_relationship(rel, |r| r.association = read);
        let report = analyze(&fx.schema, &fx.store);
        assert!(!report
            .findings
            .iter()
            .any(|f| matches!(f, Incompleteness::UnspecializedRelationship { .. })));
    }

    #[test]
    fn patterns_are_ignored_by_the_analysis() {
        let mut fx = Fixture::new();
        let pattern = fx.add_object("PatternThing", "Thing");
        fx.store.update_object(pattern, |o| o.is_pattern = true);
        let report = analyze(&fx.schema, &fx.store);
        assert!(report.is_complete(), "{report}");
    }

    #[test]
    fn report_filters_by_subject() {
        let mut fx = Fixture::new();
        fx.add_object("Sensor", "Action");
        fx.add_object("Display", "Action");
        let report = analyze(&fx.schema, &fx.store);
        assert!(!report.for_subject("Sensor").is_empty());
        assert!(!report.for_subject("Display").is_empty());
        assert!(report.for_subject("Ghost").is_empty());
        assert_eq!(report.len(), report.findings.len());
        assert!(!report.is_empty());
    }
}
