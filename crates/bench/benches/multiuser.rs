//! E8 — the two-level multi-user extension: check-out / check-in cycle cost and conflict rate as
//! the number of clients sharing a working set grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seed_core::{Database, Value};
use seed_schema::figure3_schema;
use seed_server::{SeedServer, Update};

fn server_with_objects(n: usize) -> SeedServer {
    let mut db = Database::new(figure3_schema());
    for i in 0..n {
        db.create_object("Data", &format!("Shared{i:03}")).unwrap();
    }
    SeedServer::new(db)
}

fn checkout_checkin_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("E8_checkout_checkin");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for clients in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(clients), &clients, |b, &clients| {
            let server = server_with_objects(clients.max(1));
            b.iter(|| {
                let mut applied = 0usize;
                for c in 0..clients {
                    let client = (c + 1) as u64;
                    let target = format!("Shared{c:03}");
                    server.checkout(client, &[&target]).unwrap();
                    server
                        .checkin(
                            client,
                            &[Update::SetValue { object: target.clone(), value: Value::Undefined }],
                        )
                        .unwrap();
                    applied += 1;
                }
                applied
            })
        });
    }
    group.finish();
}

fn conflict_rate(c: &mut Criterion) {
    let mut group = c.benchmark_group("E8_conflicts");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    // All clients want the same object: every cycle after the first in a round conflicts.
    for clients in [2usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(clients), &clients, |b, &clients| {
            let server = server_with_objects(1);
            b.iter(|| {
                // Everyone tries to check the same object out before anyone checks in: only the
                // first client succeeds, the rest observe lock conflicts.
                let mut winners = Vec::new();
                let mut conflicts = 0usize;
                for c in 0..clients {
                    let client = (c + 1) as u64;
                    match server.checkout(client, &["Shared000"]) {
                        Ok(_) => winners.push(client),
                        Err(_) => conflicts += 1,
                    }
                }
                for client in winners {
                    server
                        .checkin(
                            client,
                            &[Update::SetValue {
                                object: "Shared000".to_string(),
                                value: Value::Undefined,
                            }],
                        )
                        .unwrap();
                }
                conflicts
            })
        });
    }
    group.finish();
}

criterion_group!(benches, checkout_checkin_cycle, conflict_rate);
criterion_main!(benches);
