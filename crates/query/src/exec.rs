//! Query execution: plans are run against a [`Database`]; a scan-only fallback doubles as the
//! semantic oracle.
//!
//! [`execute`] lowers the query through [`crate::planner::plan`] and runs the resulting
//! physical plan with [`run_plan`]; [`execute_scan`] is the original full-extent scan pipeline,
//! kept as the fallback path and as the reference the property tests compare indexed execution
//! against (both must return identical result sets for every query).

use std::collections::HashSet;

use seed_core::{Database, Value, ValueOp};
use seed_schema::ClassId;

use crate::algebra::ObjectSet;
use crate::ast::{Comparison, Navigation, Query, Selection};
use crate::error::{QueryError, QueryResult};
use crate::planner::{plan, AccessPath, Plan};

/// The result of executing a query: a set of objects, a count, or a rendered plan.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// The objects matching a `find` query.
    Objects(ObjectSet),
    /// The cardinality returned by a `count` query.
    Count(usize),
    /// The rendered physical plan returned by an `explain` query.
    Plan(String),
}

impl QueryOutcome {
    /// The number of matching objects (zero for `explain` outcomes).
    pub fn count(&self) -> usize {
        match self {
            QueryOutcome::Objects(set) => set.len(),
            QueryOutcome::Count(n) => *n,
            QueryOutcome::Plan(_) => 0,
        }
    }

    /// The matching object names in sorted order (empty for `count` and `explain` outcomes).
    pub fn names(&self) -> Vec<String> {
        match self {
            QueryOutcome::Objects(set) => set.names(),
            QueryOutcome::Count(_) | QueryOutcome::Plan(_) => Vec::new(),
        }
    }

    /// The object set, if this outcome carries one.
    pub fn objects(&self) -> Option<&ObjectSet> {
        match self {
            QueryOutcome::Objects(set) => Some(set),
            QueryOutcome::Count(_) | QueryOutcome::Plan(_) => None,
        }
    }

    /// The rendered plan, if this is an `explain` outcome.
    pub fn plan(&self) -> Option<&str> {
        match self {
            QueryOutcome::Plan(text) => Some(text),
            QueryOutcome::Objects(_) | QueryOutcome::Count(_) => None,
        }
    }
}

/// Compares a stored value against a query literal.  Undefined values match nothing, following
/// the paper.  Literals compare as integers when both sides parse as integers, as strings
/// otherwise.
fn compare_value(value: &Value, op: Comparison, literal: &str) -> bool {
    if value.is_undefined() {
        return false;
    }
    // Integer comparison when possible.
    if let (Some(lhs), Ok(rhs)) = (value.as_integer(), literal.parse::<i64>()) {
        return match op {
            Comparison::Equal => lhs == rhs,
            Comparison::NotEqual => lhs != rhs,
            Comparison::Less => lhs < rhs,
            Comparison::Greater => lhs > rhs,
        };
    }
    let lhs = match value.as_str() {
        Some(s) => s.to_string(),
        None => value.to_string(),
    };
    match op {
        Comparison::Equal => lhs == literal,
        Comparison::NotEqual => lhs != literal,
        Comparison::Less => lhs.as_str() < literal,
        Comparison::Greater => lhs.as_str() > literal,
    }
}

fn apply_navigation(
    db: &Database,
    nav: &Navigation,
    class_set: &ObjectSet,
) -> QueryResult<ObjectSet> {
    let start = db
        .object_by_name(&nav.from_object)
        .map_err(|_| QueryError::Unknown(format!("object '{}'", nav.from_object)))?;
    let schema = db.schema();
    let association = schema
        .association_by_name(&nav.association)
        .map_err(|_| QueryError::Unknown(format!("association '{}'", nav.association)))?;
    // Navigate from the start object's role (any role that is not the target role works for the
    // binary associations of the paper; we pick the first non-target role).
    let from_role =
        association.roles.iter().map(|r| r.name.as_str()).find(|r| *r != nav.to_role).ok_or_else(
            || QueryError::Unknown(format!("role '{}' of '{}'", nav.to_role, nav.association)),
        )?;
    if association.role(&nav.to_role).is_none() {
        return Err(QueryError::Unknown(format!(
            "role '{}' of '{}'",
            nav.to_role, nav.association
        )));
    }
    let reached = ObjectSet::from_records(vec![db.object(start.id)?]).navigate(
        db,
        &nav.association,
        from_role,
        &nav.to_role,
    )?;
    Ok(reached.intersect(class_set))
}

fn apply_selection(db: &Database, selection: &Selection, set: ObjectSet) -> QueryResult<ObjectSet> {
    Ok(match selection {
        Selection::NameEquals(name) => set.select(|o| o.name.to_string() == *name),
        Selection::NamePrefix(prefix) => set.select(|o| o.name.to_string().starts_with(prefix)),
        Selection::Value(op, literal) => set.select(|o| compare_value(&o.value, *op, literal)),
        Selection::Related { association, role } => {
            let schema = db.schema();
            let assoc = schema
                .association_by_name(association)
                .map_err(|_| QueryError::Unknown(format!("association '{association}'")))?;
            let role_index = assoc
                .role_index(role)
                .ok_or_else(|| QueryError::Unknown(format!("role '{role}' of '{association}'")))?;
            let mut hierarchy = schema.association_descendants(assoc.id);
            hierarchy.push(assoc.id);
            set.select(|o| {
                db.relationships(o.id).iter().any(|rel| {
                    hierarchy.contains(&rel.record.association)
                        && rel.record.bindings.get(role_index).map(|(_, obj)| *obj) == Some(o.id)
                })
            })
        }
        Selection::Incomplete => {
            let report = db.completeness_report();
            set.select(|o| !report.for_subject(&o.name.to_string()).is_empty())
        }
    })
}

/// Executes a parsed query through the cost-aware planner: the query is lowered onto the
/// cheapest access path ([`crate::planner::plan`]) and the plan is run with [`run_plan`].
/// `explain` queries return the rendered plan instead of executing it.
pub fn execute(db: &Database, query: &Query) -> QueryResult<QueryOutcome> {
    if let Query::Explain(inner) = query {
        return Ok(QueryOutcome::Plan(plan(db, inner)?.render()));
    }
    run_plan(db, &plan(db, query)?)
}

/// Executes a parsed query with the original full-extent scan pipeline, bypassing the planner.
/// This is the fallback path and the semantic oracle: for every query, `execute_scan` and
/// [`execute`] return the same result set (pinned by the crate's property tests).  `explain`
/// queries still return the plan — there is no "scanned explain".
pub fn execute_scan(db: &Database, query: &Query) -> QueryResult<QueryOutcome> {
    let (class, exact, selections, navigate, is_count) = match query {
        Query::Explain(_) => return execute(db, query),
        Query::Find { class, exact, selections, navigate } => {
            (class, *exact, selections, navigate, false)
        }
        Query::Count { class, exact, selections, navigate } => {
            (class, *exact, selections, navigate, true)
        }
    };
    let records = db
        .objects_of_class(class, !exact)
        .map_err(|_| QueryError::Unknown(format!("class '{class}'")))?;
    let mut set = ObjectSet::from_records(records);
    if let Some(nav) = navigate {
        set = apply_navigation(db, nav, &set)?;
    }
    for selection in selections {
        set = apply_selection(db, selection, set)?;
    }
    Ok(if is_count { QueryOutcome::Count(set.len()) } else { QueryOutcome::Objects(set) })
}

/// The class ids a query's class ranges over (the class plus its specializations unless
/// `exactly` was given) — used to filter name-index hits down to the queried extent.  Resolved
/// through [`Database::class_hierarchy`], the same source of truth the value/scan paths use.
fn class_filter(db: &Database, class: &str, exact: bool) -> QueryResult<HashSet<ClassId>> {
    Ok(db
        .class_hierarchy(class, !exact)
        .map_err(|_| QueryError::Unknown(format!("class '{class}'")))?
        .into_iter()
        .collect())
}

/// Runs a physical plan: materialises the access path, applies the navigation step and the
/// residual selections, and shapes the outcome.
pub fn run_plan(db: &Database, plan: &Plan) -> QueryResult<QueryOutcome> {
    let mut set = match &plan.access {
        AccessPath::ClassScan { .. } => {
            let records = db
                .objects_of_class(&plan.class, !plan.exact)
                .map_err(|_| QueryError::Unknown(format!("class '{}'", plan.class)))?;
            ObjectSet::from_records(records)
        }
        // Name-index paths return objects of any class, so these two arms filter the hits down
        // to the queried extent (the other arms resolve the hierarchy internally).
        AccessPath::ByName { name } => {
            let classes = class_filter(db, &plan.class, plan.exact)?;
            match db.object_by_name(name) {
                Ok(record) if classes.contains(&record.class) => ObjectSet::from_records([record]),
                _ => ObjectSet::new(),
            }
        }
        AccessPath::ByNamePrefix { prefix, .. } => {
            let classes = class_filter(db, &plan.class, plan.exact)?;
            ObjectSet::from_records(
                db.objects_with_name_prefix(prefix)
                    .into_iter()
                    .filter(|o| classes.contains(&o.class)),
            )
        }
        AccessPath::ByValue { op, literal, .. } => {
            let vop = match op {
                Comparison::Equal => ValueOp::Eq,
                Comparison::Less => ValueOp::Less,
                Comparison::Greater => ValueOp::Greater,
                // The planner never emits a `!=` access path.
                Comparison::NotEqual => {
                    return Err(QueryError::Unknown("access path for '!='".to_string()))
                }
            };
            let records = db
                .objects_by_value(&plan.class, !plan.exact, vop, literal)
                .map_err(|_| QueryError::Unknown(format!("class '{}'", plan.class)))?;
            ObjectSet::from_records(records)
        }
    };
    if let Some(nav) = &plan.navigate {
        set = apply_navigation(db, nav, &set)?;
    }
    for selection in plan.residual() {
        set = apply_selection(db, selection, set)?;
    }
    Ok(if plan.is_count { QueryOutcome::Count(set.len()) } else { QueryOutcome::Objects(set) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use seed_core::Database;
    use seed_schema::figure3_schema;

    fn sample() -> Database {
        let mut db = Database::new(figure3_schema());
        let alarms = db.create_object("OutputData", "Alarms").unwrap();
        let process = db.create_object("InputData", "ProcessData").unwrap();
        let handler = db.create_object("Action", "AlarmHandler").unwrap();
        let display = db.create_object("Action", "Display").unwrap();
        db.create_relationship("Write", &[("to", alarms), ("by", handler)]).unwrap();
        db.create_relationship("Read", &[("from", process), ("by", handler)]).unwrap();
        db.create_relationship("Read", &[("from", process), ("by", display)]).unwrap();
        let text = db.create_dependent(alarms, "Text", seed_core::Value::Undefined).unwrap();
        db.create_dependent(text, "Selector", seed_core::Value::string("Representation")).unwrap();
        db.create_dependent(text, "Body", seed_core::Value::Undefined).unwrap();
        db
    }

    fn run(db: &Database, q: &str) -> QueryOutcome {
        execute(db, &parse(q).unwrap()).unwrap()
    }

    #[test]
    fn class_extent_with_and_without_specializations() {
        let db = sample();
        assert_eq!(run(&db, "count Thing").count(), 4);
        assert_eq!(run(&db, "count Data").count(), 2);
        assert_eq!(run(&db, "count exactly Data").count(), 0);
        assert_eq!(run(&db, "count Action").count(), 2);
    }

    #[test]
    fn selections_compose_conjunctively() {
        let db = sample();
        let q = r#"find Data where name prefix "Alarm" and related Write.to"#;
        assert_eq!(run(&db, q).names(), vec!["Alarms"]);
        let q = r#"find Data where name prefix "Proc" and related Write.to"#;
        assert_eq!(run(&db, q).count(), 0);
    }

    #[test]
    fn value_comparisons_skip_undefined() {
        let db = sample();
        assert_eq!(
            run(&db, r#"find Data.Text.Selector where value = "Representation""#).count(),
            1
        );
        assert_eq!(run(&db, r#"find Data.Text.Body where value = "Representation""#).count(), 0);
        assert_eq!(run(&db, r#"find Data.Text.Selector where value != "Other""#).count(), 1);
        // Undefined value (Body) does not even match a != comparison: it matches nothing.
        assert_eq!(run(&db, r#"find Data.Text.Body where value != "Other""#).count(), 0);
        assert_eq!(run(&db, r#"find Data.Text.Selector where value > "Aaa""#).count(), 1);
    }

    #[test]
    fn integer_comparisons() {
        let mut db = sample();
        let alarms = db.object_by_name("Alarms").unwrap().id;
        let handler = db.object_by_name("AlarmHandler").unwrap().id;
        let rels = db.relationships(alarms);
        let write = rels.iter().find(|r| r.record.bound("by") == Some(handler)).unwrap().record.id;
        db.set_relationship_attribute(write, "NumberOfWrites", seed_core::Value::Integer(2))
            .unwrap();
        // Comparison helpers directly.
        assert!(compare_value(&seed_core::Value::Integer(2), Comparison::Less, "5"));
        assert!(compare_value(&seed_core::Value::Integer(7), Comparison::Greater, "5"));
        assert!(!compare_value(&seed_core::Value::Undefined, Comparison::Equal, "5"));
        assert!(compare_value(&seed_core::Value::Integer(5), Comparison::NotEqual, "4"));
    }

    #[test]
    fn navigation_intersects_with_the_class() {
        let db = sample();
        let readers = run(&db, r#"find Action navigate Read.by from "ProcessData""#);
        assert_eq!(readers.names(), vec!["AlarmHandler", "Display"]);
        // Navigating to a class that does not contain the targets gives the empty set.
        let none = run(&db, r#"find Data navigate Read.by from "ProcessData""#);
        assert_eq!(none.count(), 0);
        // Access generalizes Read and Write.
        let all = run(&db, r#"find Action navigate Access.by from "ProcessData""#);
        assert_eq!(all.count(), 2);
    }

    #[test]
    fn incomplete_selection_uses_completeness_analysis() {
        let db = sample();
        // Display reads something, AlarmHandler reads and writes: both satisfy Access-by.
        // The incomplete Data objects are those lacking dependent minimums / covering moves —
        // in Figure 3, OutputData 'Alarms' is written (ok) and InputData 'ProcessData' is read
        // (ok), so the `incomplete` filter on Action returns nothing.
        let q = run(&db, "find Action where incomplete");
        assert_eq!(q.count(), 0);
        // A freshly created Action with no Access relationship is incomplete.
        let mut db = db;
        db.create_object("Action", "Idle").unwrap();
        let q = run(&db, "find Action where incomplete");
        assert_eq!(q.names(), vec!["Idle"]);
    }

    #[test]
    fn unknown_names_error() {
        let db = sample();
        assert!(execute(&db, &parse("find Ghost").unwrap()).is_err());
        assert!(execute(&db, &parse(r#"find Action navigate Access.by from "Ghost""#).unwrap())
            .is_err());
        assert!(execute(
            &db,
            &parse(r#"find Action navigate Access.ghost from "Alarms""#).unwrap()
        )
        .is_err());
        assert!(execute(&db, &parse("find Data where related Ghost.to").unwrap()).is_err());
    }

    #[test]
    fn outcome_accessors() {
        let db = sample();
        let objects = run(&db, "find Data");
        assert!(objects.objects().is_some());
        assert!(objects.plan().is_none());
        assert_eq!(objects.count(), objects.names().len());
        let count = run(&db, "count Data");
        assert!(count.objects().is_none());
        assert!(count.names().is_empty());
        assert_eq!(count.count(), 2);
        let explained = run(&db, "explain find Data");
        assert!(explained.plan().is_some());
        assert!(explained.objects().is_none());
        assert_eq!(explained.count(), 0);
        assert!(explained.names().is_empty());
    }

    #[test]
    fn indexed_execution_agrees_with_the_scan_fallback() {
        let db = sample();
        for q in [
            "find Thing",
            "count Data",
            "count exactly Data",
            r#"find Thing where name = "Alarms""#,
            r#"find Data where name prefix "Alarm""#,
            r#"find Data.Text.Selector where value = "Representation""#,
            r#"find Data.Text.Selector where value != "Other""#,
            r#"find Data.Text.Selector where value > "Aaa""#,
            r#"find Data.Text.Selector where value < "Zzz""#,
            r#"find Data where name prefix "Alarm" and related Write.to"#,
            r#"find Action navigate Read.by from "ProcessData""#,
            "find Action where incomplete",
        ] {
            let query = parse(q).unwrap();
            let indexed = execute(&db, &query).unwrap();
            let scanned = execute_scan(&db, &query).unwrap();
            assert_eq!(indexed.names(), scanned.names(), "{q}");
            assert_eq!(indexed.count(), scanned.count(), "{q}");
        }
        // Both paths report the same errors.
        for q in ["find Ghost", r#"find Action navigate Ghost.by from "Alarms""#] {
            let query = parse(q).unwrap();
            assert!(execute(&db, &query).is_err(), "{q}");
            assert!(execute_scan(&db, &query).is_err(), "{q}");
        }
    }

    #[test]
    fn names_are_sorted_regardless_of_creation_and_id_order() {
        // Created in reverse alphabetical order, so id order != name order.
        let mut db = Database::new(seed_schema::figure3_schema());
        for name in ["Zeta", "Mu", "Alpha"] {
            db.create_object("Data", name).unwrap();
        }
        // Both execution paths return sorted names.
        for exec_fn in [execute, execute_scan] {
            let outcome = exec_fn(&db, &parse("find Data").unwrap()).unwrap();
            assert_eq!(outcome.names(), vec!["Alpha", "Mu", "Zeta"]);
            let outcome =
                exec_fn(&db, &parse(r#"find Data where name prefix """#).unwrap()).unwrap();
            assert_eq!(outcome.names(), vec!["Alpha", "Mu", "Zeta"]);
        }
        // The database-level prefix scan is deterministic (name order) too.
        let names: Vec<String> =
            db.objects_with_name_prefix("").iter().map(|o| o.name.to_string()).collect();
        assert_eq!(names, vec!["Alpha", "Mu", "Zeta"]);
    }

    #[test]
    fn every_query_form_explains_its_access_path() {
        let mut db = sample();
        // Widen the Selector extent so the index paths are genuinely cheaper than the scan.
        for i in 0..8 {
            let d = db.create_object("InputData", &format!("Bulk{i}")).unwrap();
            let t = db.create_dependent(d, "Text", seed_core::Value::Undefined).unwrap();
            db.create_dependent(t, "Selector", seed_core::Value::string(format!("V{i}"))).unwrap();
        }
        let expectations = [
            ("explain find Data", "scan extent"),
            ("explain find exactly Data", "scan extent"),
            (r#"explain find Thing where name = "Alarms""#, "probe name index"),
            (r#"explain find Data where name prefix "Alarm""#, "range scan name index"),
            (
                r#"explain find Data.Text.Selector where value = "Representation""#,
                "probe value index",
            ),
            (r#"explain find Data.Text.Selector where value > "V3""#, "range scan value index"),
            (r#"explain find Data.Text.Selector where value != "Aaa""#, "scan extent"),
            (r#"explain find Action navigate Access.by from "Alarms""#, "join    navigate"),
            ("explain find Data where related Write.to", "filter  related Write.to"),
            ("explain find Action where incomplete", "filter  incomplete"),
            ("explain count Data", "output  count"),
        ];
        for (q, needle) in expectations {
            let outcome = run(&db, q);
            let plan = outcome.plan().unwrap_or_else(|| panic!("{q} returned no plan"));
            assert!(plan.contains(needle), "{q}\nexpected {needle:?} in:\n{plan}");
        }
    }
}
