//! E6 — retrieval by name (the prototype's primary access path), name-prefix scans and query
//! execution, swept over database size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn retrieval_by_name(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6_retrieval_by_name");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for size in [100usize, 1000, 5000] {
        let db = seed_bench::populated_database(size);
        group.bench_with_input(BenchmarkId::from_parameter(size), &db, |b, db| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 997) % size;
                db.object_by_name(&format!("Data{i:05}")).unwrap().id
            })
        });
    }
    group.finish();
}

fn prefix_and_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6_prefix_and_query");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let db = seed_bench::populated_database(2000);
    group.bench_function("prefix_scan", |b| b.iter(|| db.objects_with_name_prefix("Data01").len()));
    group.bench_function("query_count_class", |b| {
        b.iter(|| seed_query::run(&db, "count Data").unwrap().count())
    });
    group.bench_function("query_navigate", |b| {
        b.iter(|| {
            seed_query::run(&db, r#"find Action navigate Access.by from "Data00042""#)
                .unwrap()
                .count()
        })
    });
    group.finish();
}

criterion_group!(benches, retrieval_by_name, prefix_and_query);
criterion_main!(benches);
