//! Whole-schema validation.
//!
//! The schema construction API already rejects local mistakes (duplicate names, unknown
//! references, generalization cycles).  [`validate_schema`] performs the global checks that can
//! only be decided once the schema is complete, returning every violation found rather than
//! stopping at the first.

use std::collections::HashSet;
use std::fmt;

use crate::domain::Domain;
use crate::schema::Schema;

/// A problem found in a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaViolation {
    /// A covering class has no subclasses, so the covering condition can never be met.
    CoveringWithoutSubclasses { class: String },
    /// A covering association has no sub-associations.
    CoveringWithoutSubassociations { association: String },
    /// A class both carries a value domain and owns dependent classes; the paper's model keeps
    /// values in leaf classes only.
    ValueClassWithDependents { class: String },
    /// An ACYCLIC association is not binary, so the acyclicity check is not well defined.
    AcyclicNonBinary { association: String },
    /// An ACYCLIC association whose two roles are typed against unrelated classes cannot form
    /// cycles by construction; the constraint is almost certainly a mistake.
    AcyclicOverUnrelatedClasses { association: String },
    /// An association has fewer than two roles.
    DegenerateAssociation { association: String },
    /// Two roles of the same association have the same name.
    DuplicateRoleNames { association: String, role: String },
    /// Two relationship attributes of the same association have the same name.
    DuplicateAttributeNames { association: String, attribute: String },
    /// An enumeration domain has no literals (no value could ever be stored).
    EmptyEnumeration { class_or_attribute: String },
    /// A specialization's owner differs from its superclass's owner; the composition position of
    /// an object would change when it is re-classified, which SEED does not support.
    SpecializationChangesOwner { class: String },
}

impl fmt::Display for SchemaViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaViolation::CoveringWithoutSubclasses { class } => {
                write!(f, "class '{class}' is covering but has no subclasses")
            }
            SchemaViolation::CoveringWithoutSubassociations { association } => {
                write!(f, "association '{association}' is covering but has no sub-associations")
            }
            SchemaViolation::ValueClassWithDependents { class } => {
                write!(f, "class '{class}' has both a value domain and dependent classes")
            }
            SchemaViolation::AcyclicNonBinary { association } => {
                write!(f, "ACYCLIC association '{association}' is not binary")
            }
            SchemaViolation::AcyclicOverUnrelatedClasses { association } => {
                write!(f, "ACYCLIC association '{association}' relates classes that never overlap")
            }
            SchemaViolation::DegenerateAssociation { association } => {
                write!(f, "association '{association}' has fewer than two roles")
            }
            SchemaViolation::DuplicateRoleNames { association, role } => {
                write!(f, "association '{association}' declares role '{role}' more than once")
            }
            SchemaViolation::DuplicateAttributeNames { association, attribute } => {
                write!(
                    f,
                    "association '{association}' declares attribute '{attribute}' more than once"
                )
            }
            SchemaViolation::EmptyEnumeration { class_or_attribute } => {
                write!(f, "enumeration domain of '{class_or_attribute}' has no literals")
            }
            SchemaViolation::SpecializationChangesOwner { class } => {
                write!(f, "specialized class '{class}' has a different owner than its superclass")
            }
        }
    }
}

/// Validates a schema, returning all violations found (empty = valid).
pub fn validate_schema(schema: &Schema) -> Vec<SchemaViolation> {
    let mut violations = Vec::new();

    for class in schema.classes() {
        if class.covering && schema.subclasses(class.id).is_empty() {
            violations
                .push(SchemaViolation::CoveringWithoutSubclasses { class: class.name.clone() });
        }
        if class.domain.is_some() && !schema.dependent_classes(class.id).is_empty() {
            violations
                .push(SchemaViolation::ValueClassWithDependents { class: class.name.clone() });
        }
        if let Some(Domain::Enumeration(lits)) = &class.domain {
            if lits.is_empty() {
                violations.push(SchemaViolation::EmptyEnumeration {
                    class_or_attribute: class.name.clone(),
                });
            }
        }
        if let Some(sup) = class.superclass {
            let sup_owner = schema.class(sup).map(|c| c.owner).unwrap_or(None);
            if class.owner != sup_owner {
                violations.push(SchemaViolation::SpecializationChangesOwner {
                    class: class.name.clone(),
                });
            }
        }
    }

    for assoc in schema.associations() {
        if assoc.roles.len() < 2 {
            violations
                .push(SchemaViolation::DegenerateAssociation { association: assoc.name.clone() });
        }
        let mut seen_roles = HashSet::new();
        for role in &assoc.roles {
            if !seen_roles.insert(role.name.clone()) {
                violations.push(SchemaViolation::DuplicateRoleNames {
                    association: assoc.name.clone(),
                    role: role.name.clone(),
                });
            }
        }
        let mut seen_attrs = HashSet::new();
        for attr in &assoc.attributes {
            if !seen_attrs.insert(attr.name.clone()) {
                violations.push(SchemaViolation::DuplicateAttributeNames {
                    association: assoc.name.clone(),
                    attribute: attr.name.clone(),
                });
            }
            if let Domain::Enumeration(lits) = &attr.domain {
                if lits.is_empty() {
                    violations.push(SchemaViolation::EmptyEnumeration {
                        class_or_attribute: format!("{}.{}", assoc.name, attr.name),
                    });
                }
            }
        }
        if assoc.covering && schema.subassociations(assoc.id).is_empty() {
            violations.push(SchemaViolation::CoveringWithoutSubassociations {
                association: assoc.name.clone(),
            });
        }
        if assoc.acyclic {
            if assoc.roles.len() != 2 {
                violations
                    .push(SchemaViolation::AcyclicNonBinary { association: assoc.name.clone() });
            } else {
                let a = assoc.roles[0].class;
                let b = assoc.roles[1].class;
                let related = schema.class_is_a(a, b)
                    || schema.class_is_a(b, a)
                    || schema
                        .class_descendants(a)
                        .iter()
                        .any(|&d| schema.class_is_a(d, b) || schema.class_is_a(b, d));
                if !related {
                    violations.push(SchemaViolation::AcyclicOverUnrelatedClasses {
                        association: assoc.name.clone(),
                    });
                }
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{figure2_schema, figure3_schema, SchemaBuilder};
    use crate::cardinality::Cardinality;
    use crate::domain::Domain;

    #[test]
    fn paper_schemas_are_valid() {
        assert_eq!(validate_schema(&figure2_schema()), Vec::new());
        assert_eq!(validate_schema(&figure3_schema()), Vec::new());
    }

    #[test]
    fn covering_without_subclasses_flagged() {
        let mut schema = Schema::new("T");
        let lonely = schema.add_class("Lonely").unwrap();
        schema.set_class_covering(lonely, true).unwrap();
        let v = validate_schema(&schema);
        assert!(v.iter().any(|x| matches!(x, SchemaViolation::CoveringWithoutSubclasses { .. })));
    }

    #[test]
    fn value_class_with_dependents_flagged() {
        let mut schema = Schema::new("T");
        let c = schema.add_class("Doc").unwrap();
        schema.set_class_domain(c, Some(Domain::String)).unwrap();
        schema.add_dependent_class(c, "Part", Cardinality::any(), None).unwrap();
        let v = validate_schema(&schema);
        assert!(v.iter().any(|x| matches!(x, SchemaViolation::ValueClassWithDependents { .. })));
    }

    #[test]
    fn acyclic_over_unrelated_classes_flagged() {
        let schema = SchemaBuilder::new("T")
            .class("A", |c| c)
            .class("B", |c| c)
            .association("Link", "x", "A", "0..*", "y", "B", "0..*", |a| a.acyclic())
            .build()
            .unwrap();
        let v = validate_schema(&schema);
        assert!(v.iter().any(|x| matches!(x, SchemaViolation::AcyclicOverUnrelatedClasses { .. })));
    }

    #[test]
    fn duplicate_role_names_flagged() {
        let mut schema = Schema::new("T");
        let a = schema.add_class("A").unwrap();
        schema
            .add_binary_association(
                "Self",
                ("part", a, Cardinality::any()),
                ("part", a, Cardinality::any()),
                false,
            )
            .unwrap();
        let v = validate_schema(&schema);
        assert!(v.iter().any(|x| matches!(x, SchemaViolation::DuplicateRoleNames { .. })));
    }

    #[test]
    fn empty_enumeration_flagged() {
        let mut schema = Schema::new("T");
        let c = schema.add_class("Status").unwrap();
        schema.set_class_domain(c, Some(Domain::Enumeration(vec![]))).unwrap();
        let v = validate_schema(&schema);
        assert!(v.iter().any(|x| matches!(x, SchemaViolation::EmptyEnumeration { .. })));
    }

    #[test]
    fn specialization_changing_owner_flagged() {
        let mut schema = Schema::new("T");
        let data = schema.add_class("Data").unwrap();
        let text = schema.add_dependent_class(data, "Text", Cardinality::any(), None).unwrap();
        let free = schema.add_class("FreeText").unwrap();
        schema.set_superclass(free, text).unwrap();
        let v = validate_schema(&schema);
        assert!(v.iter().any(|x| matches!(x, SchemaViolation::SpecializationChangesOwner { .. })));
    }

    #[test]
    fn violations_have_readable_messages() {
        let v = SchemaViolation::CoveringWithoutSubclasses { class: "Thing".into() };
        assert!(v.to_string().contains("Thing"));
        let v = SchemaViolation::AcyclicNonBinary { association: "Contained".into() };
        assert!(v.to_string().contains("Contained"));
    }
}
