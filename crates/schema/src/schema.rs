//! The [`Schema`] container: all classes, associations and their hierarchies.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::association::{Association, Role};
use crate::cardinality::Cardinality;
use crate::class::ObjectClass;
use crate::domain::Domain;
use crate::error::{SchemaError, SchemaResult};
use crate::ids::{AssociationId, ClassId};
use crate::procedure::AttachedProcedure;

/// A complete SEED schema.
///
/// The schema is the "specification grammar" of the paper: it defines what kinds of data may be
/// stored and which constraints apply.  Instances are managed by `seed-core`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    /// Schema name (e.g. `"Spec"`).
    pub name: String,
    classes: Vec<ObjectClass>,
    associations: Vec<Association>,
    class_by_name: HashMap<String, ClassId>,
    association_by_name: HashMap<String, AssociationId>,
}

impl Schema {
    /// Creates an empty schema with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            classes: Vec::new(),
            associations: Vec::new(),
            class_by_name: HashMap::new(),
            association_by_name: HashMap::new(),
        }
    }

    // ----- construction -------------------------------------------------------------------------

    /// Adds an independent (top-level) object class.
    pub fn add_class(&mut self, name: impl Into<String>) -> SchemaResult<ClassId> {
        self.add_class_full(name, None, Cardinality::any(), None)
    }

    /// Adds a dependent class owned by `owner` with the given occurrence cardinality.
    pub fn add_dependent_class(
        &mut self,
        owner: ClassId,
        local_name: &str,
        occurrence: Cardinality,
        domain: Option<Domain>,
    ) -> SchemaResult<ClassId> {
        let owner_name = self.class(owner)?.name.clone();
        let full = format!("{owner_name}.{local_name}");
        self.add_class_full(full, Some(owner), occurrence, domain)
    }

    /// Adds a class with every field spelled out.
    pub fn add_class_full(
        &mut self,
        name: impl Into<String>,
        owner: Option<ClassId>,
        occurrence: Cardinality,
        domain: Option<Domain>,
    ) -> SchemaResult<ClassId> {
        let name = name.into();
        if self.class_by_name.contains_key(&name) {
            return Err(SchemaError::DuplicateClass(name));
        }
        if let Some(o) = owner {
            self.class(o)?; // must exist
        }
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(ObjectClass {
            id,
            name: name.clone(),
            owner,
            occurrence,
            domain,
            superclass: None,
            covering: false,
            procedures: Vec::new(),
        });
        self.class_by_name.insert(name, id);
        Ok(id)
    }

    /// Adds a binary association between two classes.
    #[allow(clippy::too_many_arguments)]
    pub fn add_binary_association(
        &mut self,
        name: impl Into<String>,
        role_a: (&str, ClassId, Cardinality),
        role_b: (&str, ClassId, Cardinality),
        acyclic: bool,
    ) -> SchemaResult<AssociationId> {
        self.add_association(
            name,
            vec![Role::new(role_a.0, role_a.1, role_a.2), Role::new(role_b.0, role_b.1, role_b.2)],
            acyclic,
        )
    }

    /// Adds an association with arbitrary roles.
    pub fn add_association(
        &mut self,
        name: impl Into<String>,
        roles: Vec<Role>,
        acyclic: bool,
    ) -> SchemaResult<AssociationId> {
        let name = name.into();
        if self.association_by_name.contains_key(&name) {
            return Err(SchemaError::DuplicateAssociation(name));
        }
        for role in &roles {
            self.class(role.class)?;
        }
        let id = AssociationId(self.associations.len() as u32);
        self.associations.push(Association {
            id,
            name: name.clone(),
            roles,
            acyclic,
            superassociation: None,
            covering: false,
            procedures: Vec::new(),
            attributes: Vec::new(),
        });
        self.association_by_name.insert(name, id);
        Ok(id)
    }

    /// Adds a relationship attribute declaration to an association.
    pub fn add_relationship_attribute(
        &mut self,
        assoc: AssociationId,
        attribute: crate::association::RelationshipAttribute,
    ) -> SchemaResult<()> {
        self.association_mut(assoc)?.attributes.push(attribute);
        Ok(())
    }

    /// Declares `sub` to be a specialization of `superclass` (class generalization).
    pub fn set_superclass(&mut self, sub: ClassId, superclass: ClassId) -> SchemaResult<()> {
        self.class(superclass)?;
        // Reject cycles: `superclass` must not already have `sub` among its ancestors.
        let mut cursor = Some(superclass);
        while let Some(c) = cursor {
            if c == sub {
                return Err(SchemaError::GeneralizationCycle(self.class(sub)?.name.clone()));
            }
            cursor = self.class(c)?.superclass;
        }
        self.class_mut(sub)?.superclass = Some(superclass);
        Ok(())
    }

    /// Declares `sub` to be a specialization of `superassoc` (association generalization).
    pub fn set_superassociation(
        &mut self,
        sub: AssociationId,
        superassoc: AssociationId,
    ) -> SchemaResult<()> {
        self.association(superassoc)?;
        let mut cursor = Some(superassoc);
        while let Some(a) = cursor {
            if a == sub {
                return Err(SchemaError::GeneralizationCycle(self.association(sub)?.name.clone()));
            }
            cursor = self.association(a)?.superassociation;
        }
        self.association_mut(sub)?.superassociation = Some(superassoc);
        Ok(())
    }

    /// Sets (or clears) the value domain of a class.
    pub fn set_class_domain(&mut self, class: ClassId, domain: Option<Domain>) -> SchemaResult<()> {
        self.class_mut(class)?.domain = domain;
        Ok(())
    }

    /// Sets or clears the ACYCLIC structural constraint on an association.
    pub fn set_association_acyclic(
        &mut self,
        assoc: AssociationId,
        acyclic: bool,
    ) -> SchemaResult<()> {
        self.association_mut(assoc)?.acyclic = acyclic;
        Ok(())
    }

    /// Marks a class generalization as covering (completeness information).
    pub fn set_class_covering(&mut self, class: ClassId, covering: bool) -> SchemaResult<()> {
        self.class_mut(class)?.covering = covering;
        Ok(())
    }

    /// Marks an association generalization as covering (completeness information).
    pub fn set_association_covering(
        &mut self,
        assoc: AssociationId,
        covering: bool,
    ) -> SchemaResult<()> {
        self.association_mut(assoc)?.covering = covering;
        Ok(())
    }

    /// Attaches a procedure to a class.
    pub fn attach_class_procedure(
        &mut self,
        class: ClassId,
        procedure: AttachedProcedure,
    ) -> SchemaResult<()> {
        self.class_mut(class)?.procedures.push(procedure);
        Ok(())
    }

    /// Attaches a procedure to an association.
    pub fn attach_association_procedure(
        &mut self,
        assoc: AssociationId,
        procedure: AttachedProcedure,
    ) -> SchemaResult<()> {
        self.association_mut(assoc)?.procedures.push(procedure);
        Ok(())
    }

    // ----- lookups ------------------------------------------------------------------------------

    /// Looks up a class by id.
    pub fn class(&self, id: ClassId) -> SchemaResult<&ObjectClass> {
        self.classes.get(id.index()).ok_or_else(|| SchemaError::UnknownClass(id.to_string()))
    }

    fn class_mut(&mut self, id: ClassId) -> SchemaResult<&mut ObjectClass> {
        self.classes.get_mut(id.index()).ok_or_else(|| SchemaError::UnknownClass(id.to_string()))
    }

    /// Looks up a class by full path name.
    pub fn class_by_name(&self, name: &str) -> SchemaResult<&ObjectClass> {
        let id = self
            .class_by_name
            .get(name)
            .ok_or_else(|| SchemaError::UnknownClass(name.to_string()))?;
        self.class(*id)
    }

    /// Id of a class by name.
    pub fn class_id(&self, name: &str) -> SchemaResult<ClassId> {
        self.class_by_name
            .get(name)
            .copied()
            .ok_or_else(|| SchemaError::UnknownClass(name.to_string()))
    }

    /// Looks up an association by id.
    pub fn association(&self, id: AssociationId) -> SchemaResult<&Association> {
        self.associations
            .get(id.index())
            .ok_or_else(|| SchemaError::UnknownAssociation(id.to_string()))
    }

    fn association_mut(&mut self, id: AssociationId) -> SchemaResult<&mut Association> {
        self.associations
            .get_mut(id.index())
            .ok_or_else(|| SchemaError::UnknownAssociation(id.to_string()))
    }

    /// Looks up an association by name.
    pub fn association_by_name(&self, name: &str) -> SchemaResult<&Association> {
        let id = self
            .association_by_name
            .get(name)
            .ok_or_else(|| SchemaError::UnknownAssociation(name.to_string()))?;
        self.association(*id)
    }

    /// Id of an association by name.
    pub fn association_id(&self, name: &str) -> SchemaResult<AssociationId> {
        self.association_by_name
            .get(name)
            .copied()
            .ok_or_else(|| SchemaError::UnknownAssociation(name.to_string()))
    }

    /// All classes in declaration order.
    pub fn classes(&self) -> &[ObjectClass] {
        &self.classes
    }

    /// All associations in declaration order.
    pub fn associations(&self) -> &[Association] {
        &self.associations
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of associations.
    pub fn association_count(&self) -> usize {
        self.associations.len()
    }

    // ----- structural queries --------------------------------------------------------------------

    /// Direct dependent classes of `owner` (composition children).
    pub fn dependent_classes(&self, owner: ClassId) -> Vec<&ObjectClass> {
        self.classes.iter().filter(|c| c.owner == Some(owner)).collect()
    }

    /// Independent (top-level) classes.
    pub fn independent_classes(&self) -> Vec<&ObjectClass> {
        self.classes.iter().filter(|c| c.owner.is_none()).collect()
    }

    /// Direct specializations (subclasses) of `class`.
    pub fn subclasses(&self, class: ClassId) -> Vec<&ObjectClass> {
        self.classes.iter().filter(|c| c.superclass == Some(class)).collect()
    }

    /// Direct specializations of an association.
    pub fn subassociations(&self, assoc: AssociationId) -> Vec<&Association> {
        self.associations.iter().filter(|a| a.superassociation == Some(assoc)).collect()
    }

    /// Generalization chain of a class from itself up to the root (inclusive of both).
    pub fn class_ancestors(&self, class: ClassId) -> Vec<ClassId> {
        let mut out = vec![class];
        let mut cursor = self.classes.get(class.index()).and_then(|c| c.superclass);
        while let Some(c) = cursor {
            out.push(c);
            cursor = self.classes.get(c.index()).and_then(|x| x.superclass);
        }
        out
    }

    /// Generalization chain of an association from itself up to the root.
    pub fn association_ancestors(&self, assoc: AssociationId) -> Vec<AssociationId> {
        let mut out = vec![assoc];
        let mut cursor = self.associations.get(assoc.index()).and_then(|a| a.superassociation);
        while let Some(a) = cursor {
            out.push(a);
            cursor = self.associations.get(a.index()).and_then(|x| x.superassociation);
        }
        out
    }

    /// Whether `sub` equals `ancestor` or specializes it (transitively).
    pub fn class_is_a(&self, sub: ClassId, ancestor: ClassId) -> bool {
        self.class_ancestors(sub).contains(&ancestor)
    }

    /// Whether `sub` equals `ancestor` or specializes it (transitively), for associations.
    pub fn association_is_a(&self, sub: AssociationId, ancestor: AssociationId) -> bool {
        self.association_ancestors(sub).contains(&ancestor)
    }

    /// All (transitive) specializations of a class, excluding the class itself.
    pub fn class_descendants(&self, class: ClassId) -> Vec<ClassId> {
        self.classes
            .iter()
            .map(|c| c.id)
            .filter(|&c| c != class && self.class_is_a(c, class))
            .collect()
    }

    /// All (transitive) specializations of an association, excluding the association itself.
    pub fn association_descendants(&self, assoc: AssociationId) -> Vec<AssociationId> {
        self.associations
            .iter()
            .map(|a| a.id)
            .filter(|&a| a != assoc && self.association_is_a(a, assoc))
            .collect()
    }

    /// Associations that have a role accepting instances of `class` (taking the class
    /// generalization hierarchy into account: a role typed `Thing` accepts a `Data` object).
    pub fn associations_involving(&self, class: ClassId) -> Vec<(&Association, &Role)> {
        let mut out = Vec::new();
        for assoc in &self.associations {
            for role in &assoc.roles {
                if self.class_is_a(class, role.class) {
                    out.push((assoc, role));
                }
            }
        }
        out
    }

    /// Roles whose **minimum** cardinality applies to objects of `class`, i.e. the completeness
    /// obligations of the class.  This also collects obligations inherited from generalized
    /// classes (a `Data` object inherits `Access by`-style obligations declared on `Thing`).
    pub fn completeness_obligations(&self, class: ClassId) -> Vec<(&Association, &Role)> {
        self.associations_involving(class)
            .into_iter()
            .filter(|(_, role)| role.cardinality.min > 0)
            .collect()
    }

    /// Whether `count` participations of an instance of `role.class` are allowed by the role's
    /// maximum cardinality.  Sub-associations count towards the generalized association's
    /// maximum as well; callers aggregate counts accordingly.
    pub fn role_allows(&self, role: &Role, count: u32) -> bool {
        role.cardinality.allows(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_class_schema() -> (Schema, ClassId, ClassId) {
        let mut s = Schema::new("Test");
        let data = s.add_class("Data").unwrap();
        let action = s.add_class("Action").unwrap();
        (s, data, action)
    }

    #[test]
    fn classes_are_registered_and_looked_up() {
        let (s, data, action) = two_class_schema();
        assert_eq!(s.class_count(), 2);
        assert_eq!(s.class_id("Data").unwrap(), data);
        assert_eq!(s.class_by_name("Action").unwrap().id, action);
        assert!(s.class_by_name("Ghost").is_err());
        assert_eq!(s.independent_classes().len(), 2);
    }

    #[test]
    fn duplicate_class_rejected() {
        let (mut s, _, _) = two_class_schema();
        assert!(matches!(s.add_class("Data"), Err(SchemaError::DuplicateClass(_))));
    }

    #[test]
    fn dependent_classes_get_path_names() {
        let (mut s, data, _) = two_class_schema();
        let text = s
            .add_dependent_class(data, "Text", Cardinality::bounded(0, 16).unwrap(), None)
            .unwrap();
        let body = s.add_dependent_class(text, "Body", Cardinality::exactly_one(), None).unwrap();
        assert_eq!(s.class(text).unwrap().name, "Data.Text");
        assert_eq!(s.class(body).unwrap().name, "Data.Text.Body");
        assert_eq!(s.class(body).unwrap().local_name(), "Body");
        assert_eq!(s.dependent_classes(data).len(), 1);
        assert_eq!(s.dependent_classes(text).len(), 1);
        assert!(s.class(text).unwrap().is_dependent());
    }

    #[test]
    fn associations_register_roles() {
        let (mut s, data, action) = two_class_schema();
        let read = s
            .add_binary_association(
                "Read",
                ("from", data, Cardinality::at_least_one()),
                ("by", action, Cardinality::any()),
                false,
            )
            .unwrap();
        assert_eq!(s.association_count(), 1);
        let a = s.association(read).unwrap();
        assert_eq!(a.role("from").unwrap().class, data);
        assert!(s.association_by_name("Write").is_err());
        assert!(matches!(
            s.add_binary_association(
                "Read",
                ("from", data, Cardinality::any()),
                ("by", action, Cardinality::any()),
                false
            ),
            Err(SchemaError::DuplicateAssociation(_))
        ));
    }

    #[test]
    fn association_with_unknown_class_rejected() {
        let (mut s, data, _) = two_class_schema();
        let err = s.add_binary_association(
            "Broken",
            ("from", data, Cardinality::any()),
            ("by", ClassId(99), Cardinality::any()),
            false,
        );
        assert!(err.is_err());
    }

    #[test]
    fn generalization_hierarchy_queries() {
        let (mut s, data, action) = two_class_schema();
        let thing = s.add_class("Thing").unwrap();
        let output = s.add_class("OutputData").unwrap();
        s.set_superclass(data, thing).unwrap();
        s.set_superclass(action, thing).unwrap();
        s.set_superclass(output, data).unwrap();

        assert!(s.class_is_a(output, data));
        assert!(s.class_is_a(output, thing));
        assert!(s.class_is_a(data, thing));
        assert!(!s.class_is_a(thing, data));
        assert_eq!(s.class_ancestors(output), vec![output, data, thing]);
        let mut desc = s.class_descendants(thing);
        desc.sort();
        assert_eq!(desc, vec![data, action, output]);
        assert_eq!(s.subclasses(data).len(), 1);
    }

    #[test]
    fn generalization_cycles_rejected() {
        let (mut s, data, _) = two_class_schema();
        let thing = s.add_class("Thing").unwrap();
        s.set_superclass(data, thing).unwrap();
        assert!(matches!(s.set_superclass(thing, data), Err(SchemaError::GeneralizationCycle(_))));
        assert!(matches!(s.set_superclass(data, data), Err(SchemaError::GeneralizationCycle(_))));
    }

    #[test]
    fn association_generalization() {
        let (mut s, data, action) = two_class_schema();
        let access = s
            .add_binary_association(
                "Access",
                ("from", data, Cardinality::any()),
                ("by", action, Cardinality::at_least_one()),
                false,
            )
            .unwrap();
        let read = s
            .add_binary_association(
                "Read",
                ("from", data, Cardinality::any()),
                ("by", action, Cardinality::any()),
                false,
            )
            .unwrap();
        let write = s
            .add_binary_association(
                "Write",
                ("from", data, Cardinality::any()),
                ("by", action, Cardinality::any()),
                false,
            )
            .unwrap();
        s.set_superassociation(read, access).unwrap();
        s.set_superassociation(write, access).unwrap();
        s.set_association_covering(access, true).unwrap();

        assert!(s.association_is_a(read, access));
        assert!(s.association_is_a(write, access));
        assert!(!s.association_is_a(access, read));
        assert_eq!(s.association_ancestors(read), vec![read, access]);
        assert_eq!(s.subassociations(access).len(), 2);
        assert!(s.association(access).unwrap().covering);
        assert!(matches!(
            s.set_superassociation(access, read),
            Err(SchemaError::GeneralizationCycle(_))
        ));
    }

    #[test]
    fn associations_involving_respects_is_a() {
        let (mut s, data, action) = two_class_schema();
        let thing = s.add_class("Thing").unwrap();
        s.set_superclass(data, thing).unwrap();
        s.set_superclass(action, thing).unwrap();
        // Association typed against Thing must be visible from Data.
        s.add_binary_association(
            "Relates",
            ("a", thing, Cardinality::any()),
            ("b", thing, Cardinality::at_least_one()),
            false,
        )
        .unwrap();
        let involving = s.associations_involving(data);
        assert_eq!(involving.len(), 2, "Data fills both Thing-typed roles");
        let obligations = s.completeness_obligations(data);
        assert_eq!(obligations.len(), 1);
        assert_eq!(obligations[0].1.name, "b");
    }

    #[test]
    fn attach_procedures() {
        let (mut s, data, action) = two_class_schema();
        s.attach_class_procedure(data, AttachedProcedure::ValueNotEmpty).unwrap();
        let read = s
            .add_binary_association(
                "Read",
                ("from", data, Cardinality::any()),
                ("by", action, Cardinality::any()),
                false,
            )
            .unwrap();
        s.attach_association_procedure(read, AttachedProcedure::Named("audit".into())).unwrap();
        assert_eq!(s.class(data).unwrap().procedures.len(), 1);
        assert_eq!(s.association(read).unwrap().procedures.len(), 1);
    }
}
