//! Messages exchanged between clients and the central server.
//!
//! Objects are addressed by their hierarchical names, not by internal ids — a client's local
//! copy and the server's central database do not share id spaces.

use seed_core::{ObjectRecord, RelationshipRecord, Value, VersionId};

/// Identifier the server assigns to a connected client.
pub type ClientId = u64;

/// An update a client made to its local copy and wants applied centrally.
#[derive(Debug, Clone, PartialEq)]
pub enum Update {
    /// Create an independent object.
    CreateObject {
        /// Class name.
        class: String,
        /// Object name.
        name: String,
    },
    /// Create a dependent object under a (checked-out or newly created) parent.
    CreateDependent {
        /// Parent object name.
        parent: String,
        /// Local name of the dependent class (e.g. `"Text"`).
        class_local: String,
        /// Initial value.
        value: Value,
    },
    /// Create a dependent object with an explicit (un-indexed) name segment — the remote
    /// counterpart of [`seed_core::Database::create_dependent_named`] with a plain segment.
    CreateDependentNamed {
        /// Parent object name.
        parent: String,
        /// Local name of the dependent class (e.g. `"Body"`).
        class_local: String,
        /// The plain segment name to use (usually equal to `class_local`).
        name: String,
        /// Initial value.
        value: Value,
    },
    /// Set the value of an object.
    SetValue {
        /// Object name.
        object: String,
        /// New value.
        value: Value,
    },
    /// Re-classify an object within its generalization hierarchy.
    Reclassify {
        /// Object name.
        object: String,
        /// Target class name.
        new_class: String,
    },
    /// Create a relationship; bindings refer to objects by name.
    CreateRelationship {
        /// Association name.
        association: String,
        /// `(role, object name)` bindings.
        bindings: Vec<(String, String)>,
    },
    /// Re-classify an existing relationship within its association hierarchy.  The relationship
    /// is addressed structurally — by its current association and its `(role, object name)`
    /// bindings — because relationships have no names and clients do not share the server's id
    /// space.
    ReclassifyRelationship {
        /// Current association name.
        association: String,
        /// `(role, object name)` bindings identifying the relationship.
        bindings: Vec<(String, String)>,
        /// Target association name.
        new_association: String,
    },
    /// Delete an object (logically).
    DeleteObject {
        /// Object name.
        object: String,
    },
}

impl Update {
    /// The names of existing objects this update modifies (used for lock validation).
    /// Creations return the parent (for dependents) or nothing (new independent objects are not
    /// lockable yet).
    pub fn touched_objects(&self) -> Vec<&str> {
        match self {
            Update::CreateObject { .. } => vec![],
            Update::CreateDependent { parent, .. }
            | Update::CreateDependentNamed { parent, .. } => vec![parent.as_str()],
            Update::SetValue { object, .. }
            | Update::Reclassify { object, .. }
            | Update::DeleteObject { object } => vec![object.as_str()],
            Update::CreateRelationship { bindings, .. }
            | Update::ReclassifyRelationship { bindings, .. } => {
                bindings.iter().map(|(_, o)| o.as_str()).collect()
            }
        }
    }
}

/// The data handed to a client at check-out time: copies of the requested objects (with their
/// dependent objects) and of the relationships among them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckoutSet {
    /// Copies of the checked-out objects (roots and their dependents).
    pub objects: Vec<ObjectRecord>,
    /// Copies of the relationships among the checked-out objects.
    pub relationships: Vec<RelationshipRecord>,
}

impl CheckoutSet {
    /// Names of the copied objects.
    pub fn object_names(&self) -> Vec<String> {
        self.objects.iter().map(|o| o.name.to_string()).collect()
    }

    /// Number of copied objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the checkout is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

/// The answer to a [`Request::Query`]: the matching names (sorted), the cardinality, and — for
/// `explain` queries — the rendered physical plan instead of a result set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryAnswer {
    /// Names of the matching objects (empty for `count` and `explain` queries).
    pub names: Vec<String>,
    /// Number of matching objects (zero for `explain` queries).
    pub count: usize,
    /// The rendered plan, when the query was an `explain`.
    pub plan: Option<String>,
}

/// Which side of WAL-shipping replication a node plays.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReplicationRole {
    /// The writable node whose WAL is shipped to subscribers.
    #[default]
    Primary,
    /// A read-only node applying shipped log batches; writes are redirected to the primary.
    Replica,
}

/// Replication progress, as surfaced in [`PersistenceStatus`] (the `Persistence` request is the
/// operational window into both sides of the stream — see `docs/OPERATIONS.md`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplicationStatus {
    /// This node's role.
    pub role: ReplicationRole,
    /// Last primary LSN whose effects are durable on this node.  On the primary this equals
    /// [`ReplicationStatus::primary_lsn`] (it is always caught up with itself).
    pub applied_lsn: u64,
    /// The primary's durable end of log, as last observed.
    pub primary_lsn: u64,
    /// Connected replication subscribers (primary side; 0 on replicas).
    pub subscribers: u32,
    /// The lowest LSN any connected subscriber has acknowledged (primary side; 0 when there
    /// are no subscribers).
    pub min_acked_lsn: u64,
    /// The LSN of the snapshot the read surface is currently serving (on both roles) — the
    /// operator's staleness observable: reads reflect the database as of this LSN.
    pub snapshot_lsn: u64,
}

impl ReplicationStatus {
    /// Replication lag in log records: how far this node's applied state trails the primary's
    /// durable end of log (always 0 on the primary).
    pub fn lag(&self) -> u64 {
        self.primary_lsn.saturating_sub(self.applied_lsn)
    }
}

/// The durability state of the central database, as reported over the protocol.  After a
/// server restart, the counts tell a client exactly what restart recovery reconstructed from
/// the write-through records and the storage WAL.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PersistenceStatus {
    /// Whether the central database writes mutations through to durable storage.
    pub durable: bool,
    /// Directory of the durable storage, when durable.
    pub path: Option<String>,
    /// Bytes currently in the storage WAL (recovery replay work is proportional to this).
    pub wal_bytes: u64,
    /// Live, visible objects in the central database.
    pub objects: usize,
    /// Live, visible relationships in the central database.
    pub relationships: usize,
    /// Stored versions.
    pub versions: usize,
    /// Replication progress and the serving snapshot's LSN.  Always `Some` on a server (both
    /// roles report the snapshot LSN so operators can observe staleness); `None` only in
    /// statuses decoded from peers speaking a protocol version without the replication block.
    pub replication: Option<ReplicationStatus>,
}

/// The answer to a [`Request::Health`] probe: liveness is implied by any reply at all;
/// readiness means the node can currently do its job — a primary's WAL accepts writes, a
/// replica is within its lag budget.  See `docs/OBSERVABILITY.md` for probe semantics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthStatus {
    /// Whether the node is ready to serve (primary: WAL writable; replica: within lag budget).
    pub ready: bool,
    /// This node's replication role.
    pub role: ReplicationRole,
    /// Replication lag in log records (always 0 on the primary).
    pub lag: u64,
    /// The lag budget the readiness verdict was computed against (records).
    pub lag_budget: u64,
    /// Human-readable reason, `"ok"` when ready.
    pub detail: String,
}

/// Summary of one class, as shipped to remote clients ([`SchemaSummary`]).  Ids are the raw
/// `ClassId` numbers of the server's schema; the vector index in [`SchemaSummary::classes`]
/// equals the id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassSummary {
    /// Class name (local name for dependent classes).
    pub name: String,
    /// Owning class id, for dependent classes.
    pub owner: Option<u32>,
    /// Superclass id in the generalization hierarchy.
    pub superclass: Option<u32>,
    /// Maximum occurrence of dependents per parent (`None` = unbounded).  `Some(1)` means
    /// dependents of this class get plain (un-indexed) name segments.
    pub occurrence_max: Option<u32>,
}

/// Summary of one association for remote clients; the vector index in
/// [`SchemaSummary::associations`] equals the `AssociationId` number.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AssociationSummary {
    /// Association name.
    pub name: String,
    /// Superassociation id in the generalization hierarchy.
    pub superassociation: Option<u32>,
    /// Role names, in declaration order.
    pub roles: Vec<String>,
}

/// A structural summary of the server's current schema — enough for a remote client to
/// interpret the class ids inside [`seed_core::ObjectRecord`]s, resolve dependent classes and
/// walk association hierarchies without holding a full [`seed_schema::Schema`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchemaSummary {
    /// Schema name.
    pub name: String,
    /// Classes, indexed by class id.
    pub classes: Vec<ClassSummary>,
    /// Associations, indexed by association id.
    pub associations: Vec<AssociationSummary>,
}

impl SchemaSummary {
    /// The name of the class with the given id.
    pub fn class_name(&self, id: u32) -> Option<&str> {
        self.classes.get(id as usize).map(|c| c.name.as_str())
    }

    /// The id of the top-level (un-owned) class with the given name.
    pub fn class_id(&self, name: &str) -> Option<u32> {
        self.classes.iter().position(|c| c.owner.is_none() && c.name == name).map(|i| i as u32)
    }

    /// Resolves a dependent class by its local name in the context of `parent_class`, walking
    /// the parent's superclass chain like the server does.
    pub fn dependent_class(&self, parent_class: u32, local: &str) -> Option<u32> {
        let mut current = Some(parent_class);
        while let Some(owner) = current {
            if let Some(found) =
                self.classes.iter().position(|c| c.owner == Some(owner) && c.name == local)
            {
                return Some(found as u32);
            }
            current = self.classes.get(owner as usize).and_then(|c| c.superclass);
        }
        None
    }

    /// The id of the association with the given name.
    pub fn association_id(&self, name: &str) -> Option<u32> {
        self.associations.iter().position(|a| a.name == name).map(|i| i as u32)
    }

    /// The association with the given name.
    pub fn association(&self, name: &str) -> Option<&AssociationSummary> {
        self.associations.iter().find(|a| a.name == name)
    }

    /// The names of `name`'s association hierarchy: the association itself plus every
    /// (transitive) specialization.
    pub fn association_hierarchy(&self, name: &str) -> Vec<String> {
        let Some(root) = self.association_id(name) else { return Vec::new() };
        let mut members = vec![root];
        // Fixpoint over the superassociation links (hierarchies are shallow).
        loop {
            let before = members.len();
            for (i, assoc) in self.associations.iter().enumerate() {
                let i = i as u32;
                if members.contains(&i) {
                    continue;
                }
                if let Some(sup) = assoc.superassociation {
                    if members.contains(&sup) {
                        members.push(i);
                    }
                }
            }
            if members.len() == before {
                break;
            }
        }
        members
            .into_iter()
            .filter_map(|i| self.associations.get(i as usize).map(|a| a.name.clone()))
            .collect()
    }
}

/// One relationship of an object, rendered for a remote client: the association by name and the
/// bindings as `(role, object name)` pairs (clients do not share the server's id space).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RelationshipInfo {
    /// Association name.
    pub association: String,
    /// `(role, object name)` bindings, in declaration order.
    pub bindings: Vec<(String, String)>,
    /// Whether the relationship is inherited from a pattern (rather than the object's own).
    pub inherited: bool,
}

impl RelationshipInfo {
    /// Whether the relationship binds an object with the given name (in any role).
    pub fn involves(&self, object: &str) -> bool {
        self.bindings.iter().any(|(_, o)| o == object)
    }
}

/// A request sent to the server thread.
#[derive(Debug)]
pub enum Request {
    /// Register a new client; the server replies with its [`ClientId`].
    Connect,
    /// Check out the named objects (taking write locks).
    Checkout {
        /// The requesting client.
        client: ClientId,
        /// Root object names to check out.
        objects: Vec<String>,
    },
    /// Check in a batch of updates as a single transaction and release the client's locks.
    Checkin {
        /// The requesting client.
        client: ClientId,
        /// Updates to apply.
        updates: Vec<Update>,
    },
    /// Release all locks without checking anything in.
    Release {
        /// The requesting client.
        client: ClientId,
    },
    /// Read a single object by name (no lock; servers serve retrieval directly).
    Retrieve {
        /// Object name.
        name: String,
    },
    /// Evaluate a retrieval-language query (or an `explain`) on the central database (no lock;
    /// retrieval goes straight to the server).
    Query {
        /// The query text, e.g. `find Data where name prefix "Alarm"` or `explain count Data`.
        text: String,
    },
    /// Ask the server to create a global version snapshot.
    CreateVersion {
        /// Comment for the version.
        comment: String,
    },
    /// Ask for the durability state of the central database (exposes restart recovery: after a
    /// reopen, the reply reports what was reconstructed from the per-item records and the WAL).
    Persistence,
    /// Ask the server to checkpoint its durable storage (flush pages, truncate the WAL).
    Checkpoint,
    /// Ask for a structural summary of the current schema (class/association names, hierarchy
    /// links, role names) so the client can interpret records locally.
    Schema,
    /// Read the (materialized) children of an object by name.
    Children {
        /// Parent object name.
        name: String,
    },
    /// Read all objects whose hierarchical name starts with a prefix.
    Prefix {
        /// The name prefix, e.g. `"Alarms.Text"`.
        prefix: String,
    },
    /// Read the relationships an object participates in, rendered by name
    /// ([`RelationshipInfo`]).
    RelationshipsOf {
        /// Object name.
        name: String,
    },
    /// Read the extent of a class by name.
    ObjectsOfClass {
        /// Class name.
        class: String,
        /// Whether to include subclasses.
        transitive: bool,
    },
    /// Count the live relationships of an association (optionally including its
    /// specializations).
    RelationshipCount {
        /// Association name.
        association: String,
        /// Whether to include specializations of the association.
        transitive: bool,
    },
    /// Run the completeness analysis and report the number of findings.
    Completeness,
    /// Shut the server thread down (over TCP: close this session).
    Shutdown,
    /// Ask for a full metrics-registry snapshot (every counter, gauge and histogram — see
    /// `docs/OBSERVABILITY.md` for the catalog).
    Stats,
    /// Liveness/readiness probe ([`HealthStatus`]).
    Health,
    /// Change this node's place in the replication topology (see `docs/OPERATIONS.md` §7).
    ///
    /// Sent to a **replica**, it orders the node to finish applying its shipped tail and take
    /// over as primary under topology epoch `epoch`.  Sent to the **old primary**, it fences the
    /// node: the epoch is compared against the node's current epoch (a compare-and-swap — the
    /// arbitration point when two promotions race) and, if newer, the node persistently refuses
    /// all further writes with [`crate::error::ServerError::Fenced`] pointing at `new_primary`.
    Promote {
        /// The topology epoch of this promotion; must exceed the node's current epoch.
        epoch: u64,
        /// Address of the node taking over as primary.
        new_primary: String,
    },
}

impl Request {
    /// The client this request claims to act for, when the operation is identity-bound (lock
    /// table operations).  The network server uses this to enforce per-connection identity: a
    /// session may only act for the client id assigned at handshake.
    pub fn client_id(&self) -> Option<ClientId> {
        match self {
            Request::Checkout { client, .. }
            | Request::Checkin { client, .. }
            | Request::Release { client } => Some(*client),
            _ => None,
        }
    }

    /// A short static name for the request kind — the key used for per-kind latency metrics
    /// (`net_request_us_<kind>`) and the slow-operation log.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Request::Connect => "connect",
            Request::Checkout { .. } => "checkout",
            Request::Checkin { .. } => "checkin",
            Request::Release { .. } => "release",
            Request::Retrieve { .. } => "retrieve",
            Request::Query { .. } => "query",
            Request::CreateVersion { .. } => "create_version",
            Request::Persistence => "persistence",
            Request::Checkpoint => "checkpoint",
            Request::Schema => "schema",
            Request::Children { .. } => "children",
            Request::Prefix { .. } => "prefix",
            Request::RelationshipsOf { .. } => "relationships_of",
            Request::ObjectsOfClass { .. } => "objects_of_class",
            Request::RelationshipCount { .. } => "relationship_count",
            Request::Completeness => "completeness",
            Request::Shutdown => "shutdown",
            Request::Stats => "stats",
            Request::Health => "health",
            Request::Promote { .. } => "promote",
        }
    }

    /// Every value [`Request::kind_name`] can return, for pre-registering per-kind metric
    /// handles before the first request arrives.
    pub const KIND_NAMES: &'static [&'static str] = &[
        "connect",
        "checkout",
        "checkin",
        "release",
        "retrieve",
        "query",
        "create_version",
        "persistence",
        "checkpoint",
        "schema",
        "children",
        "prefix",
        "relationships_of",
        "objects_of_class",
        "relationship_count",
        "completeness",
        "shutdown",
        "stats",
        "health",
        "promote",
    ];
}

/// A reply from the server thread.
#[derive(Debug)]
pub enum Response {
    /// Reply to [`Request::Connect`].
    Connected(ClientId),
    /// Reply to [`Request::Checkout`].
    Checkout(Result<CheckoutSet, crate::error::ServerError>),
    /// Reply to [`Request::Checkin`] / [`Request::Release`].
    Ack(Result<(), crate::error::ServerError>),
    /// Reply to [`Request::Retrieve`].
    Object(Result<ObjectRecord, crate::error::ServerError>),
    /// Reply to [`Request::Query`].
    Answer(Result<QueryAnswer, crate::error::ServerError>),
    /// Reply to [`Request::CreateVersion`].
    Version(Result<VersionId, crate::error::ServerError>),
    /// Reply to [`Request::Persistence`].
    Persistence(PersistenceStatus),
    /// Reply to [`Request::Schema`].
    Schema(SchemaSummary),
    /// Reply to [`Request::Children`] / [`Request::Prefix`] / [`Request::ObjectsOfClass`].
    Objects(Result<Vec<ObjectRecord>, crate::error::ServerError>),
    /// Reply to [`Request::RelationshipsOf`].
    Relationships(Result<Vec<RelationshipInfo>, crate::error::ServerError>),
    /// Reply to [`Request::RelationshipCount`] / [`Request::Completeness`].
    Count(Result<usize, crate::error::ServerError>),
    /// A request-independent failure: the server could not act on the frame at all (malformed
    /// payload, identity violation).  The connection stays open.
    Error(crate::error::ServerError),
    /// Reply to [`Request::Shutdown`].
    ShuttingDown,
    /// Reply to [`Request::Stats`]: a point-in-time copy of the whole metrics registry.
    Stats(seed_obs::RegistrySnapshot),
    /// Reply to [`Request::Health`].
    Health(HealthStatus),
    /// Reply to [`Request::Promote`]: the accepted topology epoch and the node's durable end of
    /// log at the moment the promotion took effect (on a fenced primary: the last LSN it will
    /// ever write — the new primary must have applied at least this far for zero data loss).
    Promoted(Result<PromotionReceipt, crate::error::ServerError>),
}

/// The payload of [`Response::Promoted`]: proof of where the node stood when it changed roles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PromotionReceipt {
    /// The topology epoch now in force on the node.
    pub epoch: u64,
    /// The node's durable end of log at the role change.
    pub last_lsn: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touched_objects_cover_lockable_names() {
        assert!(Update::CreateObject { class: "Data".into(), name: "X".into() }
            .touched_objects()
            .is_empty());
        assert_eq!(
            Update::SetValue { object: "Alarms".into(), value: Value::Undefined }.touched_objects(),
            vec!["Alarms"]
        );
        assert_eq!(
            Update::CreateRelationship {
                association: "Access".into(),
                bindings: vec![("from".into(), "Alarms".into()), ("by".into(), "Sensor".into())],
            }
            .touched_objects(),
            vec!["Alarms", "Sensor"]
        );
        assert_eq!(
            Update::CreateDependent {
                parent: "Alarms".into(),
                class_local: "Text".into(),
                value: Value::Undefined
            }
            .touched_objects(),
            vec!["Alarms"]
        );
    }

    #[test]
    fn checkout_set_accessors() {
        let set = CheckoutSet::default();
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert!(set.object_names().is_empty());
    }
}
