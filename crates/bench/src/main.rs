//! Prints the quick evaluation report (one row per experiment in `EXPERIMENTS.md`).
//!
//! Run with `cargo run -p seed-bench --release`.

fn main() {
    seed_bench::run_report();
}
