//! E15 — pipelined request throughput over one connection: a fixed batch of `retrieve`
//! round-trips issued at pipeline depth 1 (the synchronous baseline), 8 and 64.
//!
//! The interesting number is how the per-iteration time shrinks as the depth grows: a deep
//! pipeline pays one round trip and one coalesced server write per batch, so a single
//! connection approaches the server's execution rate instead of its round-trip rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seed_bench::populated_database;
use seed_net::{RemoteClient, SeedNetServer};
use seed_server::{Request, SeedServer};

const OBJECTS: usize = 500;
const OPS_PER_ITER: usize = 512;

fn pipelined_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("E15_pipelined_reads");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for depth in [1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            let server =
                SeedNetServer::bind(SeedServer::new(populated_database(OBJECTS)), "127.0.0.1:0")
                    .expect("bind loopback");
            let mut client = RemoteClient::connect(server.local_addr()).expect("connect");
            b.iter(|| {
                let mut answered = 0usize;
                while answered < OPS_PER_ITER {
                    let batch = depth.min(OPS_PER_ITER - answered);
                    if batch == 1 {
                        let name = format!("Data{:05}", answered % OBJECTS);
                        client.retrieve(&name).expect("retrieve");
                        answered += 1;
                    } else {
                        let mut pipeline = client.pipeline();
                        for i in 0..batch {
                            pipeline.submit(Request::Retrieve {
                                name: format!("Data{:05}", (answered + i) % OBJECTS),
                            });
                        }
                        answered += pipeline.flush().expect("flush").len();
                    }
                }
                answered
            });
            drop(client);
            server.shutdown();
        });
    }
    group.finish();
}

criterion_group!(benches, pipelined_reads);
criterion_main!(benches);
