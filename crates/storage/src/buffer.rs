//! LRU buffer pool.
//!
//! Mediates all page access from the heap-file layer: pages are fetched into fixed-capacity
//! frames, modified in place, marked dirty, and written back when evicted or flushed.  Pins
//! prevent a page from being evicted while a caller holds it.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId};
use crate::pagestore::PageStore;

/// Counters describing buffer-pool behaviour, useful for benchmarks and tests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Page requests satisfied from a resident frame.
    pub hits: u64,
    /// Page requests that had to read from the page store.
    pub misses: u64,
    /// Dirty pages written back to the store.
    pub writebacks: u64,
    /// Evictions (clean or dirty) performed to make room.
    pub evictions: u64,
}

struct Frame {
    page: Page,
    dirty: bool,
    pins: u32,
    /// Monotonic counter value at last access; smallest value = least recently used.
    last_used: u64,
}

struct PoolInner {
    frames: HashMap<PageId, Frame>,
    capacity: usize,
    tick: u64,
    stats: BufferPoolStats,
}

/// A fixed-capacity LRU buffer pool over a [`PageStore`].
pub struct BufferPool {
    store: Arc<dyn PageStore>,
    inner: Mutex<PoolInner>,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` pages.
    pub fn new(store: Arc<dyn PageStore>, capacity: usize) -> StorageResult<Self> {
        if capacity == 0 {
            return Err(StorageError::InvalidArgument(
                "buffer pool capacity must be at least 1".to_string(),
            ));
        }
        Ok(Self {
            store,
            inner: Mutex::new(PoolInner {
                frames: HashMap::new(),
                capacity,
                tick: 0,
                stats: BufferPoolStats::default(),
            }),
        })
    }

    /// The underlying page store.
    pub fn store(&self) -> &Arc<dyn PageStore> {
        &self.store
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> BufferPoolStats {
        self.inner.lock().stats
    }

    /// Number of pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// Allocates a fresh page in the store and loads it into the pool.
    pub fn allocate_page(&self) -> StorageResult<PageId> {
        let id = self.store.allocate_page()?;
        let mut inner = self.inner.lock();
        Self::make_room(&mut inner, &self.store)?;
        inner.tick += 1;
        let tick = inner.tick;
        inner
            .frames
            .insert(id, Frame { page: Page::new(id), dirty: true, pins: 0, last_used: tick });
        Ok(id)
    }

    /// Runs `f` with read access to the page.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> StorageResult<R> {
        let mut inner = self.inner.lock();
        self.ensure_resident(&mut inner, id)?;
        let frame = inner.frames.get(&id).expect("just made resident");
        Ok(f(&frame.page))
    }

    /// Runs `f` with mutable access to the page and marks it dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> StorageResult<R> {
        let mut inner = self.inner.lock();
        self.ensure_resident(&mut inner, id)?;
        let frame = inner.frames.get_mut(&id).expect("just made resident");
        frame.dirty = true;
        Ok(f(&mut frame.page))
    }

    /// Pins a page so it cannot be evicted until [`BufferPool::unpin`] is called.
    pub fn pin(&self, id: PageId) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        self.ensure_resident(&mut inner, id)?;
        inner.frames.get_mut(&id).expect("resident").pins += 1;
        Ok(())
    }

    /// Releases a pin previously taken with [`BufferPool::pin`].
    pub fn unpin(&self, id: PageId) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        let frame = inner.frames.get_mut(&id).ok_or(StorageError::PageNotFound(id))?;
        if frame.pins == 0 {
            return Err(StorageError::InvalidArgument(format!("page {id} is not pinned")));
        }
        frame.pins -= 1;
        Ok(())
    }

    /// Writes every dirty resident page back to the store and syncs it.
    pub fn flush_all(&self) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        let dirty_ids: Vec<PageId> =
            inner.frames.iter().filter(|(_, f)| f.dirty).map(|(id, _)| *id).collect();
        for id in dirty_ids {
            let frame = inner.frames.get_mut(&id).expect("listed above");
            self.store.write_page(&frame.page)?;
            frame.dirty = false;
            inner.stats.writebacks += 1;
        }
        self.store.sync()
    }

    /// Writes a single page back if dirty.
    pub fn flush_page(&self, id: PageId) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        if let Some(frame) = inner.frames.get_mut(&id) {
            if frame.dirty {
                self.store.write_page(&frame.page)?;
                frame.dirty = false;
                inner.stats.writebacks += 1;
            }
        }
        Ok(())
    }

    fn ensure_resident(&self, inner: &mut PoolInner, id: PageId) -> StorageResult<()> {
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(frame) = inner.frames.get_mut(&id) {
            frame.last_used = tick;
            inner.stats.hits += 1;
            return Ok(());
        }
        inner.stats.misses += 1;
        let page = self.store.read_page(id)?;
        Self::make_room(inner, &self.store)?;
        inner.frames.insert(id, Frame { page, dirty: false, pins: 0, last_used: tick });
        Ok(())
    }

    fn make_room(inner: &mut PoolInner, store: &Arc<dyn PageStore>) -> StorageResult<()> {
        while inner.frames.len() >= inner.capacity {
            let victim = inner
                .frames
                .iter()
                .filter(|(_, f)| f.pins == 0)
                .min_by_key(|(_, f)| f.last_used)
                .map(|(id, _)| *id)
                .ok_or(StorageError::NoEvictablePage)?;
            let frame = inner.frames.remove(&victim).expect("chosen above");
            if frame.dirty {
                store.write_page(&frame.page)?;
                inner.stats.writebacks += 1;
            }
            inner.stats.evictions += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagestore::MemoryPageStore;

    fn pool(capacity: usize) -> BufferPool {
        BufferPool::new(Arc::new(MemoryPageStore::new()), capacity).unwrap()
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(BufferPool::new(Arc::new(MemoryPageStore::new()), 0).is_err());
    }

    #[test]
    fn allocate_and_modify_pages() {
        let pool = pool(4);
        let p = pool.allocate_page().unwrap();
        let slot = pool.with_page_mut(p, |page| page.insert(b"buffered").unwrap()).unwrap();
        let data = pool.with_page(p, |page| page.get(slot).unwrap().to_vec()).unwrap();
        assert_eq!(data, b"buffered");
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let pool = pool(2);
        let mut ids = Vec::new();
        for i in 0..5u8 {
            let id = pool.allocate_page().unwrap();
            pool.with_page_mut(id, |page| {
                page.insert(&[i; 16]).unwrap();
            })
            .unwrap();
            ids.push(id);
        }
        // Only 2 frames resident, yet every page's content must be readable (via the store).
        assert!(pool.resident_pages() <= 2);
        for (i, id) in ids.iter().enumerate() {
            let data = pool.with_page(*id, |page| page.get(0).unwrap().to_vec()).unwrap();
            assert_eq!(data, vec![i as u8; 16]);
        }
        let stats = pool.stats();
        assert!(stats.evictions >= 3, "expected evictions, got {stats:?}");
        assert!(stats.writebacks >= 3);
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let pool = pool(2);
        let p0 = pool.allocate_page().unwrap();
        let p1 = pool.allocate_page().unwrap();
        pool.pin(p0).unwrap();
        pool.pin(p1).unwrap();
        // Allocating a third page has nowhere to go: every frame is pinned.
        assert!(matches!(pool.allocate_page(), Err(StorageError::NoEvictablePage)));
        pool.unpin(p0).unwrap();
        assert!(pool.allocate_page().is_ok());
        pool.unpin(p1).unwrap();
    }

    #[test]
    fn unpin_without_pin_errors() {
        let pool = pool(2);
        let p = pool.allocate_page().unwrap();
        assert!(pool.unpin(p).is_err());
    }

    #[test]
    fn flush_all_persists_to_store() {
        let store = Arc::new(MemoryPageStore::new());
        let pool = BufferPool::new(store.clone(), 4).unwrap();
        let p = pool.allocate_page().unwrap();
        pool.with_page_mut(p, |page| {
            page.insert(b"durable").unwrap();
        })
        .unwrap();
        pool.flush_all().unwrap();
        // Read directly from the store, bypassing the pool.
        let page = store.read_page(p).unwrap();
        assert_eq!(page.get(0).unwrap(), b"durable");
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let pool = pool(2);
        let p = pool.allocate_page().unwrap();
        pool.with_page(p, |_| ()).unwrap();
        pool.with_page(p, |_| ()).unwrap();
        let stats = pool.stats();
        assert!(stats.hits >= 2);
    }
}
