//! The in-memory data store: the *current version* of the database.
//!
//! The store keeps every object and relationship ever created (deletion is logical) together
//! with the secondary indexes the operational interface needs: the name index (retrieval by
//! name is the prototype's primary access path), class and association extents, per-object
//! adjacency lists and the pattern-inheritance links.
//!
//! The store itself performs **no** consistency checking — it is a dumb, always-successful
//! container.  The [`crate::database::Database`] layer checks consistency *before* mutating the
//! store, which is how SEED "permanently ensures database consistency".

use std::collections::{BTreeMap, HashMap, HashSet};

use serde::{Deserialize, Serialize};

use seed_schema::{AssociationId, ClassId};

use crate::ident::{ItemId, ObjectId, RelationshipId};
use crate::index::{AttributeIndex, IndexKey, ValueOp};
use crate::object::ObjectRecord;
use crate::relationship::RelationshipRecord;

/// The mutable current state of a SEED database.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DataStore {
    objects: HashMap<ObjectId, ObjectRecord>,
    relationships: HashMap<RelationshipId, RelationshipRecord>,
    /// name (string form) → object id, for *live* (possibly pattern) objects.
    name_index: BTreeMap<String, ObjectId>,
    /// class → ordered value index over live objects (patterns included; retrieval filters
    /// them).  Derived data, kept in lock-step by every insert/update/remove below.
    value_index: AttributeIndex,
    /// class → live object ids (patterns included; retrieval filters them).
    class_extent: HashMap<ClassId, HashSet<ObjectId>>,
    /// association → live relationship ids.
    association_extent: HashMap<AssociationId, HashSet<RelationshipId>>,
    /// object → live relationships it participates in.
    adjacency: HashMap<ObjectId, HashSet<RelationshipId>>,
    /// parent object → live dependent objects.
    children: HashMap<ObjectId, Vec<ObjectId>>,
    /// inheritor object → patterns it inherits.
    inherits: HashMap<ObjectId, HashSet<ObjectId>>,
    /// pattern object → its inheritors.
    inheritors: HashMap<ObjectId, HashSet<ObjectId>>,
    /// Items changed since the last version snapshot (drives delta version storage).
    dirty: HashSet<ItemId>,
    /// Items changed since the durability layer last flushed (drives per-item write-through;
    /// only populated while `journal` is on, so non-durable databases pay nothing).
    changed: HashSet<ItemId>,
    /// Whether the change journal is recording (enabled by `Database::open_durable`).
    journal: bool,
    next_object: u64,
    next_relationship: u64,
}

impl DataStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    // ----- id allocation --------------------------------------------------------------------------

    /// Allocates a fresh object id.
    pub fn allocate_object_id(&mut self) -> ObjectId {
        self.next_object += 1;
        ObjectId(self.next_object)
    }

    /// Allocates a fresh relationship id.
    pub fn allocate_relationship_id(&mut self) -> RelationshipId {
        self.next_relationship += 1;
        RelationshipId(self.next_relationship)
    }

    /// The highest object and relationship ids handed out so far.
    pub fn id_floor(&self) -> (u64, u64) {
        (self.next_object, self.next_relationship)
    }

    /// Raises the id counters so that future allocations stay above the given floor (used when
    /// a reconstructed version view becomes the working state).
    pub fn raise_id_floor(&mut self, object_floor: u64, relationship_floor: u64) {
        self.next_object = self.next_object.max(object_floor);
        self.next_relationship = self.next_relationship.max(relationship_floor);
    }

    // ----- dirty tracking -------------------------------------------------------------------------

    /// Items changed since the dirty set was last drained (used by the version manager).
    pub fn dirty_items(&self) -> &HashSet<ItemId> {
        &self.dirty
    }

    /// Clears the dirty set (after a version snapshot has recorded the changes).
    pub fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    fn mark_dirty(&mut self, item: ItemId) {
        self.dirty.insert(item);
        if self.journal {
            self.changed.insert(item);
        }
    }

    /// Marks a set of items dirty (used when restoring a persisted dirty set).
    pub fn mark_dirty_bulk(&mut self, items: &[ItemId]) {
        self.dirty.extend(items.iter().copied());
    }

    /// Sets one item's dirty flag directly, without journaling — used when mirroring a shipped
    /// `d/` marker onto a replica's serving database, where the flag must track the primary's
    /// persisted dirty set rather than the local mutations that applied the batch.
    pub fn sync_dirty_mark(&mut self, item: ItemId, dirty: bool) {
        if dirty {
            self.dirty.insert(item);
        } else {
            self.dirty.remove(&item);
        }
    }

    // ----- change journal (write-through durability) -----------------------------------------------

    /// Turns the change journal on or off.  While on, every mutation records the touched item in
    /// a second set drained by [`DataStore::take_changed`] — the unit of work of the per-item
    /// write-through persistence layer.
    pub fn set_journal(&mut self, enabled: bool) {
        self.journal = enabled;
        if !enabled {
            self.changed.clear();
        }
    }

    /// Drains the change journal, returning the items touched since the last drain in sorted
    /// order (deterministic storage-transaction layout).
    pub fn take_changed(&mut self) -> Vec<ItemId> {
        let mut items: Vec<ItemId> = self.changed.drain().collect();
        items.sort();
        items
    }

    /// Puts drained items back into the change journal — used when staging them to storage
    /// failed after the drain, so a later commit retries instead of silently dropping them.
    pub fn requeue_changed(&mut self, items: &[ItemId]) {
        if self.journal {
            self.changed.extend(items.iter().copied());
        }
    }

    // ----- objects --------------------------------------------------------------------------------

    /// Inserts a new object record.
    pub fn insert_object(&mut self, record: ObjectRecord) {
        let id = record.id;
        if !record.deleted {
            // Version views and persistence replay tombstoned records through here too; only
            // live records enter the live indexes.  (A replayed tombstone must never shadow a
            // live object's name-index entry, and the planner's extent estimates count these
            // sets.)
            self.name_index.insert(record.name.to_string(), id);
            self.class_extent.entry(record.class).or_default().insert(id);
            self.value_index.insert(record.class, &record.value, id);
        }
        if let Some(parent) = record.parent {
            self.children.entry(parent).or_default().push(id);
        }
        self.next_object = self.next_object.max(id.0);
        self.objects.insert(id, record);
        self.mark_dirty(ItemId::Object(id));
    }

    /// Looks up an object record (live or deleted).
    pub fn object(&self, id: ObjectId) -> Option<&ObjectRecord> {
        self.objects.get(&id)
    }

    /// Looks up a *live* object record.
    pub fn live_object(&self, id: ObjectId) -> Option<&ObjectRecord> {
        self.objects.get(&id).filter(|o| !o.deleted)
    }

    /// Looks up a live object by its full name.
    pub fn object_by_name(&self, name: &str) -> Option<&ObjectRecord> {
        self.name_index.get(name).and_then(|id| self.live_object(*id))
    }

    /// Whether a live object with this name exists.
    pub fn name_taken(&self, name: &str) -> bool {
        self.object_by_name(name).is_some()
    }

    /// Mutates an object record through a closure; maintains the secondary indexes and the
    /// dirty set.  Returns `false` if the object does not exist.
    pub fn update_object(&mut self, id: ObjectId, f: impl FnOnce(&mut ObjectRecord)) -> bool {
        // Take a snapshot of index-relevant fields, mutate, then fix the indexes.
        let Some(record) = self.objects.get_mut(&id) else { return false };
        let old_name = record.name.to_string();
        let old_class = record.class;
        let old_key = IndexKey::of(&record.value);
        let was_deleted = record.deleted;
        f(record);
        let new_name = record.name.to_string();
        let new_class = record.class;
        let new_key = IndexKey::of(&record.value);
        let now_deleted = record.deleted;

        if old_name != new_name || (!was_deleted && now_deleted) {
            self.name_index.remove(&old_name);
        }
        if !now_deleted {
            self.name_index.insert(new_name, id);
        }
        if old_class != new_class || now_deleted != was_deleted {
            if let Some(ext) = self.class_extent.get_mut(&old_class) {
                ext.remove(&id);
            }
            if !now_deleted {
                self.class_extent.entry(new_class).or_default().insert(id);
            }
        }
        if old_class != new_class || old_key != new_key || now_deleted != was_deleted {
            if !was_deleted {
                if let Some(key) = old_key {
                    self.value_index.remove_key(old_class, &key, id);
                }
            }
            if !now_deleted {
                if let Some(key) = new_key {
                    self.value_index.insert_key(new_class, key, id);
                }
            }
        }
        self.mark_dirty(ItemId::Object(id));
        true
    }

    /// Marks an object (and nothing else — cascades are the database layer's job) as deleted.
    pub fn tombstone_object(&mut self, id: ObjectId) -> bool {
        self.update_object(id, |o| o.deleted = true)
    }

    /// Physically removes an object from the store and all indexes.  Only used to roll back a
    /// creation inside an aborted transaction — versioned data is never removed physically.
    pub fn remove_object(&mut self, id: ObjectId) -> Option<ObjectRecord> {
        let record = self.objects.remove(&id)?;
        if !record.deleted {
            // Tombstoned records left the live indexes when they were tombstoned; touching the
            // name index here could otherwise evict a live object that has reused the name.
            self.name_index.remove(&record.name.to_string());
            self.value_index.remove(record.class, &record.value, id);
        }
        if let Some(ext) = self.class_extent.get_mut(&record.class) {
            ext.remove(&id);
        }
        if let Some(parent) = record.parent {
            if let Some(children) = self.children.get_mut(&parent) {
                children.retain(|c| *c != id);
            }
        }
        self.children.remove(&id);
        self.adjacency.remove(&id);
        self.dirty.remove(&ItemId::Object(id));
        if self.journal {
            self.changed.insert(ItemId::Object(id));
        }
        // Drop any inherits links touching the object.
        if let Some(patterns) = self.inherits.remove(&id) {
            for p in patterns {
                if let Some(s) = self.inheritors.get_mut(&p) {
                    s.remove(&id);
                }
            }
        }
        if let Some(inheritors) = self.inheritors.remove(&id) {
            for i in inheritors {
                if let Some(s) = self.inherits.get_mut(&i) {
                    s.remove(&id);
                }
            }
        }
        Some(record)
    }

    /// Physically removes a relationship (rollback of an aborted creation only).
    pub fn remove_relationship(&mut self, id: RelationshipId) -> Option<RelationshipRecord> {
        let record = self.relationships.remove(&id)?;
        if let Some(ext) = self.association_extent.get_mut(&record.association) {
            ext.remove(&id);
        }
        for (_, obj) in &record.bindings {
            if let Some(adj) = self.adjacency.get_mut(obj) {
                adj.remove(&id);
            }
        }
        self.dirty.remove(&ItemId::Relationship(id));
        if self.journal {
            self.changed.insert(ItemId::Relationship(id));
        }
        Some(record)
    }

    /// Live dependent objects of `parent`.
    pub fn children_of(&self, parent: ObjectId) -> Vec<&ObjectRecord> {
        self.children
            .get(&parent)
            .map(|ids| ids.iter().filter_map(|id| self.live_object(*id)).collect())
            .unwrap_or_default()
    }

    /// Live dependent objects of `parent` belonging to `class`.
    pub fn children_of_class(&self, parent: ObjectId, class: ClassId) -> Vec<&ObjectRecord> {
        self.children_of(parent).into_iter().filter(|o| o.class == class).collect()
    }

    /// Live objects of exactly `class` (no subclass closure; patterns included).
    pub fn extent(&self, class: ClassId) -> Vec<&ObjectRecord> {
        self.class_extent
            .get(&class)
            .map(|ids| ids.iter().filter_map(|id| self.live_object(*id)).collect())
            .unwrap_or_default()
    }

    /// All object records, including deleted ones (used by persistence and versioning).
    pub fn all_objects(&self) -> impl Iterator<Item = &ObjectRecord> {
        self.objects.values()
    }

    /// All live, visible (non-pattern) objects.
    pub fn visible_objects(&self) -> impl Iterator<Item = &ObjectRecord> {
        self.objects.values().filter(|o| o.is_visible())
    }

    /// Number of live objects (patterns included).
    pub fn live_object_count(&self) -> usize {
        self.objects.values().filter(|o| !o.deleted).count()
    }

    /// Live objects whose name starts with `prefix` (in name order).
    pub fn objects_with_name_prefix(&self, prefix: &str) -> Vec<&ObjectRecord> {
        self.name_index
            .range(prefix.to_string()..)
            .take_while(|(name, _)| name.starts_with(prefix))
            .filter_map(|(_, id)| self.live_object(*id))
            .collect()
    }

    /// Number of name-index entries starting with `prefix`, counted with an early-exit budget
    /// of `cap` (the planner's cardinality estimate for a prefix range scan; a wide prefix
    /// stops counting at the competing scan cost instead of walking the whole index).
    pub fn name_prefix_count(&self, prefix: &str, cap: usize) -> usize {
        self.name_index
            .range(prefix.to_string()..)
            .take_while(|(name, _)| name.starts_with(prefix))
            .take(cap)
            .count()
    }

    // ----- secondary value index ------------------------------------------------------------------

    /// Live objects of exactly `class` whose value satisfies `op` against the query literal,
    /// resolved through the secondary value index (in ascending id order; patterns included).
    pub fn objects_by_value(
        &self,
        class: ClassId,
        op: ValueOp,
        literal: &str,
    ) -> Vec<&ObjectRecord> {
        self.value_index
            .matching(class, op, literal)
            .into_iter()
            .filter_map(|id| self.live_object(id))
            .collect()
    }

    /// Number of index matches [`DataStore::objects_by_value`] would resolve, counted with an
    /// early-exit budget of `cap` (see [`AttributeIndex::estimate_up_to`]).
    pub fn value_estimate(&self, class: ClassId, op: ValueOp, literal: &str, cap: usize) -> usize {
        self.value_index.estimate_up_to(class, op, literal, cap)
    }

    /// Number of live objects of exactly `class` (patterns included) — the planner's scan-cost
    /// proxy, read off the class extent without touching records.
    pub fn extent_size(&self, class: ClassId) -> usize {
        self.class_extent.get(&class).map(HashSet::len).unwrap_or(0)
    }

    /// Read access to the secondary value index.
    pub fn value_index(&self) -> &AttributeIndex {
        &self.value_index
    }

    // ----- relationships ---------------------------------------------------------------------------

    /// Inserts a new relationship record.
    pub fn insert_relationship(&mut self, record: RelationshipRecord) {
        let id = record.id;
        if !record.deleted {
            // Same rule as insert_object: replayed tombstones stay out of the live indexes.
            self.association_extent.entry(record.association).or_default().insert(id);
            for (_, obj) in &record.bindings {
                self.adjacency.entry(*obj).or_default().insert(id);
            }
        }
        self.next_relationship = self.next_relationship.max(id.0);
        self.relationships.insert(id, record);
        self.mark_dirty(ItemId::Relationship(id));
    }

    /// Looks up a relationship record (live or deleted).
    pub fn relationship(&self, id: RelationshipId) -> Option<&RelationshipRecord> {
        self.relationships.get(&id)
    }

    /// Looks up a live relationship record.
    pub fn live_relationship(&self, id: RelationshipId) -> Option<&RelationshipRecord> {
        self.relationships.get(&id).filter(|r| !r.deleted)
    }

    /// Mutates a relationship record; maintains indexes and the dirty set.
    pub fn update_relationship(
        &mut self,
        id: RelationshipId,
        f: impl FnOnce(&mut RelationshipRecord),
    ) -> bool {
        let Some(record) = self.relationships.get_mut(&id) else { return false };
        let old_assoc = record.association;
        let old_objects: Vec<ObjectId> = record.objects();
        let was_deleted = record.deleted;
        f(record);
        let new_assoc = record.association;
        let new_objects: Vec<ObjectId> = record.objects();
        let now_deleted = record.deleted;

        if old_assoc != new_assoc || now_deleted != was_deleted {
            if let Some(ext) = self.association_extent.get_mut(&old_assoc) {
                ext.remove(&id);
            }
            if !now_deleted {
                self.association_extent.entry(new_assoc).or_default().insert(id);
            }
        }
        if old_objects != new_objects || now_deleted != was_deleted {
            for obj in &old_objects {
                if let Some(adj) = self.adjacency.get_mut(obj) {
                    adj.remove(&id);
                }
            }
            if !now_deleted {
                for obj in &new_objects {
                    self.adjacency.entry(*obj).or_default().insert(id);
                }
            }
        }
        self.mark_dirty(ItemId::Relationship(id));
        true
    }

    /// Marks a relationship as deleted.
    pub fn tombstone_relationship(&mut self, id: RelationshipId) -> bool {
        self.update_relationship(id, |r| r.deleted = true)
    }

    /// Live relationships of exactly `association` (patterns included).
    pub fn association_extent(&self, association: AssociationId) -> Vec<&RelationshipRecord> {
        self.association_extent
            .get(&association)
            .map(|ids| ids.iter().filter_map(|id| self.live_relationship(*id)).collect())
            .unwrap_or_default()
    }

    /// Live relationships `object` participates in (patterns included).
    pub fn relationships_of(&self, object: ObjectId) -> Vec<&RelationshipRecord> {
        self.adjacency
            .get(&object)
            .map(|ids| ids.iter().filter_map(|id| self.live_relationship(*id)).collect())
            .unwrap_or_default()
    }

    /// All relationship records, including deleted ones.
    pub fn all_relationships(&self) -> impl Iterator<Item = &RelationshipRecord> {
        self.relationships.values()
    }

    /// Number of live relationships (patterns included).
    pub fn live_relationship_count(&self) -> usize {
        self.relationships.values().filter(|r| !r.deleted).count()
    }

    // ----- pattern inheritance links -----------------------------------------------------------------

    /// Records that `inheritor` inherits `pattern`.
    pub fn add_inherits(&mut self, inheritor: ObjectId, pattern: ObjectId) {
        self.inherits.entry(inheritor).or_default().insert(pattern);
        self.inheritors.entry(pattern).or_default().insert(inheritor);
        self.mark_dirty(ItemId::Object(inheritor));
    }

    /// Removes an inherits link.
    pub fn remove_inherits(&mut self, inheritor: ObjectId, pattern: ObjectId) -> bool {
        let removed =
            self.inherits.get_mut(&inheritor).map(|s| s.remove(&pattern)).unwrap_or(false);
        if removed {
            if let Some(s) = self.inheritors.get_mut(&pattern) {
                s.remove(&inheritor);
            }
            self.mark_dirty(ItemId::Object(inheritor));
        }
        removed
    }

    /// Patterns inherited by `inheritor`.
    pub fn inherited_patterns(&self, inheritor: ObjectId) -> Vec<ObjectId> {
        self.inherits
            .get(&inheritor)
            .map(|s| {
                let mut v: Vec<ObjectId> = s.iter().copied().collect();
                v.sort();
                v
            })
            .unwrap_or_default()
    }

    /// Inheritors of `pattern`.
    pub fn inheritors_of(&self, pattern: ObjectId) -> Vec<ObjectId> {
        self.inheritors
            .get(&pattern)
            .map(|s| {
                let mut v: Vec<ObjectId> = s.iter().copied().collect();
                v.sort();
                v
            })
            .unwrap_or_default()
    }

    /// All `(inheritor, pattern)` pairs (used by persistence).
    pub fn all_inherits_links(&self) -> Vec<(ObjectId, ObjectId)> {
        let mut out = Vec::new();
        for (inheritor, patterns) in &self.inherits {
            for pattern in patterns {
                out.push((*inheritor, *pattern));
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::ObjectName;
    use crate::value::Value;

    fn obj(store: &mut DataStore, name: &str, class: u32) -> ObjectId {
        let id = store.allocate_object_id();
        store.insert_object(ObjectRecord::new(id, ClassId(class), ObjectName::root(name), None));
        id
    }

    #[test]
    fn insert_and_lookup_objects() {
        let mut store = DataStore::new();
        let alarms = obj(&mut store, "Alarms", 0);
        let handler = obj(&mut store, "AlarmHandler", 1);
        assert_ne!(alarms, handler);
        assert_eq!(store.object_by_name("Alarms").unwrap().id, alarms);
        assert_eq!(store.live_object_count(), 2);
        assert_eq!(store.extent(ClassId(0)).len(), 1);
        assert!(store.name_taken("Alarms"));
        assert!(!store.name_taken("Sensor"));
    }

    #[test]
    fn update_maintains_name_and_class_indexes() {
        let mut store = DataStore::new();
        let alarms = obj(&mut store, "Alarms", 0);
        store.update_object(alarms, |o| o.class = ClassId(5));
        assert!(store.extent(ClassId(0)).is_empty());
        assert_eq!(store.extent(ClassId(5)).len(), 1);
        store.update_object(alarms, |o| o.name = ObjectName::root("AlarmMatrix"));
        assert!(store.object_by_name("Alarms").is_none());
        assert_eq!(store.object_by_name("AlarmMatrix").unwrap().id, alarms);
    }

    #[test]
    fn tombstone_removes_from_live_views_but_keeps_record() {
        let mut store = DataStore::new();
        let alarms = obj(&mut store, "Alarms", 0);
        assert!(store.tombstone_object(alarms));
        assert!(store.object_by_name("Alarms").is_none());
        assert!(store.live_object(alarms).is_none());
        assert!(store.object(alarms).is_some(), "record is kept for version views");
        assert_eq!(store.live_object_count(), 0);
        assert!(store.extent(ClassId(0)).is_empty());
    }

    #[test]
    fn children_are_tracked() {
        let mut store = DataStore::new();
        let alarms = obj(&mut store, "Alarms", 0);
        let text_id = store.allocate_object_id();
        store.insert_object(ObjectRecord::new(
            text_id,
            ClassId(2),
            ObjectName::parse("Alarms.Text").unwrap(),
            Some(alarms),
        ));
        assert_eq!(store.children_of(alarms).len(), 1);
        assert_eq!(store.children_of_class(alarms, ClassId(2)).len(), 1);
        assert!(store.children_of_class(alarms, ClassId(3)).is_empty());
        store.tombstone_object(text_id);
        assert!(store.children_of(alarms).is_empty());
    }

    #[test]
    fn relationships_update_adjacency_and_extents() {
        let mut store = DataStore::new();
        let alarms = obj(&mut store, "Alarms", 0);
        let handler = obj(&mut store, "AlarmHandler", 1);
        let rid = store.allocate_relationship_id();
        store.insert_relationship(RelationshipRecord::new(
            rid,
            AssociationId(0),
            vec![("from".into(), alarms), ("by".into(), handler)],
        ));
        assert_eq!(store.relationships_of(alarms).len(), 1);
        assert_eq!(store.association_extent(AssociationId(0)).len(), 1);
        // Re-classify to another association.
        store.update_relationship(rid, |r| r.association = AssociationId(1));
        assert!(store.association_extent(AssociationId(0)).is_empty());
        assert_eq!(store.association_extent(AssociationId(1)).len(), 1);
        // Delete.
        store.tombstone_relationship(rid);
        assert!(store.relationships_of(alarms).is_empty());
        assert!(store.association_extent(AssociationId(1)).is_empty());
        assert!(store.relationship(rid).is_some());
        assert_eq!(store.live_relationship_count(), 0);
    }

    #[test]
    fn dirty_tracking_records_changes() {
        let mut store = DataStore::new();
        assert!(store.dirty_items().is_empty());
        let alarms = obj(&mut store, "Alarms", 0);
        assert_eq!(store.dirty_items().len(), 1);
        store.clear_dirty();
        assert!(store.dirty_items().is_empty());
        store.update_object(alarms, |o| o.value = Value::string("x"));
        assert!(store.dirty_items().contains(&ItemId::Object(alarms)));
    }

    #[test]
    fn change_journal_drains_requeues_and_stays_off_by_default() {
        let mut store = DataStore::new();
        obj(&mut store, "NotJournaled", 0);
        assert!(store.take_changed().is_empty(), "journal off by default");

        store.set_journal(true);
        let a = obj(&mut store, "A", 0);
        store.update_object(a, |o| o.value = Value::Integer(1));
        let drained = store.take_changed();
        assert_eq!(drained, vec![ItemId::Object(a)], "deduplicated and sorted");
        assert!(store.take_changed().is_empty(), "drain empties the journal");
        // A failed staging attempt puts drained items back for the next commit.
        store.requeue_changed(&drained);
        assert_eq!(store.take_changed(), drained);
        // Physical removal is journaled too (the durable key must be deleted).
        store.remove_object(a);
        assert_eq!(store.take_changed(), vec![ItemId::Object(a)]);
        // Disabling the journal clears it.
        let b = obj(&mut store, "B", 0);
        store.update_object(b, |o| o.value = Value::Integer(2));
        store.set_journal(false);
        assert!(store.take_changed().is_empty());
    }

    #[test]
    fn inherits_links_are_bidirectional() {
        let mut store = DataStore::new();
        let pattern = obj(&mut store, "PatternProc", 0);
        let a = obj(&mut store, "ProcA", 0);
        let b = obj(&mut store, "ProcB", 0);
        store.add_inherits(a, pattern);
        store.add_inherits(b, pattern);
        assert_eq!(store.inherited_patterns(a), vec![pattern]);
        assert_eq!(store.inheritors_of(pattern), vec![a, b]);
        assert_eq!(store.all_inherits_links().len(), 2);
        assert!(store.remove_inherits(a, pattern));
        assert!(!store.remove_inherits(a, pattern));
        assert_eq!(store.inheritors_of(pattern), vec![b]);
    }

    #[test]
    fn value_index_follows_every_mutation_path() {
        let mut store = DataStore::new();
        let a = obj(&mut store, "A", 0);
        let b = obj(&mut store, "B", 0);
        store.update_object(a, |o| o.value = Value::Integer(7));
        store.update_object(b, |o| o.value = Value::string("x"));
        assert_eq!(store.objects_by_value(ClassId(0), ValueOp::Eq, "7")[0].id, a);
        assert_eq!(store.value_estimate(ClassId(0), ValueOp::Eq, "x", usize::MAX), 1);
        assert_eq!(store.extent_size(ClassId(0)), 2);

        // Value change re-keys.
        store.update_object(a, |o| o.value = Value::Integer(9));
        assert!(store.objects_by_value(ClassId(0), ValueOp::Eq, "7").is_empty());
        assert_eq!(store.objects_by_value(ClassId(0), ValueOp::Greater, "8")[0].id, a);

        // Re-classification moves the entry between per-class trees.
        store.update_object(a, |o| o.class = ClassId(3));
        assert!(store.objects_by_value(ClassId(0), ValueOp::Eq, "9").is_empty());
        assert_eq!(store.objects_by_value(ClassId(3), ValueOp::Eq, "9")[0].id, a);

        // Tombstoning removes; restoring a live record (undo) re-adds.
        store.tombstone_object(a);
        assert!(store.objects_by_value(ClassId(3), ValueOp::Eq, "9").is_empty());
        store.update_object(a, |o| o.deleted = false);
        assert_eq!(store.objects_by_value(ClassId(3), ValueOp::Eq, "9")[0].id, a);

        // Physical removal (transaction rollback) drops the entry.
        store.remove_object(b);
        assert!(store.objects_by_value(ClassId(0), ValueOp::Eq, "x").is_empty());
        assert_eq!(store.value_index().entry_count(ClassId(0)), 0);
    }

    #[test]
    fn deleted_records_are_never_indexed_on_insert() {
        // Version views and persistence replay deleted snapshots through insert_object (in
        // arbitrary order): they must stay out of every live index — in particular a replayed
        // tombstone must not shadow a live object's name-index entry or inflate the planner's
        // extent estimates.
        let mut store = DataStore::new();
        let live = obj(&mut store, "X", 0);
        let dead = store.allocate_object_id();
        let mut record = ObjectRecord::new(dead, ClassId(0), ObjectName::root("X"), None);
        record.value = Value::Integer(1);
        record.deleted = true;
        store.insert_object(record);
        assert_eq!(store.object_by_name("X").unwrap().id, live, "tombstone must not shadow");
        assert_eq!(store.extent_size(ClassId(0)), 1);
        assert!(store.objects_by_value(ClassId(0), ValueOp::Eq, "1").is_empty());
        assert_eq!(store.value_index().entry_count(ClassId(0)), 0);

        // Same rule for relationships.
        let rid = store.allocate_relationship_id();
        let mut rel = RelationshipRecord::new(rid, AssociationId(0), vec![("a".into(), live)]);
        rel.deleted = true;
        store.insert_relationship(rel);
        assert!(store.association_extent(AssociationId(0)).is_empty());
        assert!(store.relationships_of(live).is_empty());
        assert!(store.relationship(rid).is_some(), "record itself is kept for views");
    }

    #[test]
    fn name_prefix_count_matches_scan() {
        let mut store = DataStore::new();
        obj(&mut store, "Alarms", 0);
        obj(&mut store, "AlarmHandler", 1);
        obj(&mut store, "Sensor", 2);
        assert_eq!(store.name_prefix_count("Alarm", usize::MAX), 2);
        assert_eq!(
            store.name_prefix_count("Alarm", usize::MAX),
            store.objects_with_name_prefix("Alarm").len()
        );
        assert_eq!(store.name_prefix_count("Alarm", 1), 1, "counting stops at the cap");
        assert_eq!(store.name_prefix_count("Z", usize::MAX), 0);
    }

    #[test]
    fn name_prefix_scan() {
        let mut store = DataStore::new();
        obj(&mut store, "Alarms", 0);
        let alarms = store.object_by_name("Alarms").unwrap().id;
        let text = store.allocate_object_id();
        store.insert_object(ObjectRecord::new(
            text,
            ClassId(1),
            ObjectName::parse("Alarms.Text").unwrap(),
            Some(alarms),
        ));
        obj(&mut store, "AlarmHandler", 2);
        obj(&mut store, "Sensor", 2);
        assert_eq!(store.objects_with_name_prefix("Alarms").len(), 2);
        assert_eq!(store.objects_with_name_prefix("Alarm").len(), 3);
        assert_eq!(store.objects_with_name_prefix("Z").len(), 0);
    }
}
