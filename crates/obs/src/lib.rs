//! # seed-obs
//!
//! The observability core of the SEED reproduction: a dependency-free, lock-free metrics
//! registry plus a structured-event tracer.  It sits **below** every other crate (storage
//! included) so any layer can record into it.
//!
//! * [`metrics`] — [`Counter`], [`Gauge`] and fixed-bucket [`Histogram`] handles.  A handle is
//!   a clonable wrapper over `Arc`ed atomics: recording is a few relaxed atomic ops — no lock,
//!   no allocation, no syscall — so the handles live on the hottest paths (the WAL append
//!   loop, the reactor's read pump, the snapshot publisher).
//! * [`events`] — [`EventRing`], a bounded ring of recent structured events plus a leveled,
//!   rate-limited stderr logger, for the *rare and diagnostic* (connection failures, slow
//!   operations, replication resets).
//! * [`Registry`] — the cold-path directory: handles are registered **by name** (get or
//!   create, behind one mutex), snapshots ([`RegistrySnapshot`]) capture every metric at once,
//!   and [`RegistrySnapshot::to_prometheus_text`] renders the Prometheus text exposition
//!   format.  [`global()`] is the process-wide registry every subsystem records into.
//!
//! The metric name catalog, the exposition format and the slow-operation log fields are
//! documented in `docs/OBSERVABILITY.md`.
//!
//! ## Compile-time off switch
//!
//! With the `off` cargo feature every recording body folds to a no-op at compile time; the
//! registry, snapshot and exposition surfaces stay available (they just stay empty), so
//! dependent code needs no `cfg` of its own.  At runtime, [`Registry::set_enabled`] is the
//! cheap dynamic switch (one relaxed atomic load per record).
//!
//! ```
//! let registry = seed_obs::Registry::new();
//! let requests = registry.counter("net_requests_total");
//! let latency = registry.histogram("net_request_us_retrieve");
//! requests.inc();
//! latency.observe(120);
//! let snap = registry.snapshot();
//! if seed_obs::recording_compiled_in() {
//!     assert_eq!(snap.counter("net_requests_total"), Some(1));
//!     assert!(snap.to_prometheus_text().contains("net_request_us_retrieve_count 1"));
//! }
//! ```

pub mod events;
pub mod metrics;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

pub use events::{Event, EventRing, Level, RING_CAP, STDERR_BUDGET_PER_SEC};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// Default slow-operation threshold: a request that takes longer lands in the event ring (and,
/// level permitting, on stderr) with its kind, client and query text.
pub const DEFAULT_SLOW_OP: Duration = Duration::from_millis(250);

/// Whether recording was compiled in (i.e. the `off` feature is **not** active).  Lets callers
/// and tests distinguish "no events happened" from "events are compiled out".
pub fn recording_compiled_in() -> bool {
    cfg!(not(feature = "off"))
}

/// One registered metric (the registry's directory entry).
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The metric directory: names → handles, plus the event ring and the slow-op threshold.
///
/// Registration and snapshotting are the cold path and serialize on one mutex; the handles
/// returned are plain atomics and never touch the registry again.  Re-registering a name
/// returns a clone of the existing handle, so every subsystem that says
/// `registry.counter("x")` shares one underlying value.
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
    /// Shared on/off flag cloned into every handle (the runtime switch).
    enabled: Arc<AtomicBool>,
    events: EventRing,
    /// Slow-operation threshold in microseconds.
    slow_op_micros: AtomicU64,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty registry with recording enabled.
    pub fn new() -> Self {
        Self {
            metrics: Mutex::new(BTreeMap::new()),
            enabled: Arc::new(AtomicBool::new(true)),
            events: EventRing::new(),
            slow_op_micros: AtomicU64::new(DEFAULT_SLOW_OP.as_micros() as u64),
        }
    }

    /// Gets or creates the counter registered under `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind (a programming error: names
    /// are the identity).
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let entry = metrics.entry(name.to_string()).or_insert_with(|| {
            Metric::Counter(Counter {
                value: Arc::new(AtomicU64::new(0)),
                on: self.enabled.clone(),
            })
        });
        match entry {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} is registered as a different kind"),
        }
    }

    /// Gets or creates the gauge registered under `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let entry = metrics.entry(name.to_string()).or_insert_with(|| {
            Metric::Gauge(Gauge { value: Arc::new(AtomicI64::new(0)), on: self.enabled.clone() })
        });
        match entry {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} is registered as a different kind"),
        }
    }

    /// Gets or creates the histogram registered under `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let entry = metrics.entry(name.to_string()).or_insert_with(|| {
            Metric::Histogram(Histogram {
                inner: Arc::new(metrics::HistogramInner::new()),
                on: self.enabled.clone(),
            })
        });
        match entry {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} is registered as a different kind"),
        }
    }

    /// The runtime recording switch (all handles of this registry share it).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is currently enabled.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The structured-event ring and stderr logger of this registry.
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// The slow-operation threshold ([`DEFAULT_SLOW_OP`] unless overridden).
    pub fn slow_op_threshold(&self) -> Duration {
        Duration::from_micros(self.slow_op_micros.load(Ordering::Relaxed))
    }

    /// Overrides the slow-operation threshold.
    pub fn set_slow_op_threshold(&self, threshold: Duration) {
        self.slow_op_micros
            .store(threshold.as_micros().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    }

    /// Records an operation that took `elapsed` **if** it crossed the slow-op threshold:
    /// bumps `slow_ops_total` and emits a `slowop` warning with the kind, the client (when
    /// known) and the caller's detail fields (query text, plan, peer).  Returns whether the
    /// operation was slow.
    pub fn observe_op(
        &self,
        kind: &'static str,
        client: Option<u64>,
        elapsed: Duration,
        detail: &[(&str, String)],
    ) -> bool {
        if elapsed < self.slow_op_threshold() {
            return false;
        }
        self.counter("slow_ops_total").inc();
        let mut fields: Vec<(&str, String)> = Vec::with_capacity(detail.len() + 3);
        fields.push(("kind", kind.to_string()));
        if let Some(client) = client {
            fields.push(("client", client.to_string()));
        }
        fields.push(("elapsed_ms", format!("{:.1}", elapsed.as_secs_f64() * 1e3)));
        fields.extend(detail.iter().map(|(k, v)| (*k, v.clone())));
        self.events.emit(Level::Warn, "slowop", "slow operation", &fields);
        true
    }

    /// A point-in-time copy of every registered metric, sorted by name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let mut snap = RegistrySnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push(h.snapshot(name)),
            }
        }
        snap
    }
}

/// The process-global registry every SEED subsystem records into (net, storage, MVCC, locks,
/// replication).  Created enabled on first use.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A point-in-time copy of a whole [`Registry`]: every counter, gauge and histogram, sorted by
/// name.  This is what `Request::Stats` returns over the wire and what the Prometheus
/// exposition renders.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// `(name, total)` pairs in name order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs in name order.
    pub gauges: Vec<(String, i64)>,
    /// Histogram snapshots in name order.
    pub histograms: Vec<HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Looks a counter up by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks a gauge up by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks a histogram up by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the snapshot in the Prometheus text exposition format (version 0.0.4):
    /// counters and gauges as single samples, histograms as cumulative `_bucket{le="..."}`
    /// series plus `_sum` and `_count`.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for h in &self.histograms {
            let name = &h.name;
            out.push_str(&format!("# TYPE {name} histogram\n"));
            for (i, (bound, cumulative)) in h.buckets.iter().enumerate() {
                if i + 1 == h.buckets.len() {
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
                } else {
                    out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
                }
            }
            out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
        }
        out
    }
}

// The recording-assertion tests require recording to be compiled in; under `off` the
// surfaces stay available but empty, which `off_keeps_surfaces_available` pins instead.
#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;

    #[test]
    fn registration_is_get_or_create_and_handles_share_state() {
        let registry = Registry::new();
        let a = registry.counter("hits_total");
        let b = registry.counter("hits_total");
        a.inc();
        b.add(2);
        assert_eq!(registry.snapshot().counter("hits_total"), Some(3));
        let g = registry.gauge("depth");
        g.set(7);
        g.dec();
        assert_eq!(registry.snapshot().gauge("depth"), Some(6));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("x");
        registry.gauge("x");
    }

    #[test]
    fn runtime_disable_stops_recording_but_keeps_values() {
        let registry = Registry::new();
        let c = registry.counter("c_total");
        c.inc();
        registry.set_enabled(false);
        c.inc();
        assert_eq!(registry.snapshot().counter("c_total"), Some(1));
        registry.set_enabled(true);
        c.inc();
        assert_eq!(registry.snapshot().counter("c_total"), Some(2));
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let registry = Registry::new();
        registry.counter("z_total").inc();
        registry.counter("a_total").add(4);
        registry.histogram("lat_us").observe(100);
        let snap = registry.snapshot();
        assert_eq!(snap.counters[0].0, "a_total");
        assert_eq!(snap.counters[1].0, "z_total");
        let h = snap.histogram("lat_us").expect("histogram present");
        assert_eq!(h.count, 1);
        assert!(h.p50() >= 100);
        assert!(snap.histogram("missing").is_none());
    }

    #[test]
    fn prometheus_exposition_renders_all_three_kinds() {
        let registry = Registry::new();
        registry.counter("reqs_total").add(5);
        registry.gauge("conns").set(2);
        let h = registry.histogram("lat_us");
        h.observe(3);
        h.observe(300);
        let text = registry.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE reqs_total counter\nreqs_total 5\n"));
        assert!(text.contains("# TYPE conns gauge\nconns 2\n"));
        assert!(text.contains("# TYPE lat_us histogram\n"));
        assert!(text.contains("lat_us_bucket{le=\"4\"} 1\n"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("lat_us_sum 303\n"));
        assert!(text.contains("lat_us_count 2\n"));
    }

    #[test]
    fn slow_ops_cross_the_threshold_into_the_ring() {
        let registry = Registry::new();
        registry.events().set_stderr_level(None);
        registry.set_slow_op_threshold(Duration::from_millis(10));
        assert!(!registry.observe_op("query", Some(1), Duration::from_millis(5), &[]));
        assert!(registry.observe_op(
            "query",
            Some(1),
            Duration::from_millis(50),
            &[("text", "count Data".to_string())],
        ));
        assert_eq!(registry.snapshot().counter("slow_ops_total"), Some(1));
        let events = registry.events().recent();
        assert_eq!(events.len(), 1);
        let line = events[0].render();
        assert!(line.contains("slowop"), "{line}");
        assert!(line.contains("kind=query"), "{line}");
        assert!(line.contains("client=1"), "{line}");
        assert!(line.contains("text=count Data"), "{line}");
    }

    #[test]
    fn prometheus_text_is_empty_only_when_nothing_is_registered() {
        let registry = Registry::new();
        assert!(registry.snapshot().is_empty());
        assert_eq!(registry.snapshot().to_prometheus_text(), "");
    }

    #[test]
    fn histogram_survives_an_eight_thread_hammer_with_exact_totals() {
        // The satellite concurrency bar: 8 threads × 50k observations each, exact total count
        // and sum, monotone percentiles.
        let registry = Registry::new();
        let h = registry.histogram("hammer_us");
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 50_000;
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        h.observe((t as u64 * 31 + i) % 4096);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("hammer thread");
        }
        let snap = registry.snapshot();
        let h = snap.histogram("hammer_us").expect("present");
        assert_eq!(h.count, THREADS as u64 * PER_THREAD);
        assert_eq!(h.buckets.last().map(|&(_, c)| c), Some(THREADS as u64 * PER_THREAD));
        let (p50, p90, p99) = (h.p50(), h.percentile(0.90), h.p99());
        assert!(p50 <= p90 && p90 <= p99, "percentiles must be monotone: {p50} {p90} {p99}");
        assert!(p99 <= 4096, "no observation exceeded the input range");
    }
}

#[cfg(all(test, feature = "off"))]
mod off_tests {
    use super::*;

    #[test]
    fn off_keeps_surfaces_available() {
        let registry = Registry::new();
        let c = registry.counter("c_total");
        c.inc();
        assert_eq!(c.get(), 0, "recording is compiled out");
        registry.histogram("h_us").observe(9);
        registry.events().emit(Level::Error, "test", "dropped", &[]);
        assert!(registry.events().recent().is_empty());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("c_total"), Some(0));
        assert_eq!(snap.histogram("h_us").map(|h| h.count), Some(0));
        assert!(!snap.to_prometheus_text().is_empty(), "exposition still renders names");
    }
}
