//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The real crate generates `Serialize`/`Deserialize` implementations from the type
//! definition.  SEED's own persistence goes through `seed-storage`'s hand-written binary
//! `Encoder`/`Decoder` (`crates/storage/src/codec.rs`), so the derives on schema and core
//! types are forward-looking annotations, not load-bearing: no code in the workspace requires a
//! `Serialize`/`Deserialize` *bound* or calls a serde method.  The stand-in therefore accepts
//! the derive syntactically and emits nothing, keeping the annotations compiling offline until
//! the crates.io dependency is restored (a one-line change in the root `Cargo.toml`).

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
