//! Parser for the retrieval language.

use crate::ast::{Comparison, Navigation, Query, Selection};
use crate::error::{QueryError, QueryResult};
use crate::lexer::{tokenize, Token};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        self.tokens.get(self.pos).unwrap_or(&Token::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> QueryError {
        QueryError::Parse { position: self.pos, message: message.into() }
    }

    fn expect_word(&mut self) -> QueryResult<String> {
        match self.bump() {
            Token::Word(w) => Ok(w),
            other => Err(self.error(format!("expected a word, found {other:?}"))),
        }
    }

    fn expect_literal(&mut self) -> QueryResult<String> {
        match self.bump() {
            Token::Literal(s) => Ok(s),
            other => Err(self.error(format!("expected a quoted literal, found {other:?}"))),
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Token::Word(w) if w == word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_comparison(&mut self) -> QueryResult<Comparison> {
        match self.bump() {
            Token::Equal => Ok(Comparison::Equal),
            Token::NotEqual => Ok(Comparison::NotEqual),
            Token::Less => Ok(Comparison::Less),
            Token::Greater => Ok(Comparison::Greater),
            other => Err(self.error(format!("expected a comparison operator, found {other:?}"))),
        }
    }

    fn parse_selection(&mut self) -> QueryResult<Selection> {
        let word = self.expect_word()?;
        match word.as_str() {
            "name" => {
                if self.eat_word("prefix") {
                    Ok(Selection::NamePrefix(self.expect_literal()?))
                } else {
                    match self.parse_comparison()? {
                        Comparison::Equal => Ok(Selection::NameEquals(self.expect_literal()?)),
                        _ => Err(self.error("only '=' and 'prefix' apply to names")),
                    }
                }
            }
            "value" => {
                let cmp = self.parse_comparison()?;
                Ok(Selection::Value(cmp, self.expect_literal()?))
            }
            "related" => {
                let path = self.expect_word()?;
                let (association, role) = path
                    .split_once('.')
                    .ok_or_else(|| self.error("expected <Association>.<role> after 'related'"))?;
                Ok(Selection::Related {
                    association: association.to_string(),
                    role: role.to_string(),
                })
            }
            "incomplete" => Ok(Selection::Incomplete),
            other => Err(self.error(format!("unknown selection '{other}'"))),
        }
    }

    fn parse_body(&mut self) -> QueryResult<(String, bool, Vec<Selection>, Option<Navigation>)> {
        let exact = self.eat_word("exactly");
        let class = self.expect_word()?;
        let mut selections = Vec::new();
        let mut navigate = None;
        loop {
            if self.eat_word("where") {
                selections.push(self.parse_selection()?);
                // Allow "and" chaining after a where.
                while self.eat_word("and") {
                    selections.push(self.parse_selection()?);
                }
            } else if self.eat_word("navigate") {
                let path = self.expect_word()?;
                let (association, to_role) = path
                    .split_once('.')
                    .ok_or_else(|| self.error("expected <Association>.<role> after 'navigate'"))?;
                if !self.eat_word("from") {
                    return Err(self.error("expected 'from' after the navigation path"));
                }
                let from_object = self.expect_literal()?;
                navigate = Some(Navigation {
                    association: association.to_string(),
                    to_role: to_role.to_string(),
                    from_object,
                });
            } else {
                break;
            }
        }
        match self.peek() {
            Token::Eof => Ok((class, exact, selections, navigate)),
            other => Err(self.error(format!("unexpected trailing input: {other:?}"))),
        }
    }
}

/// Parses query text into a [`Query`].  A leading `explain` wraps the query in
/// [`Query::Explain`], asking for the physical plan instead of the result.
pub fn parse(input: &str) -> QueryResult<Query> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut verb = parser.expect_word()?;
    let explain = verb == "explain";
    if explain {
        verb = parser.expect_word()?;
    }
    let query = match verb.as_str() {
        "find" => {
            let (class, exact, selections, navigate) = parser.parse_body()?;
            Query::Find { class, exact, selections, navigate }
        }
        "count" => {
            let (class, exact, selections, navigate) = parser.parse_body()?;
            Query::Count { class, exact, selections, navigate }
        }
        other => {
            return Err(QueryError::Parse {
                position: 0,
                message: format!("queries start with 'find' or 'count', not '{other}'"),
            })
        }
    };
    Ok(if explain { Query::Explain(Box::new(query)) } else { query })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_find() {
        let q = parse("find Data").unwrap();
        assert_eq!(
            q,
            Query::Find { class: "Data".into(), exact: false, selections: vec![], navigate: None }
        );
        let q = parse("find exactly Data").unwrap();
        assert!(matches!(q, Query::Find { exact: true, .. }));
        assert!(parse("count Action").unwrap().is_count());
    }

    #[test]
    fn parses_selections() {
        let q = parse(r#"find Thing where name = "Alarms""#).unwrap();
        match q {
            Query::Find { selections, .. } => {
                assert_eq!(selections, vec![Selection::NameEquals("Alarms".into())]);
            }
            _ => panic!("wrong query kind"),
        }
        let q = parse(r#"find Data where name prefix "Alarm" and value != "x""#).unwrap();
        match q {
            Query::Find { selections, .. } => {
                assert_eq!(selections.len(), 2);
                assert_eq!(selections[1], Selection::Value(Comparison::NotEqual, "x".into()));
            }
            _ => panic!("wrong query kind"),
        }
        let q = parse("find Data where related Write.to").unwrap();
        match q {
            Query::Find { selections, .. } => {
                assert_eq!(
                    selections,
                    vec![Selection::Related { association: "Write".into(), role: "to".into() }]
                );
            }
            _ => panic!("wrong query kind"),
        }
        let q = parse("find Data where incomplete").unwrap();
        match q {
            Query::Find { selections, .. } => assert_eq!(selections, vec![Selection::Incomplete]),
            _ => panic!("wrong query kind"),
        }
    }

    #[test]
    fn parses_navigation() {
        let q = parse(r#"find Action navigate Access.by from "Alarms""#).unwrap();
        match q {
            Query::Find { navigate: Some(nav), .. } => {
                assert_eq!(nav.association, "Access");
                assert_eq!(nav.to_role, "by");
                assert_eq!(nav.from_object, "Alarms");
            }
            _ => panic!("wrong query kind"),
        }
    }

    #[test]
    fn parses_explain() {
        let q = parse(r#"explain find Data where name prefix "Alarm""#).unwrap();
        assert!(q.is_explain());
        assert_eq!(q.class(), "Data");
        match q {
            Query::Explain(inner) => assert!(matches!(*inner, Query::Find { .. })),
            _ => panic!("wrong query kind"),
        }
        assert!(parse("explain count Action").unwrap().is_count());
    }

    #[test]
    fn rejects_malformed_queries() {
        for bad in [
            "",
            "destroy Data",
            "find",
            "find Data where",
            "find Data where bogus = \"x\"",
            "find Data where name > \"x\"",
            "find Data navigate Access from \"Alarms\"",
            "find Data navigate Access.by \"Alarms\"",
            "find Data extra stuff",
            "find Data where related Access",
            "explain",
            "explain explain find Data",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }
}
