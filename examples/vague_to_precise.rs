//! The Figure 3 workflow: storing vague information and making it precise step by step.
//!
//! The paper walks through exactly this sequence: "There is a thing with name 'Alarms'" →
//! "it is a data object which is accessed by action 'Sensor'" → "'Alarms' is an output" →
//! "'Alarms' is an output written twice by 'Sensor', and writing is repeated in case of error."
//!
//! Run with `cargo run --example vague_to_precise`.

use seed_core::{Database, Value};
use seed_schema::figure3_schema;

fn describe(db: &Database, name: &str) -> String {
    let Ok(object) = db.object_by_name(name) else { return format!("'{name}' unknown") };
    let class = db.schema().class(object.class).map(|c| c.name.clone()).unwrap_or_default();
    let mut lines = vec![format!("'{name}' is a {class}")];
    for rel in db.relationships(object.id) {
        let assoc = db
            .schema()
            .association(rel.record.association)
            .map(|a| a.name.clone())
            .unwrap_or_default();
        let partner = rel
            .record
            .bindings
            .iter()
            .find(|(_, o)| *o != object.id)
            .and_then(|(_, o)| db.object(*o).ok())
            .map(|o| o.name.to_string())
            .unwrap_or_default();
        let attrs: Vec<String> =
            rel.record.attributes.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let attr_text =
            if attrs.is_empty() { String::new() } else { format!(" ({})", attrs.join(", ")) };
        lines.push(format!("    {assoc} with {partner}{attr_text}"));
    }
    lines.join("\n")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new(figure3_schema());
    let sensor = db.create_object("Action", "Sensor")?;

    println!("Step 1 — vague: \"There is a thing with name 'Alarms'\"");
    let alarms = db.create_object("Thing", "Alarms")?;
    println!("{}", describe(&db, "Alarms"));
    println!("incompleteness findings: {}\n", db.completeness_report().len());

    println!("Step 2 — it is a data object, accessed by 'Sensor'");
    db.reclassify_object(alarms, "Data")?;
    let access = db.create_relationship("Access", &[("from", alarms), ("by", sensor)])?;
    println!("{}", describe(&db, "Alarms"));
    println!("incompleteness findings: {}\n", db.completeness_report().len());

    println!("Step 3 — it is an output");
    db.reclassify_object(alarms, "OutputData")?;
    println!("{}", describe(&db, "Alarms"));
    println!();

    println!("Step 4 — written twice by 'Sensor', repeated in case of error");
    db.reclassify_relationship(access, "Write")?;
    db.set_relationship_attribute(access, "NumberOfWrites", Value::Integer(2))?;
    db.set_relationship_attribute(access, "ErrorHandling", Value::symbol("repeat"))?;
    println!("{}", describe(&db, "Alarms"));
    println!("incompleteness findings: {}\n", db.completeness_report().len());

    // Throughout, consistency was checked on every step; steps that would have been wrong were
    // rejected.  For instance the Write relationship could not have been created while Alarms
    // was still a plain Data object:
    println!("Counter-example — trying the precise statement too early:");
    let mut early = Database::new(figure3_schema());
    let a = early.create_object("Data", "Alarms")?;
    let s = early.create_object("Action", "Sensor")?;
    match early.create_relationship("Write", &[("to", a), ("by", s)]) {
        Err(e) => println!("rejected as expected: {e}"),
        Ok(_) => println!("BUG: accepted"),
    }
    Ok(())
}
