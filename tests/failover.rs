//! Integration: replica promotion and failover, driven by a deterministic in-process cluster
//! harness — a durable primary and two [`ReplicaNode`]s over loopback, scripted through
//! kill / fence / promote / re-point / rejoin sequences.  The invariants pinned here:
//!
//! - **No committed write is ever lost** across a failover: every check-in acknowledged to a
//!   client before the fault is readable on the promoted primary afterwards.
//! - **Exactly one ready primary per topology epoch**: the fence is a compare-and-swap on the
//!   epoch, so racing promotions elect one winner and the loser stays a replica.
//! - **SPADES reports are byte-identical across the failover**: the promoted node, a
//!   re-pointed replica and the rejoined old primary all render the same specification report.
//!
//! The fencing semantics and the operator's runbook are `docs/OPERATIONS.md` §7; the wire
//! frames (`Promote`, `Promoted`, the `Fenced` error) are `docs/PROTOCOL.md`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use seed::core::Database;
use seed::net::{RemoteClient, ReplicaConfig, ReplicaNode, SeedNetServer};
use seed::schema::figure3_schema;
use seed::server::{ReplicationRole, SeedServer, ServerError, Update};
use seed::spades::{specification_report, RemoteBackend};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir(name: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::SeqCst);
    let dir =
        std::env::temp_dir().join(format!("seed-failover-it-{}-{name}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_primary(dir: &std::path::Path) -> SeedNetServer {
    let db = Database::create_durable(dir, figure3_schema()).unwrap();
    SeedNetServer::bind(SeedServer::new(db), "127.0.0.1:0").unwrap()
}

fn primary_lsn(net: &SeedNetServer) -> u64 {
    net.core().with_database(|db| db.durable_lsn().unwrap())
}

fn node_lsn(node: &ReplicaNode) -> u64 {
    node.core().with_database(|db| db.durable_lsn().unwrap_or(0))
}

fn create(name: impl Into<String>) -> Vec<Update> {
    vec![Update::CreateObject { class: "Data".into(), name: name.into() }]
}

fn report_via(addr: std::net::SocketAddr) -> String {
    let backend = RemoteBackend::new(RemoteClient::connect(addr).unwrap()).unwrap();
    specification_report(&backend)
}

/// How many of the given endpoints currently report themselves a **ready primary**.
fn ready_primaries(addrs: &[std::net::SocketAddr]) -> usize {
    addrs
        .iter()
        .filter(|addr| {
            let Ok(mut probe) = RemoteClient::connect(**addr) else { return false };
            let Ok(health) = probe.health() else { return false };
            health.ready && health.role == ReplicationRole::Primary
        })
        .count()
}

/// The headline scenario: a controlled switchover.  The old primary stays up and is fenced;
/// the promoted replica drains the shipped tail first, so **zero** committed writes are lost;
/// the second replica is re-pointed under the new epoch; the old primary rejoins as a replica;
/// and the SPADES specification report is byte-identical on all three nodes afterwards.
#[test]
fn controlled_promotion_fences_the_old_primary_and_loses_no_committed_write() {
    let primary_dir = temp_dir("ctl-primary");
    let r1_dir = temp_dir("ctl-r1");
    let r2_dir = temp_dir("ctl-r2");
    let primary = durable_primary(&primary_dir);
    let old_addr = primary.local_addr();
    let r1 = ReplicaNode::start(&r1_dir, old_addr, "127.0.0.1:0").unwrap();
    let r2 = ReplicaNode::start(&r2_dir, old_addr, "127.0.0.1:0").unwrap();
    let new_addr = r1.local_addr();

    // Committed writes: every one of these check-ins was acknowledged to the client.
    let mut writer = RemoteClient::connect(old_addr).unwrap();
    for i in 0..20 {
        writer.checkin(create(format!("Committed{i}"))).unwrap();
    }
    let target = primary_lsn(&primary);
    assert!(r1.wait_for_lsn(target, Duration::from_secs(30)));

    // Promote r1 over the wire (r2 is deliberately lagging-agnostic: it gets re-pointed
    // later).  The promotion fences the old primary and drains the tail before flipping.
    let mut operator = RemoteClient::connect(new_addr).unwrap();
    let receipt = operator.promote(1, &new_addr.to_string()).unwrap();
    assert_eq!(receipt.epoch, 1);
    assert!(
        receipt.last_lsn > 0,
        "the receipt reports the promoted node's durable end of log (its own LSN space)"
    );

    // The old primary is fenced: every write surface refuses with the new primary's address,
    // and its health flips not-ready while still answering (liveness without write service).
    match writer.checkin(create("LostCause")).unwrap_err() {
        ServerError::Fenced { new_primary, epoch } => {
            assert_eq!(new_primary, new_addr.to_string());
            assert_eq!(epoch, 1);
        }
        other => panic!("expected Fenced from the old primary, got {other:?}"),
    }
    let health = writer.health().unwrap();
    assert!(!health.ready, "a fenced node must not report ready");
    assert!(health.detail.contains("fenced at epoch 1"), "detail: {}", health.detail);

    // Exactly one ready primary in the cluster.
    assert_eq!(ready_primaries(&[old_addr, new_addr, r2.local_addr()]), 1);

    // Every committed write survived, and the new primary accepts new ones.
    let mut new_writer = RemoteClient::connect(new_addr).unwrap();
    for i in 0..20 {
        let name = format!("Committed{i}");
        assert_eq!(new_writer.retrieve(&name).unwrap().name.to_string(), name);
    }
    new_writer.checkin(create("AfterFailover")).unwrap();

    // A client still pointed at the fenced primary re-routes itself off the Fenced rejection
    // and replays the write against the promoted node — no application involvement.
    let mut fanout =
        RemoteClient::connect_read_preferred(old_addr, &[] as &[std::net::SocketAddr]).unwrap();
    fanout.checkin(create("ViaReroute")).unwrap();
    assert_eq!(fanout.primary_addr(), new_addr, "the client adopted the promoted node");
    assert_eq!(fanout.retrieve("ViaReroute").unwrap().name.to_string(), "ViaReroute");
    fanout.close().unwrap();

    // Re-point r2 at the new primary under epoch 1: its cursor belongs to the old log, so the
    // epoch bump forces a full-snapshot resync and it converges on the new stream.
    r2.shutdown();
    let r2 = ReplicaNode::with_config(
        &r2_dir,
        new_addr,
        "127.0.0.1:0",
        ReplicaConfig { epoch: 1, ..ReplicaConfig::default() },
    )
    .unwrap();
    // Convergence on the new stream implies the reset ran: the cursor belongs to the old log,
    // so the only way to the new primary's LSNs is the epoch-forced snapshot resync.
    assert!(r2.wait_for_lsn(node_lsn(&r1), Duration::from_secs(30)));
    assert!(r2.resets_applied() >= 1, "the epoch bump must force a snapshot resync");

    // The old primary rejoins as a replica on its own directory: the store has a meta record
    // but no replication cursor, which forces the same resync path (the demotion).
    primary.shutdown();
    let rejoined = ReplicaNode::start(&primary_dir, new_addr, "127.0.0.1:0").unwrap();
    assert!(rejoined.wait_for_lsn(node_lsn(&r1), Duration::from_secs(30)));
    assert!(rejoined.resets_applied() >= 1, "a demoted primary must resync from snapshot");
    let mut demoted_reader = RemoteClient::connect(rejoined.local_addr()).unwrap();
    match demoted_reader.checkin(create("StillNotHere")).unwrap_err() {
        ServerError::ReadOnlyReplica { primary } => assert_eq!(primary, new_addr.to_string()),
        other => panic!("expected the rejoined node to redirect writes, got {other:?}"),
    }

    // SPADES reports are byte-identical across the whole post-failover cluster.
    let expected = report_via(new_addr);
    assert!(expected.contains("elements"), "report looks real: {expected}");
    assert_eq!(report_via(r2.local_addr()), expected, "re-pointed replica diverged");
    assert_eq!(report_via(rejoined.local_addr()), expected, "rejoined old primary diverged");

    // Still exactly one ready primary after the full topology change.
    assert_eq!(
        ready_primaries(&[new_addr, r2.local_addr(), rejoined.local_addr()]),
        1,
        "one epoch, one primary"
    );

    r2.shutdown();
    rejoined.shutdown();
    r1.shutdown();
    for dir in [&primary_dir, &r1_dir, &r2_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// The crash scenario: the primary dies outright.  A caught-up replica is promoted (the fence
/// is skipped — a dead node cannot be fenced), every write acknowledged **before** the kill
/// survives, and a [`seed::net::ReadPreferredClient`] connected before the fault re-routes its
/// reads and writes to the promoted node without application involvement.
#[test]
fn killing_the_primary_then_promoting_a_replica_keeps_every_acked_write() {
    let primary_dir = temp_dir("kill-primary");
    let r1_dir = temp_dir("kill-r1");
    let r2_dir = temp_dir("kill-r2");
    let primary = durable_primary(&primary_dir);
    let old_addr = primary.local_addr();
    let r1 = ReplicaNode::start(&r1_dir, old_addr, "127.0.0.1:0").unwrap();
    let r2 = ReplicaNode::start(&r2_dir, old_addr, "127.0.0.1:0").unwrap();
    let new_addr = r1.local_addr();

    let mut writer = RemoteClient::connect(old_addr).unwrap();
    for i in 0..10 {
        writer.checkin(create(format!("Acked{i}"))).unwrap();
    }
    // The shipped tail covers every acknowledged write before the fault hits.
    let target = primary_lsn(&primary);
    assert!(r1.wait_for_lsn(target, Duration::from_secs(30)));

    // A topology-aware client, connected while the old primary was still alive.  Its read
    // rotation only holds r1 so the post-failover reads are deterministic (r2 stays pointed at
    // the dead node until the operator re-points it).
    let mut fanout = RemoteClient::connect_read_preferred(old_addr, &[new_addr]).unwrap();
    assert_eq!(fanout.retrieve("Acked0").unwrap().name.to_string(), "Acked0");

    // Kill.  No fence is possible; promotion proceeds on the shipped tail alone.
    primary.shutdown();
    let receipt = r1.promote(1, &new_addr.to_string()).unwrap();
    assert_eq!(receipt.epoch, 1);

    // Every write acknowledged before the kill is on the new primary.
    let mut reader = RemoteClient::connect(new_addr).unwrap();
    for i in 0..10 {
        let name = format!("Acked{i}");
        assert_eq!(reader.retrieve(&name).unwrap().name.to_string(), name);
    }

    // The fanout client's write connection is dead; the next write sweeps the known endpoints
    // with health probes, adopts the promoted node, and replays.  Reads replay the same way.
    fanout.checkin(create("PostKill")).unwrap();
    assert_eq!(fanout.primary_addr(), new_addr);
    assert_eq!(fanout.retrieve("PostKill").unwrap().name.to_string(), "PostKill");
    assert_eq!(fanout.query("count Data").unwrap().count, 11);
    fanout.close().unwrap();

    // Re-pointing the surviving replica under the new epoch converges it on the new stream,
    // and the reports agree byte-for-byte.
    r2.shutdown();
    let r2 = ReplicaNode::with_config(
        &r2_dir,
        new_addr,
        "127.0.0.1:0",
        ReplicaConfig { epoch: 1, ..ReplicaConfig::default() },
    )
    .unwrap();
    assert!(r2.wait_for_lsn(node_lsn(&r1), Duration::from_secs(30)));
    assert_eq!(report_via(r2.local_addr()), report_via(new_addr));
    assert_eq!(ready_primaries(&[new_addr, r2.local_addr()]), 1);

    r2.shutdown();
    r1.shutdown();
    for dir in [&primary_dir, &r1_dir, &r2_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// A promotion that arrives with a stale epoch is refused outright — fencing is a
/// compare-and-swap, not a blind overwrite — and a second promotion under a **higher** epoch
/// supersedes the first (the promote-over-promote chain an operator uses to move the primary
/// role again).
#[test]
fn stale_epochs_are_refused_and_higher_epochs_supersede() {
    let primary_dir = temp_dir("epoch-primary");
    let r1_dir = temp_dir("epoch-r1");
    let primary = durable_primary(&primary_dir);
    let old_addr = primary.local_addr();
    let r1 = ReplicaNode::start(&r1_dir, old_addr, "127.0.0.1:0").unwrap();
    let mut writer = RemoteClient::connect(old_addr).unwrap();
    writer.checkin(create("Seeded")).unwrap();
    assert!(r1.wait_for_lsn(primary_lsn(&primary), Duration::from_secs(30)));

    // Epoch 0 is never a valid promotion epoch (the cluster starts there).
    match r1.promote(0, &r1.local_addr().to_string()).unwrap_err() {
        ServerError::Protocol(message) => assert!(message.contains("stale promotion epoch")),
        other => panic!("expected a stale-epoch refusal, got {other:?}"),
    }

    // Epoch 2 promotes r1; re-sending any epoch <= 2 to the fenced primary is refused with
    // the winner's address.
    r1.promote(2, &r1.local_addr().to_string()).unwrap();
    match writer.promote(2, "127.0.0.1:1").unwrap_err() {
        ServerError::Fenced { new_primary, epoch } => {
            assert_eq!(new_primary, r1.local_addr().to_string());
            assert_eq!(epoch, 2);
        }
        other => panic!("expected the fenced primary to name the winner, got {other:?}"),
    }

    // A higher epoch supersedes: fencing the *promoted* node works the same way, because a
    // promoted replica is a primary like any other.
    let mut new_client = RemoteClient::connect(r1.local_addr()).unwrap();
    let receipt = new_client.promote(3, "127.0.0.1:2").unwrap();
    assert_eq!(receipt.epoch, 3);
    match new_client.checkin(create("TooLate")).unwrap_err() {
        ServerError::Fenced { epoch, .. } => assert_eq!(epoch, 3),
        other => panic!("expected the superseded primary to be fenced, got {other:?}"),
    }

    r1.shutdown();
    primary.shutdown();
    for dir in [&primary_dir, &r1_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The promotion race: two operators send concurrent `Promote` requests for the **same**
    /// epoch to two different replicas.  The old primary's epoch compare-and-swap arbitrates:
    /// exactly one wins, the loser is refused and stays a replica, and the cluster ends with
    /// exactly one ready primary.  The refusal takes one of two shapes depending on how the
    /// race interleaves: a `Fenced` rejection naming the winner (the loser's fence attempt
    /// lost the CAS), or a stale-epoch `Protocol` rejection (the winner's fence record
    /// replicated into the loser *before* its own order ran, so the loser already knew the
    /// epoch was taken).
    #[test]
    fn racing_promotions_elect_exactly_one_winner(stagger_micros in 0u64..5_000) {
        let primary_dir = temp_dir("race-primary");
        let r1_dir = temp_dir("race-r1");
        let r2_dir = temp_dir("race-r2");
        let primary = durable_primary(&primary_dir);
        let old_addr = primary.local_addr();
        let r1 = ReplicaNode::start(&r1_dir, old_addr, "127.0.0.1:0").unwrap();
        let r2 = ReplicaNode::start(&r2_dir, old_addr, "127.0.0.1:0").unwrap();
        let mut writer = RemoteClient::connect(old_addr).unwrap();
        for i in 0..5 {
            writer.checkin(create(format!("Raced{i}"))).unwrap();
        }
        let target = primary_lsn(&primary);
        prop_assert!(r1.wait_for_lsn(target, Duration::from_secs(30)));
        prop_assert!(r2.wait_for_lsn(target, Duration::from_secs(30)));

        // Two concurrent promotions for epoch 1, staggered by a generated delay.
        let addr1 = r1.local_addr();
        let addr2 = r2.local_addr();
        let t1 = std::thread::spawn(move || {
            RemoteClient::connect(addr1)
                .and_then(|mut operator| operator.promote(1, &addr1.to_string()))
        });
        let t2 = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_micros(stagger_micros));
            RemoteClient::connect(addr2)
                .and_then(|mut operator| operator.promote(1, &addr2.to_string()))
        });
        let outcomes = [t1.join().unwrap(), t2.join().unwrap()];
        let winners = outcomes.iter().filter(|o| o.is_ok()).count();
        prop_assert!(winners == 1, "exactly one promotion wins: {:?}", outcomes);

        // The loser was refused — either told who won, or told the epoch was already taken
        // (the winner's fence record can replicate into the loser before its order runs) —
        // and is still a replica.
        let (winner_addr, loser_addr) =
            if outcomes[0].is_ok() { (addr1, addr2) } else { (addr2, addr1) };
        match outcomes.iter().find(|o| o.is_err()).unwrap() {
            Err(ServerError::Fenced { new_primary, epoch }) => {
                prop_assert_eq!(new_primary, &winner_addr.to_string());
                prop_assert_eq!(*epoch, 1);
            }
            Err(ServerError::Protocol(message)) => {
                prop_assert!(
                    message.contains("stale promotion epoch"),
                    "unexpected Protocol refusal: {}",
                    message
                );
            }
            other => prop_assert!(false, "expected the loser to be refused, got {:?}", other),
        }

        // One ready primary; the loser still answers reads as a replica; no write was lost.
        prop_assert_eq!(ready_primaries(&[old_addr, addr1, addr2]), 1);
        let mut winner = RemoteClient::connect(winner_addr).unwrap();
        for i in 0..5 {
            let name = format!("Raced{i}");
            prop_assert_eq!(winner.retrieve(&name).unwrap().name.to_string(), name);
        }
        winner.checkin(create("WonTheRace")).unwrap();
        let mut loser = RemoteClient::connect(loser_addr).unwrap();
        prop_assert_eq!(loser.health().unwrap().role, ReplicationRole::Replica);
        prop_assert!(matches!(
            loser.checkin(create("LostTheRace")),
            Err(ServerError::ReadOnlyReplica { .. })
        ));

        r1.shutdown();
        r2.shutdown();
        primary.shutdown();
        for dir in [&primary_dir, &r1_dir, &r2_dir] {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}
