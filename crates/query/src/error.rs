//! Query-layer errors.

use std::fmt;

/// Result alias for query operations.
pub type QueryResult<T> = Result<T, QueryError>;

/// Errors raised while parsing or executing a query.
#[derive(Debug)]
pub enum QueryError {
    /// The query text could not be parsed.
    Parse {
        /// Byte position of the problem.
        position: usize,
        /// What went wrong.
        message: String,
    },
    /// The query referred to a schema element or object that does not exist.
    Unknown(String),
    /// The underlying database rejected an operation.
    Database(seed_core::SeedError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            QueryError::Unknown(what) => write!(f, "unknown: {what}"),
            QueryError::Database(e) => write!(f, "database error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Database(e) => Some(e),
            _ => None,
        }
    }
}

impl From<seed_core::SeedError> for QueryError {
    fn from(e: seed_core::SeedError) -> Self {
        QueryError::Database(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = QueryError::Parse { position: 4, message: "expected class name".into() };
        assert!(e.to_string().contains("byte 4"));
        let e: QueryError = seed_core::SeedError::NotFound("object".into()).into();
        assert!(matches!(e, QueryError::Database(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(QueryError::Unknown("class 'X'".into()).to_string().contains("class 'X'"));
    }
}
