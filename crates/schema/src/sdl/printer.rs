//! Renders a [`Schema`] back to schema-definition-language text.
//!
//! The output parses back to an equivalent schema (see the round-trip tests in
//! [`super::tests`]), which makes the printer useful for persisting schemas in a readable form
//! and for diffing schema versions.

use std::fmt::Write as _;

use crate::class::ObjectClass;
use crate::domain::Domain;
use crate::ids::ClassId;
use crate::schema::Schema;

fn domain_text(domain: &Domain) -> String {
    match domain {
        Domain::Enumeration(lits) => format!("ENUM({})", lits.join(", ")),
        other => other.keyword(),
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_dependent(schema: &Schema, class: &ObjectClass, out: &mut String, level: usize) {
    indent(out, level);
    let _ = write!(out, "dependent {} [{}]", class.local_name(), class.occurrence);
    if let Some(domain) = &class.domain {
        let _ = write!(out, " : {}", domain_text(domain));
    }
    let children = schema.dependent_classes(class.id);
    if children.is_empty() {
        out.push_str(";\n");
    } else {
        out.push_str(" {\n");
        for child in children {
            print_dependent(schema, child, out, level + 1);
        }
        indent(out, level);
        out.push_str("}\n");
    }
}

fn print_class(schema: &Schema, class: &ObjectClass, out: &mut String) {
    indent(out, 1);
    let _ = write!(out, "class {}", class.name);
    if let Some(sup) = class.superclass {
        let _ = write!(out, " : {}", schema.class(sup).expect("valid superclass").name);
    }
    if class.covering {
        out.push_str(" covering");
    }
    let children = schema.dependent_classes(class.id);
    if children.is_empty() && class.domain.is_none() {
        out.push_str(";\n");
        return;
    }
    out.push_str(" {\n");
    if let Some(domain) = &class.domain {
        indent(out, 2);
        let _ = writeln!(out, "value {};", domain_text(domain));
    }
    for child in children {
        print_dependent(schema, child, out, 2);
    }
    indent(out, 1);
    out.push_str("}\n");
}

/// Renders `schema` as SDL text.
pub fn print(schema: &Schema) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "schema {} {{", schema.name);

    // Independent classes in declaration order; dependents are nested beneath their owners.
    for class in schema.classes() {
        if class.owner.is_none() {
            print_class(schema, class, &mut out);
        }
    }

    for assoc in schema.associations() {
        indent(&mut out, 1);
        let _ = write!(out, "association {}", assoc.name);
        if let Some(sup) = assoc.superassociation {
            let _ = write!(out, " : {}", schema.association(sup).expect("valid super").name);
        }
        if assoc.acyclic {
            out.push_str(" acyclic");
        }
        if assoc.covering {
            out.push_str(" covering");
        }
        out.push_str(" {\n");
        for role in &assoc.roles {
            indent(&mut out, 2);
            let class_name = &schema.class(role.class).expect("valid role class").name;
            let _ = writeln!(out, "role {} : {} [{}];", role.name, class_name, role.cardinality);
        }
        for attr in &assoc.attributes {
            indent(&mut out, 2);
            let _ = write!(out, "attribute {} : {}", attr.name, domain_text(&attr.domain));
            if attr.required {
                out.push_str(" required");
            }
            out.push_str(";\n");
        }
        indent(&mut out, 1);
        out.push_str("}\n");
    }

    out.push_str("}\n");
    out
}

#[allow(unused_imports)]
fn _unused(_: ClassId) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{figure2_schema, figure3_schema};
    use crate::sdl::parse;

    #[test]
    fn printed_figure2_contains_expected_lines() {
        let text = print(&figure2_schema());
        assert!(text.contains("schema Figure2 {"));
        assert!(text.contains("class Data {"));
        assert!(text.contains("dependent Text [0..16] {"));
        assert!(text.contains("dependent Selector [0..1] : STRING;"));
        assert!(text.contains("association Contained acyclic {"));
        assert!(text.contains("role from : Data [1..*];"));
    }

    #[test]
    fn printed_figure3_mentions_generalizations_and_attributes() {
        let text = print(&figure3_schema());
        assert!(text.contains("class Data : Thing {"));
        assert!(text.contains("class Thing covering {"));
        assert!(text.contains("association Read : Access {"));
        assert!(text.contains("attribute NumberOfWrites : INTEGER required;"));
        assert!(text.contains("attribute ErrorHandling : ENUM(abort, repeat);"));
    }

    #[test]
    fn printed_output_parses() {
        for schema in [figure2_schema(), figure3_schema()] {
            let text = print(&schema);
            let reparsed = parse(&text).expect("printer output must be parseable");
            assert_eq!(reparsed.class_count(), schema.class_count());
            assert_eq!(reparsed.association_count(), schema.association_count());
        }
    }
}
