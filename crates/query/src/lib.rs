//! # seed-query
//!
//! A small retrieval language and entity-relationship algebra for SEED.
//!
//! The 1986 prototype "provides the procedures for data creation, update, and simple retrieval
//! by name.  Retrieval with complex queries is not supported."  This crate supplies the obvious
//! extension the paper leaves open, staying close to the entity-relationship algebra it cites
//! (Parent & Spaccapietra, ICDE 1984): queries operate on sets of objects, selections filter by
//! class/name/value, and navigation follows relationships along roles.  The paper's
//! undefined-value semantics are respected throughout: *an undefined object matches nothing*.
//!
//! ## The language
//!
//! ```text
//! find Data                                   -- all visible objects of class Data (and specializations)
//! find exactly Data                           -- without specializations
//! find Thing where name = "Alarms"            -- selection on the name
//! find Data.Text.Selector where value = "Representation"
//! find Data where name prefix "Alarm"         -- hierarchical-name prefix
//! find Action navigate Access.by from "Alarms"  -- objects reached from 'Alarms' via role 'by'
//! find Data where incomplete                  -- objects with completeness findings
//! count Data                                  -- cardinality instead of the set
//! explain find Data where name prefix "Alarm" -- the physical plan instead of the result
//! ```
//!
//! ## Pipeline
//!
//! [`parse`] produces a [`Query`] AST; [`plan`] lowers it through the algebra onto the cheapest
//! physical access path (name-index probe, name-prefix range scan, value-index probe/range
//! scan, or the full extent scan) using simple cardinality estimates; [`execute`] runs the
//! plan.  The scan-only pipeline survives as [`exec::execute_scan`], the fallback path and the
//! oracle the property tests compare indexed execution against.  The full contract — grammar,
//! index-selection rules, `explain` format — is specified in `docs/QUERY.md`.
//!
//! ```
//! use seed_core::Database;
//! use seed_schema::figure3_schema;
//!
//! let mut db = Database::new(figure3_schema());
//! let alarms = db.create_object("OutputData", "Alarms").unwrap();
//! let handler = db.create_object("Action", "AlarmHandler").unwrap();
//! db.create_relationship("Write", &[("to", alarms), ("by", handler)]).unwrap();
//!
//! // Retrieval: `run` parses and executes in one call.
//! let writers = seed_query::run(&db, r#"find Action navigate Write.by from "Alarms""#).unwrap();
//! assert_eq!(writers.names(), vec!["AlarmHandler"]);
//!
//! // `explain` shows the access path the planner chose (a name-index probe here).
//! let explained = seed_query::run(&db, r#"explain find Thing where name = "Alarms""#).unwrap();
//! assert!(explained.plan().unwrap().contains("probe name index"));
//! ```

pub mod algebra;
pub mod ast;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod planner;

#[cfg(test)]
mod proptests;

pub use algebra::ObjectSet;
pub use ast::{Comparison, Query, Selection};
pub use error::{QueryError, QueryResult};
pub use exec::{execute, execute_scan, QueryOutcome};
pub use parser::parse;
pub use planner::{plan, AccessPath, Plan};

/// Parses and executes a query in one call.
///
/// ```
/// use seed_core::Database;
/// use seed_schema::figure3_schema;
///
/// let mut db = Database::new(figure3_schema());
/// db.create_object("InputData", "ProcessData").unwrap();
/// assert_eq!(seed_query::run(&db, "count Data").unwrap().count(), 1);
/// ```
pub fn run(db: &seed_core::Database, text: &str) -> QueryResult<QueryOutcome> {
    let query = parse(text)?;
    execute(db, &query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_core::{Database, Value};
    use seed_schema::figure3_schema;

    fn sample_db() -> Database {
        let mut db = Database::new(figure3_schema());
        let alarms = db.create_object("OutputData", "Alarms").unwrap();
        let process = db.create_object("InputData", "ProcessData").unwrap();
        let handler = db.create_object("Action", "AlarmHandler").unwrap();
        db.create_relationship("Read", &[("from", process), ("by", handler)]).unwrap();
        db.create_relationship_with_attributes(
            "Write",
            &[("to", alarms), ("by", handler)],
            &[("NumberOfWrites", Value::Integer(2))],
        )
        .unwrap();
        let text = db.create_dependent(alarms, "Text", Value::Undefined).unwrap();
        db.create_dependent(text, "Selector", Value::string("Representation")).unwrap();
        db
    }

    #[test]
    fn end_to_end_queries() {
        let db = sample_db();
        assert_eq!(run(&db, "count Data").unwrap().count(), 2);
        assert_eq!(run(&db, "count exactly Data").unwrap().count(), 0);
        let named = run(&db, r#"find Thing where name = "Alarms""#).unwrap();
        assert_eq!(named.names(), vec!["Alarms"]);
        let writers = run(&db, r#"find Action navigate Write.by from "Alarms""#).unwrap();
        assert_eq!(writers.names(), vec!["AlarmHandler"]);
        let generalized = run(&db, r#"find Action navigate Access.by from "Alarms""#).unwrap();
        assert_eq!(generalized.names(), vec!["AlarmHandler"]);
        let by_value =
            run(&db, r#"find Data.Text.Selector where value = "Representation""#).unwrap();
        assert_eq!(by_value.count(), 1);
        let prefixed = run(&db, r#"find Data where name prefix "Alarm""#).unwrap();
        assert_eq!(prefixed.names(), vec!["Alarms"]);
    }

    #[test]
    fn errors_are_reported() {
        let db = sample_db();
        assert!(run(&db, "find Ghost").is_err());
        assert!(run(&db, "bogus syntax").is_err());
        assert!(run(&db, r#"find Action navigate Ghost.by from "Alarms""#).is_err());
    }
}
