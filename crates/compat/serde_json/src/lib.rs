//! Offline stand-in for `serde_json`: a self-contained JSON [`Value`] with printing
//! (`to_string` via [`std::fmt::Display`]) and parsing ([`from_str`]).
//!
//! No workspace crate currently consumes JSON; the crate exists so that the workspace
//! dependency set matches what the roadmap expects (report export, HTTP protocol work) and so
//! the switch back to crates.io `serde_json` stays a one-line change in the root `Cargo.toml`.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document: the usual six-variant value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (stored as `f64`, like JavaScript).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with string keys, ordered for deterministic output.
    Object(BTreeMap<String, Value>),
}

/// Error produced by [`from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    /// Byte offset in the input at which parsing failed.
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for Error {}

/// `Result` alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

impl Value {
    /// Returns the value at `key` if `self` is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Returns the string content if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the number if `self` is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::String(s) => {
                let mut out = String::new();
                escape_into(&mut out, s);
                f.write_str(&out)
            }
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut out = String::new();
                    escape_into(&mut out, key);
                    write!(f, "{out}:{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(Error { message: message.into(), offset: self.pos })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.error(format!("expected '{}'", byte as char))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.error(format!("expected '{word}'"))
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return self.error("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.error("invalid \\u escape"),
                            }
                        }
                        _ => return self.error("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error { message: "invalid utf-8".into(), offset: self.pos })?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        match text.parse::<f64>() {
            Ok(n) => Ok(Value::Number(n)),
            Err(_) => self.error(format!("invalid number '{text}'")),
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            None => self.error("unexpected end of input"),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return self.error("expected ',' or ']'"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    map.insert(key, self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return self.error("expected ',' or '}'"),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }
}

/// Parses a JSON document into a [`Value`].
pub fn from_str(input: &str) -> Result<Value> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.error("trailing characters after JSON value");
    }
    Ok(value)
}

/// Serializes a [`Value`] to its compact JSON text.
pub fn to_string(value: &Value) -> String {
    value.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        // Keys in sorted order, since Object is a BTreeMap and prints deterministically.
        let text = r#"{"name":"Alarms","parent":null,"precise":false,"tags":["vague",2]}"#;
        let value = from_str(text).unwrap();
        assert_eq!(value.get("name").and_then(Value::as_str), Some("Alarms"));
        assert_eq!(to_string(&value), text);
    }

    #[test]
    fn escapes_and_numbers() {
        let value = from_str(r#"["a\"b\\c\ndA", -1.5e2]"#).unwrap();
        match &value {
            Value::Array(items) => {
                assert_eq!(items[0].as_str(), Some("a\"b\\c\ndA"));
                assert_eq!(items[1].as_f64(), Some(-150.0));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("true false").is_err());
    }
}
