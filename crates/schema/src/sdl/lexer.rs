//! Tokenizer for the schema definition language.

use crate::error::{SchemaError, SchemaResult};

/// Kinds of SDL tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`schema`, `class`, `Data`, ...).
    Ident(String),
    /// Unsigned integer literal.
    Number(u32),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `:`
    Colon,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `..`
    DotDot,
    /// `*`
    Star,
    /// End of input.
    Eof,
}

impl std::fmt::Display for TokenKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier '{s}'"),
            TokenKind::Number(n) => write!(f, "number {n}"),
            TokenKind::LBrace => write!(f, "'{{'"),
            TokenKind::RBrace => write!(f, "'}}'"),
            TokenKind::LBracket => write!(f, "'['"),
            TokenKind::RBracket => write!(f, "']'"),
            TokenKind::LParen => write!(f, "'('"),
            TokenKind::RParen => write!(f, "')'"),
            TokenKind::Colon => write!(f, "':'"),
            TokenKind::Semicolon => write!(f, "';'"),
            TokenKind::Comma => write!(f, "','"),
            TokenKind::DotDot => write!(f, "'..'"),
            TokenKind::Star => write!(f, "'*'"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Line the token starts on (1-based).
    pub line: usize,
    /// Column the token starts at (1-based).
    pub column: usize,
}

/// The SDL tokenizer.
pub struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    column: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `input`.
    pub fn new(input: &'a str) -> Self {
        Self { chars: input.chars().peekable(), line: 1, column: 1 }
    }

    /// Tokenizes the whole input (including a trailing [`TokenKind::Eof`]).
    pub fn tokenize(mut self) -> SchemaResult<Vec<Token>> {
        let mut tokens = Vec::new();
        loop {
            let token = self.next_token()?;
            let done = token.kind == TokenKind::Eof;
            tokens.push(token);
            if done {
                break;
            }
        }
        Ok(tokens)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if let Some(ch) = c {
            if ch == '\n' {
                self.line += 1;
                self.column = 1;
            } else {
                self.column += 1;
            }
        }
        c
    }

    fn error(&self, message: impl Into<String>) -> SchemaError {
        SchemaError::Parse { line: self.line, column: self.column, message: message.into() }
    }

    fn next_token(&mut self) -> SchemaResult<Token> {
        // Skip whitespace and line comments ("//" and "--").
        loop {
            match self.chars.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') => {
                    // Could be a comment "//"; anything else is an error anyway.
                    self.bump();
                    if self.chars.peek() == Some(&'/') {
                        while let Some(&c) = self.chars.peek() {
                            if c == '\n' {
                                break;
                            }
                            self.bump();
                        }
                    } else {
                        return Err(self.error("unexpected character '/'"));
                    }
                }
                _ => break,
            }
        }

        let line = self.line;
        let column = self.column;
        let Some(&c) = self.chars.peek() else {
            return Ok(Token { kind: TokenKind::Eof, line, column });
        };

        let kind = match c {
            '{' => {
                self.bump();
                TokenKind::LBrace
            }
            '}' => {
                self.bump();
                TokenKind::RBrace
            }
            '[' => {
                self.bump();
                TokenKind::LBracket
            }
            ']' => {
                self.bump();
                TokenKind::RBracket
            }
            '(' => {
                self.bump();
                TokenKind::LParen
            }
            ')' => {
                self.bump();
                TokenKind::RParen
            }
            ':' => {
                self.bump();
                TokenKind::Colon
            }
            ';' => {
                self.bump();
                TokenKind::Semicolon
            }
            ',' => {
                self.bump();
                TokenKind::Comma
            }
            '*' => {
                self.bump();
                TokenKind::Star
            }
            '.' => {
                self.bump();
                if self.chars.peek() == Some(&'.') {
                    self.bump();
                    TokenKind::DotDot
                } else {
                    return Err(self.error("expected '..'"));
                }
            }
            c if c.is_ascii_digit() => {
                let mut n: u32 = 0;
                while let Some(&d) = self.chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        n = n
                            .checked_mul(10)
                            .and_then(|x| x.checked_add(v))
                            .ok_or_else(|| self.error("number too large"))?;
                        self.bump();
                    } else {
                        break;
                    }
                }
                TokenKind::Number(n)
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&d) = self.chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        ident.push(d);
                        self.bump();
                    } else {
                        break;
                    }
                }
                TokenKind::Ident(ident)
            }
            other => return Err(self.error(format!("unexpected character '{other}'"))),
        };
        Ok(Token { kind, line, column })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        Lexer::new(input).tokenize().unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_simple_declaration() {
        let toks = kinds("class Data : Thing { dependent Text [0..16]; }");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("class".into()),
                TokenKind::Ident("Data".into()),
                TokenKind::Colon,
                TokenKind::Ident("Thing".into()),
                TokenKind::LBrace,
                TokenKind::Ident("dependent".into()),
                TokenKind::Ident("Text".into()),
                TokenKind::LBracket,
                TokenKind::Number(0),
                TokenKind::DotDot,
                TokenKind::Number(16),
                TokenKind::RBracket,
                TokenKind::Semicolon,
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tokenizes_star_cardinality_and_enum() {
        let toks = kinds("[1..*] ENUM(abort, repeat)");
        assert!(toks.contains(&TokenKind::Star));
        assert!(toks.contains(&TokenKind::LParen));
        assert!(toks.contains(&TokenKind::Comma));
    }

    #[test]
    fn skips_comments_and_tracks_positions() {
        let tokens = Lexer::new("// a comment\nclass Data").tokenize().unwrap();
        assert_eq!(tokens[0].kind, TokenKind::Ident("class".into()));
        assert_eq!(tokens[0].line, 2);
        assert_eq!(tokens[0].column, 1);
        assert_eq!(tokens[1].column, 7);
    }

    #[test]
    fn rejects_unexpected_characters() {
        assert!(Lexer::new("class @Data").tokenize().is_err());
        assert!(Lexer::new("a . b").tokenize().is_err(), "single dot is not a token");
        assert!(Lexer::new("a / b").tokenize().is_err());
    }

    #[test]
    fn rejects_huge_numbers() {
        assert!(Lexer::new("99999999999999999999").tokenize().is_err());
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
        assert_eq!(kinds("   \n\t  "), vec![TokenKind::Eof]);
    }
}
