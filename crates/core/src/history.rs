//! History-sensitive consistency rules.
//!
//! The paper lists these as an open problem: "In our version concept, we have not yet considered
//! history sensitive consistency rules, i.e. rules that impose constraints for the transition
//! from a given version to its successor."  We implement them as an extension: a set of
//! [`TransitionRule`]s registered on the database and evaluated when a new version is created,
//! comparing the parent version's view with the state being snapshotted.

use std::fmt;

use seed_schema::Schema;

use crate::store::DataStore;
use crate::value::Value;

/// A rule constraining the transition from a version to its successor.
#[derive(Debug, Clone, PartialEq)]
pub enum TransitionRule {
    /// Objects present in the predecessor version must not be deleted in the successor
    /// (released information may only be extended, never retracted).
    NoDeletions,
    /// Objects of the given class must not have their value changed once versioned
    /// (e.g. frozen requirement statements).
    FrozenValues {
        /// Full path name of the class whose values are frozen.
        class: String,
    },
    /// Values of the given class must not decrease between versions (dates and counters, e.g.
    /// the `Revised` date of Figure 3 must move forward).
    MonotonicValue {
        /// Full path name of the class whose values must be non-decreasing.
        class: String,
    },
    /// The successor must differ from its parent (empty versions are pointless and usually an
    /// operator mistake).
    MustDiffer,
}

impl fmt::Display for TransitionRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransitionRule::NoDeletions => write!(f, "no deletions between versions"),
            TransitionRule::FrozenValues { class } => write!(f, "values of '{class}' are frozen"),
            TransitionRule::MonotonicValue { class } => {
                write!(f, "values of '{class}' must not decrease")
            }
            TransitionRule::MustDiffer => {
                write!(f, "successor version must differ from its parent")
            }
        }
    }
}

/// A violation of a transition rule, described for the user.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionViolation {
    /// The rule that was violated.
    pub rule: TransitionRule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for TransitionViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.rule, self.message)
    }
}

/// Orders two values when both are comparable (integers, reals, dates, strings).
fn value_order(a: &Value, b: &Value) -> Option<std::cmp::Ordering> {
    use std::cmp::Ordering;
    match (a, b) {
        (Value::Integer(x), Value::Integer(y)) => Some(x.cmp(y)),
        (Value::Real(x), Value::Real(y)) => x.partial_cmp(y),
        (
            Value::Date { year: y1, month: m1, day: d1 },
            Value::Date { year: y2, month: m2, day: d2 },
        ) => Some((y1, m1, d1).cmp(&(y2, m2, d2))),
        (Value::String(x), Value::String(y)) | (Value::Text(x), Value::Text(y)) => Some(x.cmp(y)),
        (Value::Undefined, _) | (_, Value::Undefined) => Some(Ordering::Equal),
        _ => None,
    }
}

/// Evaluates the rules for a transition from `previous` (the parent version's view) to `next`
/// (the state about to be snapshotted).
pub fn check_transition(
    rules: &[TransitionRule],
    schema: &Schema,
    previous: &DataStore,
    next: &DataStore,
) -> Vec<TransitionViolation> {
    let mut violations = Vec::new();
    for rule in rules {
        match rule {
            TransitionRule::NoDeletions => {
                for obj in previous.visible_objects() {
                    let still_there = next.object(obj.id).map(|o| !o.deleted).unwrap_or(false);
                    if !still_there {
                        violations.push(TransitionViolation {
                            rule: rule.clone(),
                            message: format!("object '{}' was deleted", obj.name),
                        });
                    }
                }
            }
            TransitionRule::FrozenValues { class } => {
                let Ok(class_id) = schema.class_id(class) else { continue };
                for obj in previous.visible_objects().filter(|o| o.class == class_id) {
                    if obj.value.is_undefined() {
                        continue;
                    }
                    if let Some(new_obj) = next.object(obj.id) {
                        if !new_obj.deleted && new_obj.value != obj.value {
                            violations.push(TransitionViolation {
                                rule: rule.clone(),
                                message: format!(
                                    "'{}' changed from {} to {}",
                                    obj.name, obj.value, new_obj.value
                                ),
                            });
                        }
                    }
                }
            }
            TransitionRule::MonotonicValue { class } => {
                let Ok(class_id) = schema.class_id(class) else { continue };
                for obj in previous.visible_objects().filter(|o| o.class == class_id) {
                    if let Some(new_obj) = next.object(obj.id) {
                        if new_obj.deleted {
                            continue;
                        }
                        if let Some(std::cmp::Ordering::Less) =
                            value_order(&new_obj.value, &obj.value)
                        {
                            violations.push(TransitionViolation {
                                rule: rule.clone(),
                                message: format!(
                                    "'{}' decreased from {} to {}",
                                    obj.name, obj.value, new_obj.value
                                ),
                            });
                        }
                    }
                }
            }
            TransitionRule::MustDiffer => {
                if next.dirty_items().is_empty() {
                    violations.push(TransitionViolation {
                        rule: rule.clone(),
                        message: "no item changed since the parent version".to_string(),
                    });
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ident::ObjectId;
    use crate::name::ObjectName;
    use crate::object::ObjectRecord;
    use seed_schema::figure3_schema;

    fn add_object(store: &mut DataStore, name: &str, class: seed_schema::ClassId) -> ObjectId {
        let id = store.allocate_object_id();
        store.insert_object(ObjectRecord::new(id, class, ObjectName::root(name), None));
        id
    }

    #[test]
    fn no_deletions_rule() {
        let schema = figure3_schema();
        let data = schema.class_id("Data").unwrap();
        let mut previous = DataStore::new();
        let a = add_object(&mut previous, "Kept", data);
        let b = add_object(&mut previous, "Dropped", data);
        let mut next = previous.clone();
        next.tombstone_object(b);
        let v = check_transition(&[TransitionRule::NoDeletions], &schema, &previous, &next);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("Dropped"));
        assert!(v[0].to_string().contains("no deletions"));
        // Keeping everything passes.
        let v =
            check_transition(&[TransitionRule::NoDeletions], &schema, &previous, &previous.clone());
        assert!(v.is_empty());
        let _ = a;
    }

    #[test]
    fn frozen_and_monotonic_values() {
        let schema = figure3_schema();
        let revised = schema.class_id("Thing.Revised").unwrap();
        let mut previous = DataStore::new();
        let r = add_object(&mut previous, "AlarmHandler.Revised", revised);
        previous.update_object(r, |o| o.value = Value::date(1985, 6, 1).unwrap());
        // Date moves forward: monotonic ok, frozen violated.
        let mut forward = previous.clone();
        forward.update_object(r, |o| o.value = Value::date(1986, 1, 15).unwrap());
        let rules = vec![
            TransitionRule::FrozenValues { class: "Thing.Revised".into() },
            TransitionRule::MonotonicValue { class: "Thing.Revised".into() },
        ];
        let v = check_transition(&rules, &schema, &previous, &forward);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0].rule, TransitionRule::FrozenValues { .. }));
        // Date moves backward: both violated.
        let mut backward = previous.clone();
        backward.update_object(r, |o| o.value = Value::date(1984, 1, 1).unwrap());
        let v = check_transition(&rules, &schema, &previous, &backward);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn must_differ_rule() {
        let schema = figure3_schema();
        let mut store = DataStore::new();
        let data = schema.class_id("Data").unwrap();
        add_object(&mut store, "Alarms", data);
        store.clear_dirty();
        let v = check_transition(&[TransitionRule::MustDiffer], &schema, &store.clone(), &store);
        assert_eq!(v.len(), 1);
        let mut changed = store.clone();
        add_object(&mut changed, "More", data);
        let v = check_transition(&[TransitionRule::MustDiffer], &schema, &store, &changed);
        assert!(v.is_empty());
    }

    #[test]
    fn unknown_class_in_rule_is_ignored() {
        let schema = figure3_schema();
        let store = DataStore::new();
        let v = check_transition(
            &[TransitionRule::FrozenValues { class: "Ghost".into() }],
            &schema,
            &store,
            &store.clone(),
        );
        assert!(v.is_empty());
    }

    #[test]
    fn value_order_covers_types() {
        use std::cmp::Ordering;
        assert_eq!(value_order(&Value::Integer(1), &Value::Integer(2)), Some(Ordering::Less));
        assert_eq!(value_order(&Value::Real(2.0), &Value::Real(1.0)), Some(Ordering::Greater));
        assert_eq!(
            value_order(&Value::date(1986, 1, 1).unwrap(), &Value::date(1986, 1, 2).unwrap()),
            Some(Ordering::Less)
        );
        assert_eq!(value_order(&Value::string("a"), &Value::string("a")), Some(Ordering::Equal));
        assert_eq!(value_order(&Value::Integer(1), &Value::string("a")), None);
        assert_eq!(value_order(&Value::Undefined, &Value::Integer(5)), Some(Ordering::Equal));
    }
}
