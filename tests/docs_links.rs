//! Guards the documentation graph: every intra-repo markdown link (`[text](relative/path)`)
//! in the repository's `.md` files must point at a file that exists.  External links
//! (`http(s)://`, `mailto:`) and pure `#anchor` links are ignored, as are fenced code blocks.
//! CI's docs job runs this, so a renamed or dropped document fails the build instead of
//! leaving dangling cross-references.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn collect_markdown(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Build output and VCS internals are not documentation.
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_markdown(&path, out);
        } else if name.ends_with(".md") {
            out.push(path);
        }
    }
}

/// Extracts `(text, target)` pairs of inline markdown links outside fenced code blocks.
fn extract_links(markdown: &str) -> Vec<String> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            // Find "](", then read the target up to the matching ')'.
            if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
                let start = i + 2;
                if let Some(rel_end) = line[start..].find(')') {
                    links.push(line[start..start + rel_end].to_string());
                    i = start + rel_end;
                }
            }
            i += 1;
        }
    }
    links
}

#[test]
fn no_dangling_intra_repo_markdown_links() {
    let root = repo_root();
    let mut files = Vec::new();
    collect_markdown(&root, &mut files);
    assert!(
        files.iter().any(|f| f.ends_with("README.md")),
        "the scan must at least see the README ({} files found)",
        files.len()
    );

    let mut broken = Vec::new();
    for file in &files {
        let content = std::fs::read_to_string(file).unwrap();
        for target in extract_links(&content) {
            let target = target.split_whitespace().next().unwrap_or(""); // drop "(path \"title\")"
            if target.is_empty()
                || target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
            {
                continue;
            }
            // Strip an anchor suffix; only the file half must exist.
            let path_part = target.split('#').next().unwrap_or(target);
            let resolved = file.parent().unwrap().join(path_part);
            if !resolved.exists() {
                broken.push(format!("{} -> {target}", file.strip_prefix(&root).unwrap().display()));
            }
        }
    }
    assert!(broken.is_empty(), "dangling intra-repo markdown links:\n  {}", broken.join("\n  "));
}
