//! Figures 1 and 2 of the paper, executable: the alarm-monitoring sample objects stored under
//! the sample schema.
//!
//! Figure 1 shows the independent objects `Alarms` and `AlarmHandler`, a `Read` relationship
//! between them, and the dependent objects `Alarms.Text` (with `Body`, `Selector` and
//! `Keywords[i]`).  This example builds exactly that structure through the public API and prints
//! it back.
//!
//! Run with `cargo run --example alarm_monitoring`.

use seed_core::{Database, NameSegment, Value};
use seed_schema::{figure2_schema, sdl};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The schema of Figure 2, printed in its textual (SDL) form.
    let schema = figure2_schema();
    println!("--- Figure 2 schema ---------------------------------------");
    println!("{}", sdl::print(&schema));

    let mut db = Database::new(schema);

    // Figure 1, item (1): the independent object 'Alarms' of class Data.
    let alarms = db.create_object("Data", "Alarms")?;
    // The action reading it.
    let handler = db.create_object("Action", "AlarmHandler")?;
    // Item (2): the relationship 'Read' relating AlarmHandler and Alarms in roles 'by'/'from'.
    db.create_relationship("Read", &[("from", alarms), ("by", handler)])?;

    // Item (3): the dependent object 'Alarms.Text' with Body and Selector.
    let text =
        db.create_dependent_named(alarms, "Text", NameSegment::plain("Text"), Value::Undefined)?;
    let body =
        db.create_dependent_named(text, "Body", NameSegment::plain("Body"), Value::Undefined)?;
    db.create_dependent_named(
        body,
        "Contents",
        NameSegment::plain("Contents"),
        Value::text("Alarms are represented in an alarm display matrix"),
    )?;
    db.create_dependent_named(
        text,
        "Selector",
        NameSegment::plain("Selector"),
        Value::string("Representation"),
    )?;
    // Item (4): Keywords[0] = "Alarmhandling", Keywords[1] = "Display".
    db.create_dependent(body, "Keywords", Value::string("Alarmhandling"))?;
    db.create_dependent(body, "Keywords", Value::string("Display"))?;

    println!("--- Figure 1 object-relationship structure -----------------");
    for object in db.objects_with_name_prefix("Alarm") {
        let value = if object.value.is_undefined() {
            String::new()
        } else {
            format!(" = {}", object.value)
        };
        println!("{}{}", object.name, value);
    }
    println!();
    println!("relationships of 'Alarms':");
    for rel in db.relationships(alarms) {
        let assoc = db.schema().association(rel.record.association)?.name.clone();
        let by =
            rel.record.bound("by").and_then(|id| db.object(id).ok()).map(|o| o.name.to_string());
        println!("  {assoc} by {}", by.unwrap_or_default());
    }

    // The consistency rules of Figure 2 are live: a 17th Text is rejected, a second container
    // for the same action is rejected, a containment cycle is rejected.
    println!();
    println!("--- consistency checks in action ---------------------------");
    let sensor = db.create_object("Action", "Sensor")?;
    db.create_relationship("Contained", &[("in", sensor), ("container", handler)])?;
    match db.create_relationship("Contained", &[("in", handler), ("container", sensor)]) {
        Err(e) => println!("cycle rejected as expected: {e}"),
        Ok(_) => println!("BUG: cycle accepted"),
    }

    // Completeness analysis points at what is still missing (e.g. every Data object must
    // eventually be read *and* written — Alarms is only read so far).
    println!();
    println!("--- completeness analysis ----------------------------------");
    print!("{}", db.completeness_report());
    Ok(())
}
