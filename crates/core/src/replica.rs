//! The replica side of WAL-shipping replication: a durable store rebuilt from a primary's
//! shipped log records.
//!
//! A [`ReplicaStore`] owns its **own** storage engine (its own pages, WAL and checkpoints) and
//! applies batches of the primary's [`LogRecord`]s through the same machinery PR 3's restart
//! recovery uses: [`replay_committed`] reduces a batch to committed key effects, the effects
//! commit as **one** local storage transaction together with the new cursor position, and
//! [`ReplicaStore::load`] rebuilds a serving [`Database`] with the keyed range scans and index
//! rebuild of [`crate::durability`].  Because the applied-LSN cursor rides in the same
//! transaction as the effects it covers, a crash mid-batch loses the whole batch or nothing:
//! on reopen the replica resumes from its last durable LSN and re-requests exactly the records
//! it lost.
//!
//! Two batch shapes exist (see `docs/PROTOCOL.md` for the wire contract):
//!
//! * **incremental** — the primary's WAL tail since the replica's cursor; applied on top of the
//!   current keys;
//! * **reset** — a full keyed snapshot (shipped when the replica's cursor fell behind a primary
//!   checkpoint, or when the replica is empty and the primary's WAL no longer reaches back to
//!   LSN 1); the store's keys are cleared and rebuilt in the same transaction.
//!
//! The store never mutates through [`Database`] write paths — replicas are read-only by
//! construction.  The serving database they load is plain in-memory state; an incremental
//! batch's committed effects can be patched onto it in O(delta) with
//! [`ReplicaStore::apply_to_database`] (reset batches reload wholesale).

use std::path::Path;

use seed_storage::wal::replay_committed;
use seed_storage::{KeyEffect, LogRecord, Lsn, StorageEngine};

use crate::codec;
use crate::database::Database;
use crate::durability;
use crate::error::{SeedError, SeedResult};
use crate::ident::{ItemId, ObjectId, RelationshipId};
use crate::object::ObjectRecord;
use crate::relationship::RelationshipRecord;

/// Key holding the replica's durable cursor: the last primary LSN whose effects are committed
/// locally.  Outside every per-item prefix (`o/`, `r/`, `s/`, `vi/`, `v/`, `d/`, `meta`), so
/// the keyed loader never sees it.
const KEY_APPLIED: &[u8] = b"repl/applied";

/// A replica's durable store: the local mirror of a primary's per-item key space plus the
/// cursor of how far into the primary's WAL that mirror reaches.
pub struct ReplicaStore {
    engine: StorageEngine,
    applied: Lsn,
}

impl ReplicaStore {
    /// Opens (or creates) a replica store in `dir`, running the engine's normal restart
    /// recovery.  A fresh directory starts at cursor 0 — the first subscription asks the
    /// primary for everything.
    pub fn open(dir: impl AsRef<Path>) -> SeedResult<Self> {
        let engine = StorageEngine::open(dir)?;
        let applied = engine.get_u64_cell(KEY_APPLIED, 0)?;
        Ok(Self { engine, applied })
    }

    /// The last primary LSN whose effects are durable locally (0 = nothing applied yet).
    pub fn applied_lsn(&self) -> Lsn {
        self.applied
    }

    /// Whether at least one batch carrying the primary's `meta` record has been applied — i.e.
    /// whether [`ReplicaStore::load`] can produce a database.
    pub fn is_initialized(&self) -> SeedResult<bool> {
        Ok(self.engine.contains(codec::KEY_META)?)
    }

    /// Directory of the store.
    pub fn path(&self) -> Option<&Path> {
        self.engine.path()
    }

    /// Bytes currently in the replica's own WAL (bounded by the engine's auto-checkpoint).
    pub fn wal_bytes(&self) -> u64 {
        self.engine.wal_size_bytes().unwrap_or(0)
    }

    /// Applies one shipped batch as **one** local storage transaction: the committed key
    /// effects of `records` (uncommitted transactions are discarded, exactly as restart
    /// recovery would) plus the new cursor `up_to`.  With `reset`, every existing key is
    /// deleted first — the snapshot-resync path — in the same transaction, so a crash
    /// mid-resync leaves the old state intact.
    ///
    /// Returns the committed key effects, so that a caller serving reads can patch its
    /// in-memory database with [`ReplicaStore::apply_to_database`] — O(delta) — instead of
    /// rebuilding it with [`ReplicaStore::load`] — O(database).
    pub fn apply(
        &mut self,
        records: &[LogRecord],
        up_to: Lsn,
        reset: bool,
    ) -> SeedResult<Vec<KeyEffect>> {
        let numbered: Vec<(Lsn, LogRecord)> =
            records.iter().cloned().enumerate().map(|(i, r)| (i as Lsn + 1, r)).collect();
        let effects = replay_committed(&numbered);
        let txn = self.engine.begin()?;
        if reset {
            for (key, _) in self.engine.scan_prefix(b"")? {
                self.engine.txn_delete(txn, &key)?;
            }
        }
        for (key, value) in &effects {
            match value {
                Some(v) => self.engine.txn_put(txn, key, v)?,
                None => self.engine.txn_delete(txn, key)?,
            }
        }
        self.engine.txn_put(txn, KEY_APPLIED, &up_to.to_le_bytes())?;
        self.engine.commit(txn)?;
        self.applied = up_to;
        Ok(effects)
    }

    /// Rebuilds a serving [`Database`] from the store — the PR 3 recovery path: one keyed range
    /// scan per record kind, then an in-memory index rebuild.  The returned database is plain
    /// in-memory state (replicas never write through it); call again after applying a batch.
    pub fn load(&self) -> SeedResult<Database> {
        if !self.is_initialized()? {
            return Err(SeedError::NotFound(
                "replica store holds no database yet (no batch applied)".to_string(),
            ));
        }
        durability::load_keyed(&self.engine)
    }

    /// Patches a previously loaded serving database with the key effects one incremental batch
    /// committed — the O(delta) alternative to calling [`ReplicaStore::load`] again.  Index
    /// maintenance rides on the store's ordinary mutators, so the patched database matches a
    /// fresh [`ReplicaStore::load`] of the post-batch store exactly.  Returns the number of
    /// per-item records touched (the replica's staleness/cost observable).
    ///
    /// Only valid for **incremental** batches applied on top of the state `db` was loaded
    /// from; after a **reset** batch, reload wholesale instead.
    pub fn apply_to_database(&self, db: &mut Database, effects: &[KeyEffect]) -> SeedResult<usize> {
        /// A decoded `o/<id>` effect: the record plus its inherits-links, or `None` (delete).
        type ObjectEffect = Option<(ObjectRecord, Vec<ObjectId>)>;
        // Decode the per-item effects up front, partitioned by record kind.
        let mut objects: Vec<(ObjectId, ObjectEffect)> = Vec::new();
        let mut relationships: Vec<(RelationshipId, Option<RelationshipRecord>)> = Vec::new();
        let mut dirty_marks: Vec<(ItemId, bool)> = Vec::new();
        let mut schemas_changed = false;
        let mut versions_changed = false;
        let mut meta_changed = false;
        for (key, value) in effects {
            if key.starts_with(codec::PREFIX_OBJECT) {
                let id = codec::parse_object_key(key)?;
                let entry = value.as_deref().map(codec::decode_object_entry).transpose()?;
                objects.push((id, entry));
            } else if key.starts_with(codec::PREFIX_RELATIONSHIP) {
                let id = codec::parse_relationship_key(key)?;
                let entry = value.as_deref().map(codec::decode_relationship_entry).transpose()?;
                relationships.push((id, entry));
            } else if key.starts_with(codec::PREFIX_DIRTY) {
                dirty_marks.push((codec::parse_dirty_key(key)?, value.is_some()));
            } else if key.starts_with(codec::PREFIX_SCHEMA) {
                schemas_changed = true;
            } else if key.starts_with(codec::PREFIX_VERSION_INFO)
                || key.starts_with(codec::PREFIX_VERSION_DELTA)
            {
                versions_changed = true;
            } else if key.as_slice() == codec::KEY_META {
                meta_changed = true;
            }
            // Anything else (the repl/ cursor) carries no database state.
        }
        let touched = objects.len() + relationships.len();

        // Cross-item renames within one batch (A→B while B→A) would corrupt the name index if
        // patched in place, because `update_object` unconditionally re-inserts the new name:
        // park every live-and-renamed (or soon-removed) object under a collision-free
        // temporary name first, exactly as `Database::sync_snapshot_from` does.
        objects.sort_by_key(|(id, _)| *id);
        relationships.sort_by_key(|(id, _)| *id);
        let store = db.store_mut();
        for (oid, entry) in &objects {
            let stale = match store.object(*oid) {
                Some(rec) if !rec.deleted => rec,
                _ => continue,
            };
            let needs_parking = match entry {
                None => true,
                Some((new, _)) => new.name.to_string() != stale.name.to_string(),
            };
            if needs_parking {
                let parked = format!("\u{1}repl-parked-{}", oid.0);
                store.update_object(*oid, |o| o.name = o.name.with_root_renamed(parked));
            }
        }
        for (oid, entry) in objects {
            match entry {
                Some((rec, inherits)) => {
                    if store.object(oid).is_some() {
                        store.update_object(oid, |o| *o = rec);
                    } else {
                        store.insert_object(rec);
                    }
                    // The inherits-links of a changed object travel with it (they are part of
                    // the `o/` record).
                    for have in store.inherited_patterns(oid) {
                        if !inherits.contains(&have) {
                            store.remove_inherits(oid, have);
                        }
                    }
                    for pattern in inherits {
                        if !store.inherited_patterns(oid).contains(&pattern) {
                            store.add_inherits(oid, pattern);
                        }
                    }
                }
                None => {
                    if store.object(oid).is_some() {
                        store.remove_object(oid);
                    }
                }
            }
        }
        for (rid, entry) in relationships {
            match entry {
                Some(rec) => {
                    if store.relationship(rid).is_some() {
                        store.update_relationship(rid, |r| *r = rec);
                    } else {
                        store.insert_relationship(rec);
                    }
                }
                None => {
                    if store.relationship(rid).is_some() {
                        store.remove_relationship(rid);
                    }
                }
            }
        }
        // The shipped dirty markers override whatever the mutators above flagged: the replica
        // mirrors the primary's persisted dirty set, not its own apply work.
        for (item, dirty) in dirty_marks {
            store.sync_dirty_mark(item, dirty);
        }

        // Rare, coarse-grained state reloads straight from the (already committed) engine:
        // schema publishes and version creations rescan exactly their own key ranges.
        if meta_changed || schemas_changed || versions_changed {
            let meta = durability::load_meta(&self.engine)?;
            let store = db.store_mut();
            store.raise_id_floor(meta.object_floor, meta.relationship_floor);
            if schemas_changed || db.parts().0.current_id() != meta.current_schema {
                db.set_schemas(durability::load_schemas(&self.engine, meta.current_schema)?);
            }
            if versions_changed
                || db.parts().2.seq() != meta.version_seq
                || db.parts().2.last_created() != meta.last_created.as_ref()
            {
                db.set_versions(durability::load_versions(&self.engine, &meta)?);
            }
            db.set_transition_rules(meta.rules);
        }
        Ok(touched)
    }

    /// Checkpoints the replica's own engine (flush pages, truncate its local WAL).  The engine
    /// also does this automatically past its WAL threshold; replication correctness does not
    /// depend on it — the cursor lives in the keyed state, not the local WAL.
    pub fn checkpoint(&self) -> SeedResult<()> {
        Ok(self.engine.checkpoint()?)
    }

    /// The topology epoch recorded in the mirrored meta record (0 for an uninitialized store
    /// or a pre-promotion primary's state).  A `ReplicaNode` re-pointed at a new primary
    /// compares this against the promotion epoch to decide whether its local state may be
    /// continued incrementally or must be resynced from a snapshot.
    pub fn topology_epoch(&self) -> SeedResult<u64> {
        match self.engine.get(codec::KEY_META)? {
            Some(bytes) => Ok(codec::decode_meta(&bytes)?.epoch),
            None => Ok(0),
        }
    }

    /// Promotion: consumes the replica store and turns its directory into a **durable primary**
    /// at topology epoch `epoch` — reusing the engine, pages and segmented WAL in place, no
    /// data copy.  In one local transaction the replication cursor key is deleted (the
    /// directory stops being a replica store; a later [`ReplicaStore::open`] on it reads cursor
    /// 0, which forces the snapshot resync path on rejoin-as-replica) and the meta record is
    /// rewritten with the new epoch and no fence.  Then the keyed state is loaded exactly as
    /// [`Database::open_durable`] would and write-through durability is attached.
    ///
    /// The caller is responsible for having drained the shipped tail first: records the old
    /// primary committed but never shipped here are lost by design (they were never
    /// acknowledged to this node).
    pub fn into_primary(self, epoch: u64) -> SeedResult<Database> {
        let txn = self.engine.begin()?;
        self.engine.txn_delete(txn, KEY_APPLIED)?;
        let mut meta = durability::load_meta(&self.engine)?;
        meta.epoch = epoch;
        meta.fenced_to = None;
        self.engine.txn_put(txn, codec::KEY_META, &codec::encode_meta(&meta))?;
        self.engine.commit(txn)?;
        let mut db = durability::load_keyed(&self.engine)?;
        db.attach_durability(self.engine);
        Ok(db)
    }
}

impl std::fmt::Debug for ReplicaStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaStore")
            .field("path", &self.engine.path())
            .field("applied", &self.applied)
            .finish()
    }
}

/// Builds the reset-batch record list from a primary snapshot: one synthetic committed
/// transaction (`Begin`, one `Put` per key, `Commit`) that rebuilds the whole key space.  Kept
/// next to [`ReplicaStore::apply`] so the two sides of the snapshot contract stay in one file.
pub fn snapshot_records(pairs: Vec<(Vec<u8>, Vec<u8>)>) -> Vec<LogRecord> {
    let mut records = Vec::with_capacity(pairs.len() + 2);
    records.push(LogRecord::Begin { txn: 0 });
    for (key, value) in pairs {
        records.push(LogRecord::Put { txn: 0, key, value });
    }
    records.push(LogRecord::Commit { txn: 0 });
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::test_support::{assert_same_state, temp_dir};
    use crate::value::Value;
    use seed_schema::figure3_schema;
    use seed_storage::WalTail;

    fn tail_records(db: &Database, from: Lsn) -> (Vec<LogRecord>, Lsn) {
        match db.wal_tail(from).unwrap() {
            WalTail::Records(recs) => {
                let up_to = recs.last().map(|(l, _)| *l).unwrap_or(from - 1);
                (recs.into_iter().map(|(_, r)| r).collect(), up_to)
            }
            WalTail::Truncated { .. } => panic!("tail unexpectedly truncated"),
        }
    }

    #[test]
    fn incremental_shipping_converges_to_the_primary_state() {
        let primary_dir = temp_dir("repl-primary");
        let replica_dir = temp_dir("repl-replica");
        let mut primary = Database::create_durable(&primary_dir, figure3_schema()).unwrap();
        let alarms = primary.create_object("Data", "Alarms").unwrap();
        let sensor = primary.create_object("Action", "Sensor").unwrap();
        primary.create_relationship("Access", &[("from", alarms), ("by", sensor)]).unwrap();

        let mut replica = ReplicaStore::open(&replica_dir).unwrap();
        assert_eq!(replica.applied_lsn(), 0);
        assert!(!replica.is_initialized().unwrap());
        assert!(replica.load().is_err(), "no batch applied yet");

        // First batch: the whole WAL from LSN 1 (the primary never checkpointed).
        let (records, up_to) = tail_records(&primary, 1);
        replica.apply(&records, up_to, false).unwrap();
        assert_eq!(replica.applied_lsn(), up_to);
        assert_same_state(&replica.load().unwrap(), &primary, true);

        // Incremental batch on top: only the new records ship.
        let desc = primary.create_dependent(sensor, "Description", Value::string("v1")).unwrap();
        primary.set_value(desc, Value::string("v2")).unwrap();
        let (records, new_up_to) = tail_records(&primary, up_to + 1);
        assert!(!records.is_empty());
        replica.apply(&records, new_up_to, false).unwrap();
        assert_same_state(&replica.load().unwrap(), &primary, true);

        // Cursor is durable: reopening the store resumes where it left off.
        drop(replica);
        let replica = ReplicaStore::open(&replica_dir).unwrap();
        assert_eq!(replica.applied_lsn(), new_up_to);
        assert_same_state(&replica.load().unwrap(), &primary, true);
        let _ = std::fs::remove_dir_all(&primary_dir);
        let _ = std::fs::remove_dir_all(&replica_dir);
    }

    #[test]
    fn checkpoint_truncation_forces_a_snapshot_resync_that_converges() {
        let primary_dir = temp_dir("repl-ckpt-primary");
        let replica_dir = temp_dir("repl-ckpt-replica");
        let mut primary = Database::create_durable(&primary_dir, figure3_schema()).unwrap();
        primary.create_object("Data", "Before").unwrap();
        // The checkpoint truncates the WAL: LSN 1 is gone, an empty replica cannot catch up
        // incrementally.
        primary.checkpoint().unwrap();
        primary.create_object("Data", "After").unwrap();

        let mut replica = ReplicaStore::open(&replica_dir).unwrap();
        match primary.wal_tail(replica.applied_lsn() + 1).unwrap() {
            WalTail::Truncated { oldest } => assert!(oldest > 1),
            other => panic!("expected truncation, got {other:?}"),
        }
        // Resync from the snapshot, as the primary's session loop would.
        let (pairs, lsn) = primary.replication_snapshot().unwrap();
        replica.apply(&snapshot_records(pairs), lsn, true).unwrap();
        assert_eq!(replica.applied_lsn(), lsn);
        assert_same_state(&replica.load().unwrap(), &primary, true);

        // And incremental shipping continues cleanly after the reset.
        primary.create_object("Action", "Later").unwrap();
        let (records, up_to) = tail_records(&primary, lsn + 1);
        replica.apply(&records, up_to, false).unwrap();
        assert_same_state(&replica.load().unwrap(), &primary, true);
        let _ = std::fs::remove_dir_all(&primary_dir);
        let _ = std::fs::remove_dir_all(&replica_dir);
    }

    #[test]
    fn reset_clears_stale_keys_the_snapshot_no_longer_contains() {
        let primary_dir = temp_dir("repl-reset-primary");
        let replica_dir = temp_dir("repl-reset-replica");
        let mut primary = Database::create_durable(&primary_dir, figure3_schema()).unwrap();
        let doomed = primary.create_object("Data", "Doomed").unwrap();
        let mut replica = ReplicaStore::open(&replica_dir).unwrap();
        let (records, up_to) = tail_records(&primary, 1);
        replica.apply(&records, up_to, false).unwrap();
        assert!(replica.load().unwrap().object_by_name("Doomed").is_ok());

        // The primary physically removes the object's key space... (delete marks it deleted;
        // exercise the reset path with a checkpoint + fresh snapshot instead).
        primary.delete_object(doomed).unwrap();
        primary.checkpoint().unwrap();
        let (pairs, lsn) = primary.replication_snapshot().unwrap();
        replica.apply(&snapshot_records(pairs), lsn, true).unwrap();
        assert_same_state(&replica.load().unwrap(), &primary, true);
        let _ = std::fs::remove_dir_all(&primary_dir);
        let _ = std::fs::remove_dir_all(&replica_dir);
    }

    /// The satellite crash test: a replica killed mid-`LogBatch` apply loses the whole batch
    /// (its local transaction never committed), reopens at its last durable LSN, re-requests
    /// the lost records and converges to the primary's keyed-scan state.
    #[test]
    fn crash_mid_batch_resumes_from_last_durable_lsn_and_converges() {
        let primary_dir = temp_dir("repl-crash-primary");
        let replica_dir = temp_dir("repl-crash-replica");
        let mut primary = Database::create_durable(&primary_dir, figure3_schema()).unwrap();
        primary.create_object("Data", "Stable").unwrap();

        let mut replica = ReplicaStore::open(&replica_dir).unwrap();
        let (records, batch1_lsn) = tail_records(&primary, 1);
        replica.apply(&records, batch1_lsn, false).unwrap();
        drop(replica);

        // Batch 2 exists on the primary...
        primary.create_object("Data", "InFlight").unwrap();
        let (batch2, batch2_lsn) = tail_records(&primary, batch1_lsn + 1);

        // ...and the replica crashes mid-apply: its local group-commit write is torn.  Simulate
        // by applying the batch and then tearing the tail of the replica's own WAL — the
        // batch's single commit frame never became fully durable.
        {
            let mut replica = ReplicaStore::open(&replica_dir).unwrap();
            replica.apply(&batch2, batch2_lsn, false).unwrap();
        }
        // The tail of the log lives in the newest `wal.*.seg` segment file.
        let wal_path = std::fs::read_dir(&replica_dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                name.starts_with("wal.") && name.ends_with(".seg")
            })
            .max()
            .expect("segmented WAL present");
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 3]).unwrap();

        // Reopen: the torn batch is gone in full, the cursor is back at batch 1.
        let mut replica = ReplicaStore::open(&replica_dir).unwrap();
        assert_eq!(
            replica.applied_lsn(),
            batch1_lsn,
            "the torn batch must roll back atomically, cursor included"
        );
        assert!(replica.load().unwrap().object_by_name("InFlight").is_err());

        // Re-request from the durable cursor and converge.
        let (records, up_to) = tail_records(&primary, replica.applied_lsn() + 1);
        replica.apply(&records, up_to, false).unwrap();
        assert_eq!(up_to, batch2_lsn);
        assert_same_state(&replica.load().unwrap(), &primary, true);
        let _ = std::fs::remove_dir_all(&primary_dir);
        let _ = std::fs::remove_dir_all(&replica_dir);
    }

    /// The tentpole's replica half: patching the serving database with a batch's committed
    /// effects yields exactly the database a wholesale reload would, while touching only
    /// O(delta) items — including across renames, deletes, rollbacks and version creation.
    #[test]
    fn incremental_apply_to_database_matches_a_wholesale_reload() {
        let primary_dir = temp_dir("repl-incr-primary");
        let replica_dir = temp_dir("repl-incr-replica");
        let mut primary = Database::create_durable(&primary_dir, figure3_schema()).unwrap();
        let alarms = primary.create_object("Data", "Alarms").unwrap();
        let sensor = primary.create_object("Action", "Sensor").unwrap();
        primary.create_relationship("Access", &[("from", alarms), ("by", sensor)]).unwrap();

        let mut replica = ReplicaStore::open(&replica_dir).unwrap();
        let (records, mut cursor) = tail_records(&primary, 1);
        replica.apply(&records, cursor, false).unwrap();
        let mut serving = replica.load().unwrap();

        // A sequence of batches exercising every record kind; after each one, the patched
        // database must equal a fresh reload, and the touched count must stay O(delta).
        type Mutation = Box<dyn Fn(&mut Database)>;
        let mutate: Vec<Mutation> = vec![
            Box::new(|db| {
                let s = db.object_by_name("Sensor").unwrap().id;
                db.create_dependent(s, "Description", Value::string("v1")).unwrap();
            }),
            // Cross-item rename swap within one transaction (one shipped batch).
            Box::new(|db| {
                let a = db.object_by_name("Alarms").unwrap().id;
                let s = db.object_by_name("Sensor").unwrap().id;
                db.begin_transaction().unwrap();
                db.rename_object(a, "Stash").unwrap();
                db.rename_object(s, "Alarms").unwrap();
                db.rename_object(a, "Sensor").unwrap();
                db.commit_transaction().unwrap();
            }),
            Box::new(|db| {
                db.create_version("checkpointed cut").unwrap();
            }),
            Box::new(|db| {
                let victim = db.create_object("Data", "ShortLived").unwrap();
                db.delete_object(victim).unwrap();
            }),
        ];
        for mutate in mutate {
            mutate(&mut primary);
            let (records, up_to) = tail_records(&primary, cursor + 1);
            let effects = replica.apply(&records, up_to, false).unwrap();
            cursor = up_to;
            let touched = replica.apply_to_database(&mut serving, &effects).unwrap();
            assert!(touched <= 8, "batch touched {touched} items, expected O(delta)");
            assert_same_state(&serving, &replica.load().unwrap(), true);
            assert_same_state(&serving, &primary, true);
        }
        assert_eq!(serving.versions().len(), 1);
        let _ = std::fs::remove_dir_all(&primary_dir);
        let _ = std::fs::remove_dir_all(&replica_dir);
    }

    /// The promotion flip: a synced replica store becomes a writable durable primary in place
    /// (no data copy), carrying the promotion epoch in its meta; reopening the same directory
    /// as a replica store afterwards reads cursor 0 — the signature that forces a snapshot
    /// resync instead of continuing in a foreign LSN space.
    #[test]
    fn into_primary_flips_the_store_in_place_and_resets_the_cursor() {
        let primary_dir = temp_dir("repl-flip-primary");
        let replica_dir = temp_dir("repl-flip-replica");
        let mut primary = Database::create_durable(&primary_dir, figure3_schema()).unwrap();
        primary.create_object("Data", "Survivor").unwrap();

        let mut replica = ReplicaStore::open(&replica_dir).unwrap();
        let (records, up_to) = tail_records(&primary, 1);
        replica.apply(&records, up_to, false).unwrap();
        assert_eq!(replica.topology_epoch().unwrap(), 0);

        let mut promoted = replica.into_primary(7).unwrap();
        assert!(promoted.is_durable(), "the flipped store writes through");
        assert_eq!(promoted.topology_epoch(), 7);
        assert_eq!(promoted.fenced_to(), None);
        assert!(promoted.object_by_name("Survivor").is_ok(), "no data was lost in the flip");
        promoted.create_object("Data", "PostPromotion").unwrap();
        drop(promoted);

        // The directory now recovers as an ordinary durable primary...
        let reopened = Database::open_durable(&replica_dir).unwrap();
        assert_eq!(reopened.topology_epoch(), 7);
        assert!(reopened.object_by_name("PostPromotion").is_ok());
        drop(reopened);

        // ...and reopening it as a replica store reads cursor 0 with state present — the
        // former-primary signature that demotion-to-replica resyncs from a snapshot.
        let rejoined = ReplicaStore::open(&replica_dir).unwrap();
        assert_eq!(rejoined.applied_lsn(), 0);
        assert!(rejoined.is_initialized().unwrap());
        assert_eq!(rejoined.topology_epoch().unwrap(), 7);
        let _ = std::fs::remove_dir_all(&primary_dir);
        let _ = std::fs::remove_dir_all(&replica_dir);
    }

    #[test]
    fn versions_and_schema_ship_like_any_other_record() {
        let primary_dir = temp_dir("repl-versions-primary");
        let replica_dir = temp_dir("repl-versions-replica");
        let mut primary = Database::create_durable(&primary_dir, figure3_schema()).unwrap();
        let handler = primary.create_object("Action", "AlarmHandler").unwrap();
        let desc = primary.create_dependent(handler, "Description", Value::string("v1")).unwrap();
        let v1 = primary.create_version("first").unwrap();
        primary.set_value(desc, Value::string("v2")).unwrap();

        let mut replica = ReplicaStore::open(&replica_dir).unwrap();
        let (records, up_to) = tail_records(&primary, 1);
        replica.apply(&records, up_to, false).unwrap();
        let mut loaded = replica.load().unwrap();
        assert_eq!(loaded.versions().len(), 1);
        loaded.select_version(Some(v1)).unwrap();
        assert_eq!(loaded.object(desc).unwrap().value, Value::string("v1"));
        let _ = std::fs::remove_dir_all(&primary_dir);
        let _ = std::fs::remove_dir_all(&replica_dir);
    }
}
