//! The quick evaluation report: one row per experiment of `EXPERIMENTS.md`, measured with plain
//! timers (run `cargo run -p seed-bench --release`).  The Criterion benches in `benches/`
//! measure the same scenarios with proper statistics.

use std::time::{Duration, Instant};

use seed_core::{Database, Value, VersionId};
use seed_schema::figure3_schema;
use seed_server::{SeedServer, Update};
use seed_storage::StorageEngine;
use spades::{DirectBackend, SpecBackend};

use crate::scenarios;

fn time<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let start = Instant::now();
    let r = f();
    (start.elapsed(), r)
}

fn row(id: &str, what: &str, measurement: String) {
    println!("{id:<4} {what:<58} {measurement}");
}

/// E1 — SPADES on SEED vs. the direct pre-SEED implementation.
pub fn e1_spades_overhead(scale: usize) {
    let workload = scenarios::spades_workload(scale);
    let (direct_time, _) = time(|| scenarios::run_on_direct(&workload));
    let (seed_time, _) = time(|| scenarios::run_on_seed(&workload, true));
    let slowdown = seed_time.as_secs_f64() / direct_time.as_secs_f64().max(f64::EPSILON);
    row(
        "E1",
        &format!("SPADES workload ({} ops): SEED vs direct", workload.len()),
        format!("direct {:>8.2?}  seed {:>8.2?}  slowdown {slowdown:.1}x", direct_time, seed_time),
    );
    // Flexibility half of the claim: only SEED can analyse incompleteness.
    let mut seed = spades::SeedBackend::new();
    workload.apply(&mut seed);
    let mut direct = DirectBackend::new();
    workload.apply(&mut direct);
    row(
        "E1b",
        "  flexibility: incompleteness findings (SEED vs direct)",
        format!("{} vs {}", seed.incompleteness_findings(), direct.incompleteness_findings()),
    );
}

/// E2 — cost of consistency checking on every update.
pub fn e2_consistency_overhead(scale: usize) {
    let workload = scenarios::spades_workload(scale);
    let (with_checks, _) = time(|| scenarios::run_on_seed(&workload, true));
    let (without_checks, _) = time(|| scenarios::run_on_seed(&workload, false));
    let factor = with_checks.as_secs_f64() / without_checks.as_secs_f64().max(f64::EPSILON);
    row(
        "E2",
        &format!("consistency checking on vs off ({} ops)", workload.len()),
        format!("on {with_checks:>8.2?}  off {without_checks:>8.2?}  overhead {factor:.2}x"),
    );
}

/// E3 — delta-based version storage vs. full copies.
pub fn e3_version_storage(objects: usize, versions: usize, changes_per_version: usize) {
    let db = scenarios::versioned_database(objects, versions, changes_per_version);
    let delta_snapshots = db.version_manager().stored_snapshot_count();
    let full_copy_items = (0..versions)
        .map(|v| {
            db.object_count() + db.relationship_count() - (versions - 1 - v) * changes_per_version
        })
        .sum::<usize>();
    let (view_time, _) = time(|| db.version_manager().view(&VersionId::initial()).unwrap());
    row(
        "E3",
        &format!("version storage, {objects} objects x {versions} versions ({changes_per_version} changes each)"),
        format!(
            "delta stores {delta_snapshots} item snapshots vs ~{full_copy_items} for full copies; view(1.0) in {view_time:.2?}"
        ),
    );
}

/// E4 — pattern update propagation cost vs. number of inheritors.
pub fn e4_pattern_propagation(inheritors: usize) {
    let (mut db, pattern, members) = scenarios::pattern_with_inheritors(inheritors);
    let (update_time, _) = time(|| {
        db.mark_pattern(pattern).unwrap(); // no-op update touching the pattern
    });
    let (read_time, total) = time(|| {
        let mut total = 0usize;
        for m in &members {
            total += db.relationships(*m).len();
        }
        total
    });
    row(
        "E4",
        &format!("pattern update + materialized read across {inheritors} inheritors"),
        format!(
            "update {update_time:.2?}; read {read_time:.2?} ({total} inherited relationships seen)"
        ),
    );
}

/// E5 — re-classification latency (the vague-to-precise step).
pub fn e5_reclassification(n: usize) {
    let (mut db, objects, rels) = scenarios::vague_database(n);
    let (object_time, _) = time(|| {
        for id in &objects {
            db.reclassify_object(*id, "OutputData").unwrap();
        }
    });
    let (rel_time, _) = time(|| {
        for id in &rels {
            db.reclassify_relationship(*id, "Write").unwrap();
        }
    });
    row(
        "E5",
        &format!("re-classification of {n} objects and {n} relationships"),
        format!(
            "objects {:.2?} ({:.1} µs each); relationships {:.2?} ({:.1} µs each)",
            object_time,
            object_time.as_micros() as f64 / n as f64,
            rel_time,
            rel_time.as_micros() as f64 / n as f64
        ),
    );
}

/// E6 — retrieval by name vs. database size.
pub fn e6_retrieval(n: usize) {
    let db = scenarios::populated_database(n);
    let lookups = 10_000usize;
    let (by_name, _) = time(|| {
        for i in 0..lookups {
            let name = format!("Data{:05}", i % n);
            db.object_by_name(&name).unwrap();
        }
    });
    let (by_prefix, hits) = time(|| db.objects_with_name_prefix("Data0").len());
    row(
        "E6",
        &format!("retrieval by name in a database of {n} data objects"),
        format!(
            "{lookups} lookups in {by_name:.2?} ({:.1} µs each); prefix scan {by_prefix:.2?} ({hits} hits)",
            by_name.as_micros() as f64 / lookups as f64
        ),
    );
}

/// E7 — storage engine micro-benchmarks.
pub fn e7_storage_engine(n: usize) {
    let engine = StorageEngine::in_memory().unwrap();
    let value = vec![0xA5u8; 256];
    let (write_time, _) = time(|| {
        for i in 0..n {
            engine.put(format!("obj/{i:06}").as_bytes(), &value).unwrap();
        }
    });
    let (read_time, _) = time(|| {
        for i in 0..n {
            engine.get(format!("obj/{i:06}").as_bytes()).unwrap().unwrap();
        }
    });
    let dir = std::env::temp_dir().join(format!("seed-bench-e7-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let durable = StorageEngine::open(&dir).unwrap();
    let (durable_write, _) = time(|| {
        let txn = durable.begin().unwrap();
        for i in 0..n {
            durable.txn_put(txn, format!("obj/{i:06}").as_bytes(), &value).unwrap();
        }
        durable.commit(txn).unwrap();
        durable.checkpoint().unwrap();
    });
    let _ = std::fs::remove_dir_all(&dir);
    row(
        "E7",
        &format!("storage engine, {n} x 256-byte records"),
        format!(
            "memory put {write_time:.2?}, get {read_time:.2?}; durable txn+checkpoint {durable_write:.2?}"
        ),
    );
}

/// E8 — multi-user check-out / check-in throughput.
pub fn e8_multiuser(clients: usize, rounds: usize) {
    let mut db = Database::new(figure3_schema());
    for i in 0..clients {
        db.create_object("Data", &format!("Shared{i:03}")).unwrap();
    }
    let server = SeedServer::new(db);
    let (elapsed, conflicts) = time(|| {
        let mut conflicts = 0usize;
        for round in 0..rounds {
            for c in 0..clients {
                let client = (c + 1) as u64;
                let target = format!("Shared{:03}", (c + round) % clients);
                match server.checkout(client, &[&target]) {
                    Ok(_) => {
                        server
                            .checkin(
                                client,
                                &[Update::SetValue {
                                    object: target.to_string(),
                                    value: Value::Undefined,
                                }],
                            )
                            .ok();
                    }
                    Err(_) => conflicts += 1,
                }
            }
        }
        conflicts
    });
    let total = clients * rounds;
    row(
        "E8",
        &format!("multi-user: {clients} clients x {rounds} check-out/check-in rounds"),
        format!(
            "{total} cycles in {elapsed:.2?} ({:.1} µs each), {conflicts} lock conflicts",
            elapsed.as_micros() as f64 / total as f64
        ),
    );
}

/// E9 — the planner's indexed access paths vs. the full-scan fallback, swept over size.
pub fn e9_indexed_retrieval(sizes: &[usize]) {
    for &n in sizes {
        let db = scenarios::valued_database(n);
        let point = seed_query::parse(&format!("count Item where value = \"{}\"", n / 2)).unwrap();
        let reps = 200usize;
        let (indexed, hits) = time(|| {
            let mut hits = 0usize;
            for _ in 0..reps {
                hits = seed_query::execute(&db, &point).unwrap().count();
            }
            hits
        });
        let (scanned, _) = time(|| {
            for _ in 0..reps {
                seed_query::execute_scan(&db, &point).unwrap().count();
            }
        });
        let speedup = scanned.as_secs_f64() / indexed.as_secs_f64().max(f64::EPSILON);
        row(
            "E9",
            &format!("indexed point query vs full scan, {n} objects ({hits} hit)"),
            format!(
                "indexed {:.2} µs  scan {:.2} µs  speedup {speedup:.0}x",
                indexed.as_micros() as f64 / reps as f64,
                scanned.as_micros() as f64 / reps as f64
            ),
        );
    }
}

/// Runs every experiment with report-sized parameters and prints the table.
pub fn run_report() {
    println!(
        "SEED reproduction — evaluation report (quick timers; see benches/ for Criterion runs)"
    );
    println!("{}", "-".repeat(110));
    e1_spades_overhead(120);
    e2_consistency_overhead(120);
    e3_version_storage(200, 10, 5);
    e4_pattern_propagation(500);
    e5_reclassification(500);
    e6_retrieval(2000);
    e7_storage_engine(5000);
    e8_multiuser(8, 25);
    e9_indexed_retrieval(&[1_000, 10_000]);
    println!("{}", "-".repeat(110));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_rows_run_with_small_parameters() {
        // Smoke test: every experiment function runs without panicking on tiny inputs.
        e1_spades_overhead(10);
        e2_consistency_overhead(10);
        e3_version_storage(10, 2, 2);
        e4_pattern_propagation(5);
        e5_reclassification(5);
        e6_retrieval(10);
        e7_storage_engine(50);
        e8_multiuser(2, 2);
        e9_indexed_retrieval(&[20]);
    }
}
