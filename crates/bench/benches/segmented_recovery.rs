//! E13 — segmented WAL recovery: replaying a long, many-segment log serially vs with the
//! per-segment parallel parser the recovery path uses.
//!
//! The quick-report rendition (`cargo run -p seed-bench --release`, row E13) measures the same
//! scenario at 20k commits; here each replay path gets Criterion statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use seed_storage::{LogRecord, WalConfig, WriteAheadLog};

const COMMITS: u64 = 5_000;
const SEGMENT_MAX_BYTES: u64 = 64 * 1024;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("seed-bench-e13c-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A multi-segment on-disk WAL holding `COMMITS` committed transactions.
fn segmented_fixture(dir: &std::path::Path) -> WriteAheadLog {
    let config = WalConfig { segment_max_bytes: SEGMENT_MAX_BYTES, ..WalConfig::default() };
    let wal = WriteAheadLog::open_dir(dir, config).unwrap();
    for txn in 0..COMMITS {
        let key = format!("bench/{txn:08}").into_bytes();
        wal.append_batch(&[
            LogRecord::Begin { txn },
            LogRecord::Put { txn, key, value: vec![0xA5; 96] },
            LogRecord::Commit { txn },
        ])
        .unwrap();
    }
    wal.sync().unwrap();
    wal
}

fn replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("E13_segmented_replay");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    let dir = temp_dir("replay");
    let wal = segmented_fixture(&dir);
    assert!(wal.segment_count() > 4, "the fixture must span segments");
    group.bench_function("serial_read_all", |b| b.iter(|| wal.read_all().unwrap().len()));
    group
        .bench_function("parallel_read_all", |b| b.iter(|| wal.read_all_parallel().unwrap().len()));
    group.finish();
    drop(wal);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, replay);
criterion_main!(benches);
