//! Pins the query-layer contract documented in `docs/QUERY.md`: the worked `explain` examples
//! render exactly as documented, and every query form reports its access path.

use seed_core::{Database, Value};
use seed_query::run;
use seed_schema::figure3_schema;

/// The database of `docs/QUERY.md` §5: two Figure-3 data objects with Text/Selector dependents
/// plus eight bulk objects widening the extents.
fn documented_database() -> Database {
    let mut db = Database::new(figure3_schema());
    let alarms = db.create_object("OutputData", "Alarms").unwrap();
    let process = db.create_object("InputData", "ProcessData").unwrap();
    let handler = db.create_object("Action", "AlarmHandler").unwrap();
    let display = db.create_object("Action", "Display").unwrap();
    db.create_relationship("Write", &[("to", alarms), ("by", handler)]).unwrap();
    db.create_relationship("Read", &[("from", process), ("by", handler)]).unwrap();
    db.create_relationship("Read", &[("from", process), ("by", display)]).unwrap();
    let text = db.create_dependent(alarms, "Text", Value::Undefined).unwrap();
    db.create_dependent(text, "Selector", Value::string("Representation")).unwrap();
    db.create_dependent(text, "Body", Value::Undefined).unwrap();
    for i in 0..8 {
        let d = db.create_object("InputData", &format!("Bulk{i}")).unwrap();
        let t = db.create_dependent(d, "Text", Value::Undefined).unwrap();
        db.create_dependent(t, "Selector", Value::string(format!("V{i}"))).unwrap();
    }
    db
}

fn plan_of(db: &Database, query: &str) -> String {
    run(db, query).unwrap().plan().expect("explain returns a plan").to_string()
}

#[test]
fn worked_examples_render_exactly_as_documented() {
    let db = documented_database();
    let cases = [
        (
            r#"explain find Thing where name = "Alarms""#,
            "plan: find Thing (+specializations)\n\
             \x20 access  probe name index for \"Alarms\" (~1 row)\n\
             \x20 filter  none\n\
             \x20 output  objects",
        ),
        (
            r#"explain find Data.Text.Selector where value = "Representation""#,
            "plan: find Data.Text.Selector (+specializations)\n\
             \x20 access  probe value index of Data.Text.Selector, value = \"Representation\" (~1 row)\n\
             \x20 filter  none\n\
             \x20 output  objects",
        ),
        (
            r#"explain find Data where name prefix "Alarm""#,
            "plan: find Data (+specializations)\n\
             \x20 access  range scan name index, prefix \"Alarm\" (~5 rows)\n\
             \x20 filter  none\n\
             \x20 output  objects",
        ),
        (
            r#"explain count Action navigate Access.by from "Alarms""#,
            "plan: count Action (+specializations)\n\
             \x20 access  scan extent of Action (~2 rows)\n\
             \x20 join    navigate Access.by from \"Alarms\"\n\
             \x20 filter  none\n\
             \x20 output  count",
        ),
        (
            r#"explain find Data where related Write.to and value != "x""#,
            "plan: find Data (+specializations)\n\
             \x20 access  scan extent of Data (~10 rows)\n\
             \x20 filter  related Write.to and value != \"x\"\n\
             \x20 output  objects",
        ),
        (
            r#"explain find Data where name prefix "Alarm" and related Write.to"#,
            "plan: find Data (+specializations)\n\
             \x20 access  range scan name index, prefix \"Alarm\" (~5 rows)\n\
             \x20 filter  related Write.to\n\
             \x20 output  objects",
        ),
    ];
    for (query, expected) in cases {
        let rendered = plan_of(&db, query);
        assert_eq!(rendered, expected, "\nquery: {query}\nrendered:\n{rendered}");
    }
}

#[test]
fn every_query_form_has_an_access_path_in_its_plan() {
    let db = documented_database();
    for query in [
        "explain find Data",
        "explain find exactly Data",
        "explain count Thing",
        r#"explain find Thing where name = "Alarms""#,
        r#"explain find Data where name prefix "Alarm""#,
        r#"explain find Data.Text.Selector where value = "Representation""#,
        r#"explain find Data.Text.Selector where value < "V0""#,
        r#"explain find Data.Text.Selector where value > "V3""#,
        r#"explain find Data.Text.Selector where value != "V0""#,
        r#"explain find Action navigate Access.by from "Alarms""#,
        "explain find Data where related Write.to",
        "explain find Action where incomplete",
    ] {
        let plan = plan_of(&db, query);
        assert!(plan.contains("access  "), "{query} lacks an access path:\n{plan}");
        assert!(plan.contains("output  "), "{query} lacks an output form:\n{plan}");
    }
}

#[test]
fn explained_queries_execute_with_identical_results_on_both_paths() {
    let db = documented_database();
    for query in [
        "find Thing",
        r#"find Data where name prefix "Alarm""#,
        r#"find Data.Text.Selector where value = "Representation""#,
        r#"count Action navigate Access.by from "Alarms""#,
    ] {
        let indexed = seed_query::execute(&db, &seed_query::parse(query).unwrap()).unwrap();
        let scanned = seed_query::execute_scan(&db, &seed_query::parse(query).unwrap()).unwrap();
        assert_eq!(indexed.names(), scanned.names(), "{query}");
        assert_eq!(indexed.count(), scanned.count(), "{query}");
    }
}
