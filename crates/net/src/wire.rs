//! Frame layout and handshake records of the SEED wire protocol.
//!
//! Every message travels in one frame:
//!
//! ```text
//! +----------+------+-------------+-------------+-----------+
//! | magic    | kind | payload len | payload crc | payload   |
//! | "SEWP" 4 | u8 1 | u32 LE    4 | u32 LE    4 | len bytes |
//! +----------+------+-------------+-------------+-----------+
//! ```
//!
//! The length prefix delimits frames, the CRC-32 (same polynomial as the storage WAL) protects
//! the payload, and the magic re-anchors the reader: a frame whose header parses but whose
//! checksum or payload is bad is **recoverable** — exactly `len` bytes were consumed, the next
//! frame starts cleanly, and the server answers with a protocol error instead of dropping the
//! connection.  A bad magic or an oversized length means the stream is desynchronized, which is
//! fatal.
//!
//! Connections open with a handshake: the client sends [`Hello`] (the protocol version range it
//! speaks, plus the role it wants — ordinary client or replication subscriber), the server
//! answers [`Welcome`] (the negotiated version plus the client id this connection is bound to)
//! or a [`FrameKind::Reject`] frame with a reason, then closes.
//!
//! Protocol **v2** adds the replication kinds ([`FrameKind::Subscribe`], [`FrameKind::LogBatch`],
//! [`FrameKind::Ack`]) and the handshake role byte; every v1 frame is byte-identical under v2.
//! The complete wire contract is pinned in `docs/PROTOCOL.md` and enforced byte-exactly by
//! `tests/protocol_contract.rs` — change all three together.

use std::io::{Read, Write};

use seed_storage::codec::crc32;
use seed_storage::{Decoder, Encoder, LogRecord, Lsn};

use crate::error::{WireError, WireResult};

/// Frame magic: "SEED wire protocol".
pub const MAGIC: [u8; 4] = *b"SEWP";

/// Oldest protocol version this build still speaks.
pub const PROTOCOL_VERSION_MIN: u16 = 1;

/// Newest protocol version this build speaks (v2 = v1 plus the replication frame kinds;
/// v3 = v2 plus the serving-snapshot LSN in the persistence status's replication block).
pub const PROTOCOL_VERSION: u16 = 3;

/// Upper bound on one frame's payload; larger lengths are treated as stream desync.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: handshake opener.
    Hello,
    /// Server → client: handshake acceptance.
    Welcome,
    /// Client → server: one encoded [`seed_server::Request`].
    Request,
    /// Server → client: one encoded [`seed_server::Response`].
    Response,
    /// Server → client: the connection is being refused or abandoned (reason in the payload).
    Reject,
    /// Replica → primary: open a replication stream from an LSN (v2; one [`Subscribe`]).
    Subscribe,
    /// Primary → replica: one batch of shipped WAL records (v2; one [`LogBatch`]).
    LogBatch,
    /// Replica → primary: the batch is durable locally (v2; one [`Ack`]).
    Ack,
}

impl FrameKind {
    /// The kind byte on the wire (pinned in `docs/PROTOCOL.md`).
    pub fn to_u8(self) -> u8 {
        match self {
            FrameKind::Hello => 1,
            FrameKind::Welcome => 2,
            FrameKind::Request => 3,
            FrameKind::Response => 4,
            FrameKind::Reject => 5,
            FrameKind::Subscribe => 6,
            FrameKind::LogBatch => 7,
            FrameKind::Ack => 8,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => FrameKind::Hello,
            2 => FrameKind::Welcome,
            3 => FrameKind::Request,
            4 => FrameKind::Response,
            5 => FrameKind::Reject,
            6 => FrameKind::Subscribe,
            7 => FrameKind::LogBatch,
            8 => FrameKind::Ack,
            _ => return None,
        })
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload is.
    pub kind: FrameKind,
    /// The checked payload bytes.
    pub payload: Vec<u8>,
}

/// Writes one frame (header, checksum, payload) to `w`.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> WireResult<()> {
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(WireError::Fatal(format!(
            "refusing to send a {} byte frame (max {MAX_FRAME_LEN})",
            payload.len()
        )));
    }
    let mut header = [0u8; 13];
    header[..4].copy_from_slice(&MAGIC);
    header[4] = kind.to_u8();
    header[5..9].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[9..13].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from `r`, verifying magic, kind, length and checksum.
///
/// Errors are classified for the session loop: [`WireError::Recoverable`] means the frame
/// boundary was found and consumed (keep the connection), anything else means desync or a dead
/// socket (close it).
pub fn read_frame(r: &mut impl Read) -> WireResult<Frame> {
    let mut header = [0u8; 13];
    r.read_exact(&mut header)?;
    if header[..4] != MAGIC {
        return Err(WireError::Fatal(format!(
            "bad frame magic {:02x?} (stream desynchronized or not a SEED peer)",
            &header[..4]
        )));
    }
    let kind = FrameKind::from_u8(header[4])
        .ok_or_else(|| WireError::Fatal(format!("unknown frame kind {}", header[4])))?;
    let len = u32::from_le_bytes([header[5], header[6], header[7], header[8]]);
    if len > MAX_FRAME_LEN {
        return Err(WireError::Fatal(format!("frame length {len} exceeds {MAX_FRAME_LEN}")));
    }
    let expected_crc = u32::from_le_bytes([header[9], header[10], header[11], header[12]]);
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != expected_crc {
        return Err(WireError::Recoverable(format!(
            "frame checksum mismatch ({} byte payload)",
            payload.len()
        )));
    }
    Ok(Frame { kind, payload })
}

/// An incremental frame decoder for nonblocking (readiness-driven) readers: bytes go in as
/// they arrive off the socket, complete frames come out — as many as one wakeup delivered,
/// which is what makes request pipelining a pure scheduling change on the server.
///
/// Error classification matches [`read_frame`] exactly: a checksum or payload failure consumes
/// the offending frame and is **recoverable** (keep feeding the decoder, the next
/// [`FrameDecoder::next_frame`] call resumes at the following frame boundary); a bad magic, an
/// unknown kind or an oversized length is **fatal** (the stream is desynchronized and the
/// decoder must be discarded with its connection).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
}

/// Frame header size on the wire: magic + kind + length + checksum.
const HEADER_LEN: usize = 13;

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends bytes read off the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix space before growing (amortized O(1) per byte).
        if self.start > 0 && (self.start == self.buf.len() || self.start >= 64 * 1024) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames (a partial frame, or complete frames not
    /// yet pulled).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pulls the next complete frame, if the buffer holds one.
    ///
    /// * `Ok(Some(frame))` — one frame decoded and consumed;
    /// * `Ok(None)` — the buffer ends mid-frame; feed more bytes;
    /// * `Err(recoverable)` — the frame boundary held and the bad frame was consumed;
    /// * `Err(fatal)` — the stream is desynchronized; close the connection.
    pub fn next_frame(&mut self) -> WireResult<Option<Frame>> {
        let avail = &self.buf[self.start..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        if avail[..4] != MAGIC {
            return Err(WireError::Fatal(format!(
                "bad frame magic {:02x?} (stream desynchronized or not a SEED peer)",
                &avail[..4]
            )));
        }
        let kind = FrameKind::from_u8(avail[4])
            .ok_or_else(|| WireError::Fatal(format!("unknown frame kind {}", avail[4])))?;
        let len = u32::from_le_bytes([avail[5], avail[6], avail[7], avail[8]]);
        if len > MAX_FRAME_LEN {
            return Err(WireError::Fatal(format!("frame length {len} exceeds {MAX_FRAME_LEN}")));
        }
        let total = HEADER_LEN + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let expected_crc = u32::from_le_bytes([avail[9], avail[10], avail[11], avail[12]]);
        let payload = avail[HEADER_LEN..total].to_vec();
        self.start += total; // the boundary held either way: consume exactly this frame
        if crc32(&payload) != expected_crc {
            return Err(WireError::Recoverable(format!(
                "frame checksum mismatch ({} byte payload)",
                payload.len()
            )));
        }
        Ok(Some(Frame { kind, payload }))
    }
}

/// What a connection wants to be after the handshake.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum HandshakeRole {
    /// An ordinary request/response client (checkout, check-in, queries).
    #[default]
    Client,
    /// A replication subscriber: after the welcome it sends one [`Subscribe`] and then only
    /// consumes [`LogBatch`] frames and produces [`Ack`] frames.
    Replica,
}

impl HandshakeRole {
    fn to_u8(self) -> u8 {
        match self {
            HandshakeRole::Client => 0,
            HandshakeRole::Replica => 1,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => HandshakeRole::Client,
            1 => HandshakeRole::Replica,
            _ => return None,
        })
    }
}

/// The client's handshake opener.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Oldest protocol version the client speaks.
    pub min_version: u16,
    /// Newest protocol version the client speaks.
    pub max_version: u16,
    /// Free-form client software identification (for server logs).
    pub agent: String,
    /// The role this connection wants.  Encoded as a trailing byte that v1 decoders never read
    /// (they ignore trailing payload bytes), so a v2 replica hello still parses — and is then
    /// version-rejected, not desynchronized — on a v1 server.
    pub role: HandshakeRole,
}

impl Hello {
    /// The hello an ordinary client sends.
    pub fn current(agent: impl Into<String>) -> Self {
        Self {
            min_version: PROTOCOL_VERSION_MIN,
            max_version: PROTOCOL_VERSION,
            agent: agent.into(),
            role: HandshakeRole::Client,
        }
    }

    /// The hello a replication subscriber sends (requires v2: replication kinds do not exist
    /// in v1).
    pub fn replica(agent: impl Into<String>) -> Self {
        Self {
            min_version: 2,
            max_version: PROTOCOL_VERSION,
            agent: agent.into(),
            role: HandshakeRole::Replica,
        }
    }

    /// Encodes the hello payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u16(self.min_version)
            .put_u16(self.max_version)
            .put_str(&self.agent)
            .put_u8(self.role.to_u8());
        e.finish()
    }

    /// Decodes a hello payload.  The role byte is optional: a v1 hello ends after the agent
    /// string and decodes as [`HandshakeRole::Client`].
    pub fn decode(bytes: &[u8]) -> WireResult<Self> {
        let mut d = Decoder::new(bytes);
        let min_version = d.get_u16()?;
        let max_version = d.get_u16()?;
        let agent = d.get_str()?.to_string();
        let role = if d.is_exhausted() {
            HandshakeRole::Client
        } else {
            let raw = d.get_u8()?;
            HandshakeRole::from_u8(raw)
                .ok_or_else(|| WireError::Recoverable(format!("unknown handshake role {raw}")))?
        };
        Ok(Self { min_version, max_version, agent, role })
    }
}

/// The server's handshake acceptance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Welcome {
    /// The negotiated protocol version (both peers must use it from here on).
    pub version: u16,
    /// The client id this connection is bound to; the lock table knows the client by this id,
    /// and the server refuses requests claiming any other id.
    pub client_id: u64,
    /// Free-form server identification.
    pub banner: String,
}

impl Welcome {
    /// Encodes the welcome payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u16(self.version).put_u64(self.client_id).put_str(&self.banner);
        e.finish()
    }

    /// Decodes a welcome payload.
    pub fn decode(bytes: &[u8]) -> WireResult<Self> {
        let mut d = Decoder::new(bytes);
        let version = d.get_u16()?;
        let client_id = d.get_u64()?;
        let banner = d.get_str()?.to_string();
        Ok(Self { version, client_id, banner })
    }
}

/// A replica's stream opener: ask for every record from `from_lsn` on.  The primary answers
/// with one [`LogBatch`] immediately (possibly empty — it carries the primary's current end of
/// log either way), then with a batch per news or heartbeat tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subscribe {
    /// First LSN the replica still needs (its durable applied LSN + 1; 1 for an empty store).
    pub from_lsn: Lsn,
}

impl Subscribe {
    /// Encodes the subscribe payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u64(self.from_lsn);
        e.finish()
    }

    /// Decodes a subscribe payload.
    pub fn decode(bytes: &[u8]) -> WireResult<Self> {
        let mut d = Decoder::new(bytes);
        let from_lsn = d.get_u64()?;
        if !d.is_exhausted() {
            return Err(WireError::Recoverable(format!(
                "{} trailing bytes after subscribe",
                d.remaining()
            )));
        }
        Ok(Self { from_lsn })
    }
}

/// One shipped batch of the primary's WAL.
///
/// Two shapes (see `docs/PROTOCOL.md` §6):
///
/// * **incremental** (`reset == false`): `records` are the primary's WAL records
///   `first_lsn ..= last_lsn`, whole transactions only — the replica reduces them with the same
///   committed-effects replay restart recovery uses and applies them on top of its keys;
/// * **reset** (`reset == true`): `records` are one synthetic committed transaction rebuilding
///   the full key space as of `last_lsn` (`first_lsn` is 0); the replica clears its store and
///   applies them in one local transaction.  Sent when the subscriber's cursor fell behind a
///   primary checkpoint, or came from a different log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogBatch {
    /// Whether the replica must clear its store before applying (snapshot resync).
    pub reset: bool,
    /// LSN of the first shipped record (0 in reset batches).
    pub first_lsn: Lsn,
    /// LSN the replica's state reaches after applying this batch (its next `Ack` value).
    pub last_lsn: Lsn,
    /// The primary's durable end of log when the batch was cut — what replica lag is measured
    /// against.
    pub primary_lsn: Lsn,
    /// The shipped records (empty in heartbeat batches).
    pub records: Vec<LogRecord>,
}

impl LogBatch {
    /// Encodes the batch payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_bool(self.reset)
            .put_u64(self.first_lsn)
            .put_u64(self.last_lsn)
            .put_u64(self.primary_lsn)
            .put_varint(self.records.len() as u64);
        for record in &self.records {
            e.put_bytes(&record.encode());
        }
        e.finish()
    }

    /// Decodes a batch payload.
    pub fn decode(bytes: &[u8]) -> WireResult<Self> {
        let mut d = Decoder::new(bytes);
        let reset = d.get_bool()?;
        let first_lsn = d.get_u64()?;
        let last_lsn = d.get_u64()?;
        let primary_lsn = d.get_u64()?;
        let n = d.get_varint()? as usize;
        let mut records = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            records.push(LogRecord::decode(d.get_bytes()?)?);
        }
        if !d.is_exhausted() {
            return Err(WireError::Recoverable(format!(
                "{} trailing bytes after log batch",
                d.remaining()
            )));
        }
        Ok(Self { reset, first_lsn, last_lsn, primary_lsn, records })
    }
}

/// A replica's durability acknowledgement: everything up to `applied_lsn` is committed in its
/// local store.  Flow control is one outstanding batch — the primary sends the next one only
/// after the ack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ack {
    /// The replica's new durable cursor.
    pub applied_lsn: Lsn,
}

impl Ack {
    /// Encodes the ack payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u64(self.applied_lsn);
        e.finish()
    }

    /// Decodes an ack payload.
    pub fn decode(bytes: &[u8]) -> WireResult<Self> {
        let mut d = Decoder::new(bytes);
        let applied_lsn = d.get_u64()?;
        if !d.is_exhausted() {
            return Err(WireError::Recoverable(format!(
                "{} trailing bytes after ack",
                d.remaining()
            )));
        }
        Ok(Self { applied_lsn })
    }
}

/// Picks the protocol version for a client's [`Hello`], or explains why there is none.
pub fn negotiate(hello: &Hello) -> Result<u16, String> {
    if hello.min_version > hello.max_version {
        return Err(format!(
            "client version range {}..={} is empty",
            hello.min_version, hello.max_version
        ));
    }
    let candidate = hello.max_version.min(PROTOCOL_VERSION);
    if candidate < hello.min_version || candidate < PROTOCOL_VERSION_MIN {
        return Err(format!(
            "no common protocol version: client speaks {}..={}, server speaks {}..={}",
            hello.min_version, hello.max_version, PROTOCOL_VERSION_MIN, PROTOCOL_VERSION
        ));
    }
    Ok(candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"hello").unwrap();
        write_frame(&mut buf, FrameKind::Response, b"").unwrap();
        let mut cursor = Cursor::new(buf);
        let first = read_frame(&mut cursor).unwrap();
        assert_eq!(first.kind, FrameKind::Request);
        assert_eq!(first.payload, b"hello");
        let second = read_frame(&mut cursor).unwrap();
        assert_eq!(second.kind, FrameKind::Response);
        assert!(second.payload.is_empty());
        // Clean EOF after the last frame.
        assert!(matches!(read_frame(&mut cursor), Err(WireError::Io(_))));
    }

    #[test]
    fn corrupted_payload_is_recoverable_and_resynchronizes() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"damaged").unwrap();
        write_frame(&mut buf, FrameKind::Request, b"intact").unwrap();
        buf[14] ^= 0xFF; // flip a byte inside the first payload
        let mut cursor = Cursor::new(buf);
        let err = read_frame(&mut cursor).unwrap_err();
        assert!(err.is_recoverable(), "checksum failure must keep the connection: {err}");
        // The reader consumed exactly the damaged frame; the next one parses.
        assert_eq!(read_frame(&mut cursor).unwrap().payload, b"intact");
    }

    #[test]
    fn bad_magic_and_oversize_are_fatal() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"x").unwrap();
        buf[0] = b'X';
        assert!(matches!(read_frame(&mut Cursor::new(buf)), Err(WireError::Fatal(_))));

        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"x").unwrap();
        buf[5..9].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(matches!(read_frame(&mut Cursor::new(buf)), Err(WireError::Fatal(_))));

        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"x").unwrap();
        buf[4] = 99; // unknown frame kind
        assert!(matches!(read_frame(&mut Cursor::new(buf)), Err(WireError::Fatal(_))));
    }

    #[test]
    fn truncated_frames_error_cleanly() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"truncate me").unwrap();
        for cut in 0..buf.len() {
            let mut cursor = Cursor::new(buf[..cut].to_vec());
            assert!(read_frame(&mut cursor).is_err(), "cut at {cut} must error, not panic");
        }
    }

    #[test]
    fn incremental_decoder_matches_the_blocking_reader() {
        let mut stream = Vec::new();
        write_frame(&mut stream, FrameKind::Request, b"first").unwrap();
        write_frame(&mut stream, FrameKind::Response, b"").unwrap();
        write_frame(&mut stream, FrameKind::Request, b"third frame payload").unwrap();

        // Fed byte by byte, the decoder produces exactly the three frames, in order.
        let mut decoder = FrameDecoder::new();
        let mut frames = Vec::new();
        for byte in &stream {
            decoder.extend(std::slice::from_ref(byte));
            while let Some(frame) = decoder.next_frame().unwrap() {
                frames.push(frame);
            }
        }
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].payload, b"first");
        assert_eq!(frames[1].kind, FrameKind::Response);
        assert_eq!(frames[2].payload, b"third frame payload");
        assert_eq!(decoder.buffered(), 0);

        // Fed all at once, one wakeup drains all three — the pipelining read path.
        let mut decoder = FrameDecoder::new();
        decoder.extend(&stream);
        let mut n = 0;
        while decoder.next_frame().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn incremental_decoder_classifies_errors_like_read_frame() {
        // Corrupt payload: recoverable, and the decoder resynchronizes on the next frame.
        let mut stream = Vec::new();
        write_frame(&mut stream, FrameKind::Request, b"damaged").unwrap();
        write_frame(&mut stream, FrameKind::Request, b"intact").unwrap();
        stream[14] ^= 0xFF;
        let mut decoder = FrameDecoder::new();
        decoder.extend(&stream);
        let err = decoder.next_frame().unwrap_err();
        assert!(err.is_recoverable(), "checksum failure must keep the stream: {err}");
        assert_eq!(decoder.next_frame().unwrap().unwrap().payload, b"intact");

        // Bad magic, unknown kind, oversize: all fatal, like the blocking reader.
        let corruptions: [fn(&mut Vec<u8>); 3] = [
            |b| b[0] = b'X',
            |b| b[4] = 99,
            |b| b[5..9].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes()),
        ];
        for corrupt in corruptions {
            let mut stream = Vec::new();
            write_frame(&mut stream, FrameKind::Request, b"x").unwrap();
            corrupt(&mut stream);
            let mut decoder = FrameDecoder::new();
            decoder.extend(&stream);
            assert!(matches!(decoder.next_frame(), Err(WireError::Fatal(_))));
        }
    }

    #[test]
    fn handshake_records_roundtrip() {
        let hello = Hello::current("test-agent");
        assert_eq!(Hello::decode(&hello.encode()).unwrap(), hello);
        let replica = Hello::replica("replica-agent");
        assert_eq!(replica.role, HandshakeRole::Replica);
        assert_eq!(Hello::decode(&replica.encode()).unwrap(), replica);
        let welcome = Welcome { version: 1, client_id: 42, banner: "seed-net".into() };
        assert_eq!(Welcome::decode(&welcome.encode()).unwrap(), welcome);
        assert!(Hello::decode(&[1, 2]).is_err());
    }

    #[test]
    fn v1_hello_without_role_byte_decodes_as_client() {
        // A v1 peer's hello ends after the agent string.
        let mut e = Encoder::new();
        e.put_u16(1).put_u16(1).put_str("old client");
        let hello = Hello::decode(&e.finish()).unwrap();
        assert_eq!(hello.role, HandshakeRole::Client);
        assert_eq!(hello.max_version, 1);
        // An unknown role byte is a malformed (recoverable) payload, not a desync.
        let mut e = Encoder::new();
        e.put_u16(1).put_u16(2).put_str("x").put_u8(9);
        assert!(Hello::decode(&e.finish()).unwrap_err().is_recoverable());
    }

    #[test]
    fn replication_records_roundtrip() {
        let sub = Subscribe { from_lsn: 17 };
        assert_eq!(Subscribe::decode(&sub.encode()).unwrap(), sub);
        let ack = Ack { applied_lsn: 99 };
        assert_eq!(Ack::decode(&ack.encode()).unwrap(), ack);
        let batch = LogBatch {
            reset: false,
            first_lsn: 18,
            last_lsn: 21,
            primary_lsn: 25,
            records: vec![
                LogRecord::Begin { txn: 4 },
                LogRecord::Put { txn: 4, key: b"o/1".to_vec(), value: b"data".to_vec() },
                LogRecord::Delete { txn: 4, key: b"d/o1".to_vec() },
                LogRecord::Commit { txn: 4 },
            ],
        };
        assert_eq!(LogBatch::decode(&batch.encode()).unwrap(), batch);
        let heartbeat =
            LogBatch { reset: true, first_lsn: 0, last_lsn: 7, primary_lsn: 7, records: vec![] };
        assert_eq!(LogBatch::decode(&heartbeat.encode()).unwrap(), heartbeat);
        // Trailing bytes are rejected as recoverable, like every other payload.
        let mut bytes = sub.encode();
        bytes.push(0);
        assert!(Subscribe::decode(&bytes).unwrap_err().is_recoverable());
        let mut bytes = batch.encode();
        bytes.push(0);
        assert!(LogBatch::decode(&bytes).unwrap_err().is_recoverable());
        let mut bytes = ack.encode();
        bytes.push(0);
        assert!(Ack::decode(&bytes).unwrap_err().is_recoverable());
    }

    #[test]
    fn version_negotiation() {
        assert_eq!(negotiate(&Hello::current("t")).unwrap(), PROTOCOL_VERSION);
        // A newer client that still speaks our version gets our version.
        let newer = Hello {
            min_version: PROTOCOL_VERSION,
            max_version: PROTOCOL_VERSION + 5,
            agent: String::new(),
            role: HandshakeRole::Client,
        };
        assert_eq!(negotiate(&newer).unwrap(), PROTOCOL_VERSION);
        // A client that requires only future versions is refused.
        let future = Hello {
            min_version: PROTOCOL_VERSION + 1,
            max_version: PROTOCOL_VERSION + 2,
            agent: String::new(),
            role: HandshakeRole::Client,
        };
        assert!(negotiate(&future).is_err());
        let empty = Hello {
            min_version: 3,
            max_version: 2,
            agent: String::new(),
            role: HandshakeRole::Client,
        };
        assert!(negotiate(&empty).is_err());
    }
}
