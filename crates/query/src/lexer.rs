//! Tokenizer for the retrieval language.

use crate::error::{QueryError, QueryResult};

/// A token of the retrieval language.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare word: keyword, class name, role name (may contain dots and brackets).
    Word(String),
    /// Quoted string literal.
    Literal(String),
    /// `=`
    Equal,
    /// `!=`
    NotEqual,
    /// `<`
    Less,
    /// `>`
    Greater,
    /// End of input.
    Eof,
}

/// Tokenizes the query text.
pub fn tokenize(input: &str) -> QueryResult<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        match c {
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != '"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(QueryError::Parse {
                        position: i,
                        message: "unterminated string literal".to_string(),
                    });
                }
                tokens.push(Token::Literal(bytes[start..j].iter().collect()));
                i = j + 1;
            }
            '=' => {
                tokens.push(Token::Equal);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token::NotEqual);
                    i += 2;
                } else {
                    return Err(QueryError::Parse {
                        position: i,
                        message: "expected '!='".to_string(),
                    });
                }
            }
            '<' => {
                tokens.push(Token::Less);
                i += 1;
            }
            '>' => {
                tokens.push(Token::Greater);
                i += 1;
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && (bytes[j].is_alphanumeric()
                        || bytes[j] == '_'
                        || bytes[j] == '.'
                        || bytes[j] == '['
                        || bytes[j] == ']')
                {
                    j += 1;
                }
                tokens.push(Token::Word(bytes[start..j].iter().collect()));
                i = j;
            }
            other => {
                return Err(QueryError::Parse {
                    position: i,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_find_query() {
        let toks = tokenize(r#"find Data where name = "Alarms""#).unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("find".into()),
                Token::Word("Data".into()),
                Token::Word("where".into()),
                Token::Word("name".into()),
                Token::Equal,
                Token::Literal("Alarms".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn dotted_words_and_operators() {
        let toks = tokenize("find Data.Text.Selector where value != \"x\"").unwrap();
        assert!(toks.contains(&Token::Word("Data.Text.Selector".into())));
        assert!(toks.contains(&Token::NotEqual));
        let toks = tokenize("value < \"5\" value > \"1\"").unwrap();
        assert!(toks.contains(&Token::Less));
        assert!(toks.contains(&Token::Greater));
    }

    #[test]
    fn errors() {
        assert!(tokenize("find Data where name = \"unterminated").is_err());
        assert!(tokenize("find ? Data").is_err());
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn empty_input_is_eof_only() {
        assert_eq!(tokenize("  ").unwrap(), vec![Token::Eof]);
    }
}
