//! Offline stand-in for `serde`.
//!
//! Provides the two trait names and the derive macros so that
//! `use serde::{Deserialize, Serialize};` plus `#[derive(Serialize, Deserialize)]` compile
//! without network access.  SEED's persistence uses the explicit binary codec in
//! `seed-storage` instead of serde, so nothing in the workspace calls serde methods or
//! requires these traits as bounds; the derives are kept as forward-looking annotations.
//! Restoring the real crates.io `serde` is a one-line change in the root `Cargo.toml`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize` (no methods in the offline stand-in).
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize` (no methods in the offline stand-in).
pub trait Deserialize<'de>: Sized {}
