//! Object classes, including hierarchically structured (dependent) classes.
//!
//! A class is identified by its **path name**: independent classes have a simple name
//! (`Data`), dependent classes are named through their owner (`Data.Text`, `Data.Text.Body`).
//! Dependent classes carry the cardinality of their occurrence within the owning object
//! (`Data.Text` has cardinality `0..16` in Figure 2).
//!
//! Orthogonally to the *composition* hierarchy, classes participate in a *generalization*
//! hierarchy (`Data` is-a `Thing`) used for vague data; see [`crate::generalization`].

use serde::{Deserialize, Serialize};

use crate::cardinality::Cardinality;
use crate::domain::Domain;
use crate::ids::ClassId;
use crate::procedure::AttachedProcedure;

/// An object class of a SEED schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectClass {
    /// Handle of this class within its schema.
    pub id: ClassId,
    /// Full path name, e.g. `"Data.Text.Selector"`.
    pub name: String,
    /// Owner class for dependent classes (`Data.Text` is owned by `Data`); `None` for
    /// independent classes.
    pub owner: Option<ClassId>,
    /// Occurrence cardinality within the owning object (only meaningful when `owner` is set).
    /// The maximum is consistency information, the minimum completeness information.
    pub occurrence: Cardinality,
    /// Value domain for leaf classes whose instances carry values (`STRING`, `DATE`, ...).
    pub domain: Option<Domain>,
    /// Direct superclass in the generalization (is-a) hierarchy, if any.
    pub superclass: Option<ClassId>,
    /// Covering condition: if `true`, every instance must *eventually* be specialized into one
    /// of this class's subclasses (completeness information).
    pub covering: bool,
    /// Attached procedures executed when instances of this class are updated.
    pub procedures: Vec<AttachedProcedure>,
}

impl ObjectClass {
    /// Local (last) segment of the path name: `"Selector"` for `"Data.Text.Selector"`.
    pub fn local_name(&self) -> &str {
        self.name.rsplit('.').next().unwrap_or(&self.name)
    }

    /// Whether this is a dependent (sub-object) class.
    pub fn is_dependent(&self) -> bool {
        self.owner.is_some()
    }

    /// Whether instances of this class carry a value.
    pub fn has_value(&self) -> bool {
        self.domain.is_some()
    }

    /// Whether this class takes part in a generalization hierarchy as a specialization.
    pub fn is_specialization(&self) -> bool {
        self.superclass.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str, owner: Option<ClassId>) -> ObjectClass {
        ObjectClass {
            id: ClassId(0),
            name: name.to_string(),
            owner,
            occurrence: Cardinality::exactly_one(),
            domain: None,
            superclass: None,
            covering: false,
            procedures: Vec::new(),
        }
    }

    #[test]
    fn local_name_is_last_segment() {
        assert_eq!(sample("Data", None).local_name(), "Data");
        assert_eq!(sample("Data.Text.Selector", Some(ClassId(1))).local_name(), "Selector");
    }

    #[test]
    fn dependent_and_value_flags() {
        let mut c = sample("Data.Text", Some(ClassId(0)));
        assert!(c.is_dependent());
        assert!(!c.has_value());
        assert!(!c.is_specialization());
        c.domain = Some(Domain::String);
        c.superclass = Some(ClassId(9));
        assert!(c.has_value());
        assert!(c.is_specialization());
        assert!(!sample("Data", None).is_dependent());
    }
}
