//! Per-item binary codec and the keyed on-disk layout.
//!
//! Every piece of database state maps onto its **own** storage key, so that a committed
//! mutation can be made durable by writing only the records it touched (see
//! [`crate::durability`]).  The key space:
//!
//! | key                    | value                                            |
//! |------------------------|--------------------------------------------------|
//! | `meta`                 | format tag, id floors, current schema version, transition rules, version sequence |
//! | `o/<id:016x>`          | one [`ObjectRecord`] plus the patterns it inherits |
//! | `r/<id:016x>`          | one [`RelationshipRecord`]                       |
//! | `s/<svid:08x>`         | one published [`Schema`] version                 |
//! | `vi/<vid>`             | one version's metadata ([`VersionInfo`])         |
//! | `v/<vid>/o<id:016x>`   | an object's delta snapshot recorded at version `vid` |
//! | `v/<vid>/r<id:016x>`   | a relationship's delta snapshot recorded at `vid` |
//! | `d/o<id:016x>` etc.    | presence marker: the item is dirty (changed since the last version snapshot) |
//!
//! Ids are zero-padded hexadecimal so that lexicographic key order equals numeric id order and
//! prefix/range scans (`o/`, `v/1.0/`, ...) retrieve exactly one kind of record.  All values go
//! through the storage crate's explicit little-endian codec; nothing here touches serde.
//!
//! The legacy whole-database blob layout (`seed/schema`, `seed/objects`, ...) lives in
//! [`crate::persist`] and shares these record encoders; [`crate::durability`] migrates blob
//! databases to this layout on open.

use seed_schema::{
    AssociationId, AttachedProcedure, Cardinality, ClassId, Domain, RelationshipAttribute, Role,
    Schema, SchemaVersionId,
};
use seed_storage::{Decoder, Encoder};

use crate::error::{SeedError, SeedResult};
use crate::history::TransitionRule;
use crate::ident::{ItemId, ObjectId, RelationshipId, VersionId};
use crate::name::ObjectName;
use crate::object::ObjectRecord;
use crate::relationship::RelationshipRecord;
use crate::value::Value;
use crate::version::{ItemSnapshot, VersionInfo};

/// Version tag written into the `meta` record; bump on incompatible layout changes.
pub(crate) const FORMAT_VERSION: u32 = 1;

/// The key of the meta record.
pub(crate) const KEY_META: &[u8] = b"meta";

// --------------------------------------------------------------------------------------------
// Key construction and parsing
// --------------------------------------------------------------------------------------------

/// Key prefixes of the per-item layout (each names one kind of record).
pub(crate) const PREFIX_OBJECT: &[u8] = b"o/";
pub(crate) const PREFIX_RELATIONSHIP: &[u8] = b"r/";
pub(crate) const PREFIX_SCHEMA: &[u8] = b"s/";
pub(crate) const PREFIX_VERSION_INFO: &[u8] = b"vi/";
pub(crate) const PREFIX_VERSION_DELTA: &[u8] = b"v/";
pub(crate) const PREFIX_DIRTY: &[u8] = b"d/";

/// `o/<id:016x>`
pub(crate) fn object_key(id: ObjectId) -> Vec<u8> {
    format!("o/{:016x}", id.0).into_bytes()
}

/// `r/<id:016x>`
pub(crate) fn relationship_key(id: RelationshipId) -> Vec<u8> {
    format!("r/{:016x}", id.0).into_bytes()
}

/// Parses an `o/<id>` key back into its object id.
pub(crate) fn parse_object_key(key: &[u8]) -> SeedResult<ObjectId> {
    let bad = || SeedError::Invalid(format!("malformed object key {key:?}"));
    let text = std::str::from_utf8(key).map_err(|_| bad())?;
    let hex = text.strip_prefix("o/").ok_or_else(bad)?;
    Ok(ObjectId(u64::from_str_radix(hex, 16).map_err(|_| bad())?))
}

/// Parses an `r/<id>` key back into its relationship id.
pub(crate) fn parse_relationship_key(key: &[u8]) -> SeedResult<RelationshipId> {
    let bad = || SeedError::Invalid(format!("malformed relationship key {key:?}"));
    let text = std::str::from_utf8(key).map_err(|_| bad())?;
    let hex = text.strip_prefix("r/").ok_or_else(bad)?;
    Ok(RelationshipId(u64::from_str_radix(hex, 16).map_err(|_| bad())?))
}

/// `s/<svid:08x>`
pub(crate) fn schema_key(id: SchemaVersionId) -> Vec<u8> {
    format!("s/{:08x}", id.0).into_bytes()
}

/// `vi/<vid>`
pub(crate) fn version_info_key(id: &VersionId) -> Vec<u8> {
    format!("vi/{id}").into_bytes()
}

fn item_suffix(item: ItemId) -> String {
    match item {
        ItemId::Object(o) => format!("o{:016x}", o.0),
        ItemId::Relationship(r) => format!("r{:016x}", r.0),
    }
}

fn parse_item_suffix(s: &str) -> SeedResult<ItemId> {
    let bad = || SeedError::Invalid(format!("malformed item key suffix '{s}'"));
    let (tag, hex) = s.split_at(1.min(s.len()));
    let id = u64::from_str_radix(hex, 16).map_err(|_| bad())?;
    match tag {
        "o" => Ok(ItemId::Object(ObjectId(id))),
        "r" => Ok(ItemId::Relationship(RelationshipId(id))),
        _ => Err(bad()),
    }
}

/// `v/<vid>/<item-suffix>`
pub(crate) fn version_delta_key(vid: &VersionId, item: ItemId) -> Vec<u8> {
    format!("v/{vid}/{}", item_suffix(item)).into_bytes()
}

/// The prefix under which all delta snapshots of version `vid` live.
pub(crate) fn version_delta_prefix(vid: &VersionId) -> Vec<u8> {
    format!("v/{vid}/").into_bytes()
}

/// Parses a `v/<vid>/<item>` key back into its version id and item.
pub(crate) fn parse_version_delta_key(key: &[u8]) -> SeedResult<(VersionId, ItemId)> {
    let text = std::str::from_utf8(key)
        .map_err(|_| SeedError::Invalid("version delta key is not UTF-8".to_string()))?;
    let rest = text
        .strip_prefix("v/")
        .ok_or_else(|| SeedError::Invalid(format!("not a version delta key: '{text}'")))?;
    let (vid, item) = rest
        .rsplit_once('/')
        .ok_or_else(|| SeedError::Invalid(format!("malformed version delta key: '{text}'")))?;
    Ok((VersionId::parse(vid)?, parse_item_suffix(item)?))
}

/// `d/<item-suffix>` — the dirty-set presence marker for one item.
pub(crate) fn dirty_key(item: ItemId) -> Vec<u8> {
    format!("d/{}", item_suffix(item)).into_bytes()
}

/// Parses a `d/<item>` key back into the dirty item.
pub(crate) fn parse_dirty_key(key: &[u8]) -> SeedResult<ItemId> {
    let text = std::str::from_utf8(key)
        .map_err(|_| SeedError::Invalid("dirty key is not UTF-8".to_string()))?;
    let rest = text
        .strip_prefix("d/")
        .ok_or_else(|| SeedError::Invalid(format!("not a dirty key: '{text}'")))?;
    parse_item_suffix(rest)
}

// --------------------------------------------------------------------------------------------
// Value encoding
// --------------------------------------------------------------------------------------------

/// Encodes one [`Value`] (tag byte + payload).  Public because the network layer (`seed-net`)
/// reuses the per-item encodings as its wire representation.
pub fn encode_value(e: &mut Encoder, v: &Value) {
    match v {
        Value::String(s) => {
            e.put_u8(0).put_str(s);
        }
        Value::Integer(i) => {
            e.put_u8(1).put_i64(*i);
        }
        Value::Real(r) => {
            e.put_u8(2).put_f64(*r);
        }
        Value::Boolean(b) => {
            e.put_u8(3).put_bool(*b);
        }
        Value::Date { year, month, day } => {
            e.put_u8(4).put_i64(*year as i64).put_u8(*month).put_u8(*day);
        }
        Value::Symbol(s) => {
            e.put_u8(5).put_str(s);
        }
        Value::Text(s) => {
            e.put_u8(6).put_str(s);
        }
        Value::Undefined => {
            e.put_u8(7);
        }
    }
}

/// Decodes one [`Value`] written by [`encode_value`].
pub fn decode_value(d: &mut Decoder<'_>) -> SeedResult<Value> {
    Ok(match d.get_u8()? {
        0 => Value::String(d.get_str()?.to_string()),
        1 => Value::Integer(d.get_i64()?),
        2 => Value::Real(d.get_f64()?),
        3 => Value::Boolean(d.get_bool()?),
        4 => Value::Date { year: d.get_i64()? as i32, month: d.get_u8()?, day: d.get_u8()? },
        5 => Value::Symbol(d.get_str()?.to_string()),
        6 => Value::Text(d.get_str()?.to_string()),
        7 => Value::Undefined,
        other => return Err(SeedError::Invalid(format!("unknown value tag {other}"))),
    })
}

// --------------------------------------------------------------------------------------------
// Domain / cardinality / procedure encoding
// --------------------------------------------------------------------------------------------

pub(crate) fn encode_domain(e: &mut Encoder, d: &Domain) {
    match d {
        Domain::String => {
            e.put_u8(0);
        }
        Domain::Integer => {
            e.put_u8(1);
        }
        Domain::Real => {
            e.put_u8(2);
        }
        Domain::Boolean => {
            e.put_u8(3);
        }
        Domain::Date => {
            e.put_u8(4);
        }
        Domain::Text => {
            e.put_u8(5);
        }
        Domain::Enumeration(lits) => {
            e.put_u8(6).put_varint(lits.len() as u64);
            for lit in lits {
                e.put_str(lit);
            }
        }
    }
}

pub(crate) fn decode_domain(d: &mut Decoder<'_>) -> SeedResult<Domain> {
    Ok(match d.get_u8()? {
        0 => Domain::String,
        1 => Domain::Integer,
        2 => Domain::Real,
        3 => Domain::Boolean,
        4 => Domain::Date,
        5 => Domain::Text,
        6 => {
            let n = d.get_varint()? as usize;
            let mut lits = Vec::with_capacity(n);
            for _ in 0..n {
                lits.push(d.get_str()?.to_string());
            }
            Domain::Enumeration(lits)
        }
        other => return Err(SeedError::Invalid(format!("unknown domain tag {other}"))),
    })
}

pub(crate) fn encode_cardinality(e: &mut Encoder, c: &Cardinality) {
    e.put_u32(c.min);
    match c.max {
        Some(m) => {
            e.put_bool(true).put_u32(m);
        }
        None => {
            e.put_bool(false);
        }
    }
}

pub(crate) fn decode_cardinality(d: &mut Decoder<'_>) -> SeedResult<Cardinality> {
    let min = d.get_u32()?;
    let max = if d.get_bool()? { Some(d.get_u32()?) } else { None };
    Cardinality::new(min, max).map_err(SeedError::from)
}

pub(crate) fn encode_procedure(e: &mut Encoder, p: &AttachedProcedure) {
    match p {
        AttachedProcedure::ValueRange { min, max } => {
            e.put_u8(0);
            match min {
                Some(v) => {
                    e.put_bool(true).put_i64(*v);
                }
                None => {
                    e.put_bool(false);
                }
            }
            match max {
                Some(v) => {
                    e.put_bool(true).put_i64(*v);
                }
                None => {
                    e.put_bool(false);
                }
            }
        }
        AttachedProcedure::ValueNotEmpty => {
            e.put_u8(1);
        }
        AttachedProcedure::ValueContains(s) => {
            e.put_u8(2).put_str(s);
        }
        AttachedProcedure::MaxLength(n) => {
            e.put_u8(3).put_varint(*n as u64);
        }
        AttachedProcedure::Named(s) => {
            e.put_u8(4).put_str(s);
        }
    }
}

pub(crate) fn decode_procedure(d: &mut Decoder<'_>) -> SeedResult<AttachedProcedure> {
    Ok(match d.get_u8()? {
        0 => {
            let min = if d.get_bool()? { Some(d.get_i64()?) } else { None };
            let max = if d.get_bool()? { Some(d.get_i64()?) } else { None };
            AttachedProcedure::ValueRange { min, max }
        }
        1 => AttachedProcedure::ValueNotEmpty,
        2 => AttachedProcedure::ValueContains(d.get_str()?.to_string()),
        3 => AttachedProcedure::MaxLength(d.get_varint()? as usize),
        4 => AttachedProcedure::Named(d.get_str()?.to_string()),
        other => return Err(SeedError::Invalid(format!("unknown procedure tag {other}"))),
    })
}

// --------------------------------------------------------------------------------------------
// Schema encoding
// --------------------------------------------------------------------------------------------

pub(crate) fn encode_schema(e: &mut Encoder, schema: &Schema) {
    e.put_str(&schema.name);
    e.put_varint(schema.class_count() as u64);
    for class in schema.classes() {
        e.put_str(&class.name);
        match class.owner {
            Some(o) => {
                e.put_bool(true).put_u32(o.0);
            }
            None => {
                e.put_bool(false);
            }
        }
        encode_cardinality(e, &class.occurrence);
        match &class.domain {
            Some(d) => {
                e.put_bool(true);
                encode_domain(e, d);
            }
            None => {
                e.put_bool(false);
            }
        }
        match class.superclass {
            Some(s) => {
                e.put_bool(true).put_u32(s.0);
            }
            None => {
                e.put_bool(false);
            }
        }
        e.put_bool(class.covering);
        e.put_varint(class.procedures.len() as u64);
        for p in &class.procedures {
            encode_procedure(e, p);
        }
    }
    e.put_varint(schema.association_count() as u64);
    for assoc in schema.associations() {
        e.put_str(&assoc.name);
        e.put_varint(assoc.roles.len() as u64);
        for role in &assoc.roles {
            e.put_str(&role.name).put_u32(role.class.0);
            encode_cardinality(e, &role.cardinality);
        }
        e.put_bool(assoc.acyclic);
        match assoc.superassociation {
            Some(s) => {
                e.put_bool(true).put_u32(s.0);
            }
            None => {
                e.put_bool(false);
            }
        }
        e.put_bool(assoc.covering);
        e.put_varint(assoc.procedures.len() as u64);
        for p in &assoc.procedures {
            encode_procedure(e, p);
        }
        e.put_varint(assoc.attributes.len() as u64);
        for attr in &assoc.attributes {
            e.put_str(&attr.name);
            encode_domain(e, &attr.domain);
            e.put_bool(attr.required);
        }
    }
}

pub(crate) fn decode_schema(d: &mut Decoder<'_>) -> SeedResult<Schema> {
    let name = d.get_str()?.to_string();
    let mut schema = Schema::new(name);
    let class_count = d.get_varint()? as usize;
    struct PendingClass {
        superclass: Option<u32>,
        covering: bool,
        procedures: Vec<AttachedProcedure>,
    }
    let mut pending_classes = Vec::with_capacity(class_count);
    for _ in 0..class_count {
        let name = d.get_str()?.to_string();
        let owner = if d.get_bool()? { Some(ClassId(d.get_u32()?)) } else { None };
        let occurrence = decode_cardinality(d)?;
        let domain = if d.get_bool()? { Some(decode_domain(d)?) } else { None };
        let superclass = if d.get_bool()? { Some(d.get_u32()?) } else { None };
        let covering = d.get_bool()?;
        let proc_count = d.get_varint()? as usize;
        let mut procedures = Vec::with_capacity(proc_count);
        for _ in 0..proc_count {
            procedures.push(decode_procedure(d)?);
        }
        // Classes are encoded in id order, so re-adding them in order reproduces the ids.
        schema.add_class_full(name, owner, occurrence, domain)?;
        pending_classes.push(PendingClass { superclass, covering, procedures });
    }
    for (idx, pending) in pending_classes.into_iter().enumerate() {
        let id = ClassId(idx as u32);
        if let Some(sup) = pending.superclass {
            schema.set_superclass(id, ClassId(sup))?;
        }
        if pending.covering {
            schema.set_class_covering(id, true)?;
        }
        for p in pending.procedures {
            schema.attach_class_procedure(id, p)?;
        }
    }

    let assoc_count = d.get_varint()? as usize;
    struct PendingAssoc {
        superassociation: Option<u32>,
        covering: bool,
        procedures: Vec<AttachedProcedure>,
        attributes: Vec<RelationshipAttribute>,
    }
    let mut pending_assocs = Vec::with_capacity(assoc_count);
    for _ in 0..assoc_count {
        let name = d.get_str()?.to_string();
        let role_count = d.get_varint()? as usize;
        let mut roles = Vec::with_capacity(role_count);
        for _ in 0..role_count {
            let role_name = d.get_str()?.to_string();
            let class = ClassId(d.get_u32()?);
            let cardinality = decode_cardinality(d)?;
            roles.push(Role::new(role_name, class, cardinality));
        }
        let acyclic = d.get_bool()?;
        let superassociation = if d.get_bool()? { Some(d.get_u32()?) } else { None };
        let covering = d.get_bool()?;
        let proc_count = d.get_varint()? as usize;
        let mut procedures = Vec::with_capacity(proc_count);
        for _ in 0..proc_count {
            procedures.push(decode_procedure(d)?);
        }
        let attr_count = d.get_varint()? as usize;
        let mut attributes = Vec::with_capacity(attr_count);
        for _ in 0..attr_count {
            let attr_name = d.get_str()?.to_string();
            let domain = decode_domain(d)?;
            let required = d.get_bool()?;
            attributes.push(RelationshipAttribute::new(attr_name, domain, required));
        }
        schema.add_association(name, roles, acyclic)?;
        pending_assocs.push(PendingAssoc { superassociation, covering, procedures, attributes });
    }
    for (idx, pending) in pending_assocs.into_iter().enumerate() {
        let id = AssociationId(idx as u32);
        if let Some(sup) = pending.superassociation {
            schema.set_superassociation(id, AssociationId(sup))?;
        }
        if pending.covering {
            schema.set_association_covering(id, true)?;
        }
        for p in pending.procedures {
            schema.attach_association_procedure(id, p)?;
        }
        for attr in pending.attributes {
            schema.add_relationship_attribute(id, attr)?;
        }
    }
    Ok(schema)
}

/// Encodes one schema version as a standalone `s/<svid>` record.
pub(crate) fn encode_schema_entry(schema: &Schema) -> Vec<u8> {
    let mut e = Encoder::new();
    encode_schema(&mut e, schema);
    e.finish()
}

/// Decodes a standalone `s/<svid>` record.
pub(crate) fn decode_schema_entry(bytes: &[u8]) -> SeedResult<Schema> {
    let mut d = Decoder::new(bytes);
    decode_schema(&mut d)
}

// --------------------------------------------------------------------------------------------
// Record encoding
// --------------------------------------------------------------------------------------------

/// Encodes one [`ObjectRecord`] (without inherits-links; the `o/<id>` storage record adds
/// those).  Public for reuse by the network wire format.
pub fn encode_object(e: &mut Encoder, o: &ObjectRecord) {
    e.put_u64(o.id.0).put_u32(o.class.0).put_str(&o.name.to_string());
    match o.parent {
        Some(p) => {
            e.put_bool(true).put_u64(p.0);
        }
        None => {
            e.put_bool(false);
        }
    }
    encode_value(e, &o.value);
    e.put_bool(o.is_pattern).put_bool(o.deleted);
}

/// Decodes one [`ObjectRecord`] written by [`encode_object`].
pub fn decode_object(d: &mut Decoder<'_>) -> SeedResult<ObjectRecord> {
    let id = ObjectId(d.get_u64()?);
    let class = ClassId(d.get_u32()?);
    let name = ObjectName::parse(d.get_str()?)?;
    let parent = if d.get_bool()? { Some(ObjectId(d.get_u64()?)) } else { None };
    let value = decode_value(d)?;
    let is_pattern = d.get_bool()?;
    let deleted = d.get_bool()?;
    Ok(ObjectRecord { id, class, name, parent, value, is_pattern, deleted })
}

/// Encodes one [`RelationshipRecord`].  Public for reuse by the network wire format.
pub fn encode_relationship(e: &mut Encoder, r: &RelationshipRecord) {
    e.put_u64(r.id.0).put_u32(r.association.0);
    e.put_varint(r.bindings.len() as u64);
    for (role, obj) in &r.bindings {
        e.put_str(role).put_u64(obj.0);
    }
    e.put_varint(r.attributes.len() as u64);
    for (name, value) in &r.attributes {
        e.put_str(name);
        encode_value(e, value);
    }
    e.put_bool(r.is_pattern).put_bool(r.deleted);
}

/// Decodes one [`RelationshipRecord`] written by [`encode_relationship`].
pub fn decode_relationship(d: &mut Decoder<'_>) -> SeedResult<RelationshipRecord> {
    let id = RelationshipId(d.get_u64()?);
    let association = AssociationId(d.get_u32()?);
    let binding_count = d.get_varint()? as usize;
    let mut bindings = Vec::with_capacity(binding_count);
    for _ in 0..binding_count {
        let role = d.get_str()?.to_string();
        let obj = ObjectId(d.get_u64()?);
        bindings.push((role, obj));
    }
    let attr_count = d.get_varint()? as usize;
    let mut record = RelationshipRecord::new(id, association, bindings);
    for _ in 0..attr_count {
        let name = d.get_str()?.to_string();
        let value = decode_value(d)?;
        record.attributes.insert(name, value);
    }
    record.is_pattern = d.get_bool()?;
    record.deleted = d.get_bool()?;
    Ok(record)
}

/// Encodes one `o/<id>` record: the object plus the patterns it inherits (the inherits-links
/// travel with the inheritor so that a pattern-inheritance change re-writes exactly one key).
pub(crate) fn encode_object_entry(o: &ObjectRecord, inherits: &[ObjectId]) -> Vec<u8> {
    let mut e = Encoder::new();
    encode_object(&mut e, o);
    e.put_varint(inherits.len() as u64);
    for p in inherits {
        e.put_u64(p.0);
    }
    e.finish()
}

/// Decodes an `o/<id>` record into the object and its inherited patterns.
pub(crate) fn decode_object_entry(bytes: &[u8]) -> SeedResult<(ObjectRecord, Vec<ObjectId>)> {
    let mut d = Decoder::new(bytes);
    let record = decode_object(&mut d)?;
    let n = d.get_varint()? as usize;
    let mut inherits = Vec::with_capacity(n);
    for _ in 0..n {
        inherits.push(ObjectId(d.get_u64()?));
    }
    Ok((record, inherits))
}

/// Encodes one `r/<id>` record.
pub(crate) fn encode_relationship_entry(r: &RelationshipRecord) -> Vec<u8> {
    let mut e = Encoder::new();
    encode_relationship(&mut e, r);
    e.finish()
}

/// Decodes an `r/<id>` record.
pub(crate) fn decode_relationship_entry(bytes: &[u8]) -> SeedResult<RelationshipRecord> {
    let mut d = Decoder::new(bytes);
    decode_relationship(&mut d)
}

pub(crate) fn encode_item_id(e: &mut Encoder, item: &ItemId) {
    match item {
        ItemId::Object(o) => {
            e.put_u8(0).put_u64(o.0);
        }
        ItemId::Relationship(r) => {
            e.put_u8(1).put_u64(r.0);
        }
    }
}

pub(crate) fn decode_item_id(d: &mut Decoder<'_>) -> SeedResult<ItemId> {
    Ok(match d.get_u8()? {
        0 => ItemId::Object(ObjectId(d.get_u64()?)),
        1 => ItemId::Relationship(RelationshipId(d.get_u64()?)),
        other => return Err(SeedError::Invalid(format!("unknown item tag {other}"))),
    })
}

// --------------------------------------------------------------------------------------------
// Version records
// --------------------------------------------------------------------------------------------

/// Encodes one `v/<vid>/<item>` delta snapshot.
pub(crate) fn encode_snapshot(snapshot: &ItemSnapshot) -> Vec<u8> {
    let mut e = Encoder::new();
    match snapshot {
        ItemSnapshot::Object(o) => {
            e.put_u8(0);
            encode_object(&mut e, o);
        }
        ItemSnapshot::Relationship(r) => {
            e.put_u8(1);
            encode_relationship(&mut e, r);
        }
    }
    e.finish()
}

/// Decodes a `v/<vid>/<item>` delta snapshot.
pub(crate) fn decode_snapshot(bytes: &[u8]) -> SeedResult<ItemSnapshot> {
    let mut d = Decoder::new(bytes);
    Ok(match d.get_u8()? {
        0 => ItemSnapshot::Object(decode_object(&mut d)?),
        1 => ItemSnapshot::Relationship(decode_relationship(&mut d)?),
        other => return Err(SeedError::Invalid(format!("unknown snapshot tag {other}"))),
    })
}

/// Encodes one `vi/<vid>` version-metadata record.
pub(crate) fn encode_version_info(info: &VersionInfo) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_str(&info.id.to_string());
    match &info.parent {
        Some(p) => {
            e.put_bool(true).put_str(&p.to_string());
        }
        None => {
            e.put_bool(false);
        }
    }
    e.put_u32(info.schema_version.0);
    e.put_str(&info.comment);
    e.put_u64(info.seq);
    e.put_varint(info.delta_size as u64);
    e.finish()
}

/// Decodes a `vi/<vid>` record.
pub(crate) fn decode_version_info(bytes: &[u8]) -> SeedResult<VersionInfo> {
    let mut d = Decoder::new(bytes);
    let id = VersionId::parse(d.get_str()?)?;
    let parent = if d.get_bool()? { Some(VersionId::parse(d.get_str()?)?) } else { None };
    let schema_version = SchemaVersionId(d.get_u32()?);
    let comment = d.get_str()?.to_string();
    let seq = d.get_u64()?;
    let delta_size = d.get_varint()? as usize;
    Ok(VersionInfo { id, parent, schema_version, comment, seq, delta_size })
}

// --------------------------------------------------------------------------------------------
// Transition rules and the meta record
// --------------------------------------------------------------------------------------------

pub(crate) fn encode_transition_rule(e: &mut Encoder, rule: &TransitionRule) {
    match rule {
        TransitionRule::NoDeletions => {
            e.put_u8(0);
        }
        TransitionRule::FrozenValues { class } => {
            e.put_u8(1).put_str(class);
        }
        TransitionRule::MonotonicValue { class } => {
            e.put_u8(2).put_str(class);
        }
        TransitionRule::MustDiffer => {
            e.put_u8(3);
        }
    }
}

pub(crate) fn decode_transition_rule(d: &mut Decoder<'_>) -> SeedResult<TransitionRule> {
    Ok(match d.get_u8()? {
        0 => TransitionRule::NoDeletions,
        1 => TransitionRule::FrozenValues { class: d.get_str()?.to_string() },
        2 => TransitionRule::MonotonicValue { class: d.get_str()?.to_string() },
        3 => TransitionRule::MustDiffer,
        other => return Err(SeedError::Invalid(format!("unknown transition-rule tag {other}"))),
    })
}

/// The small `meta` record: everything that is neither an item, a schema version nor a version
/// delta.  Rewritten on every durable commit (it is a few dozen bytes), which is what keeps the
/// id floors and the version sequence crash-consistent.
///
/// The trailing topology fields (`epoch`, `fenced_to`) were appended for replica promotion:
/// they are decoded leniently — a meta record written before the failover work simply ends
/// after `version_seq` and reads back as epoch 0, not fenced — so the on-disk format version
/// is unchanged and old directories open cleanly.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct MetaRecord {
    pub format: u32,
    pub object_floor: u64,
    pub relationship_floor: u64,
    pub current_schema: SchemaVersionId,
    pub rules: Vec<TransitionRule>,
    pub last_created: Option<VersionId>,
    pub version_seq: u64,
    /// Topology epoch: bumped by every promotion; the fencing tiebreaker.
    pub epoch: u64,
    /// When set, this store was fenced as primary: writes must be refused and redirected to
    /// the named address.  Persisted so a fenced primary that restarts *stays* fenced.
    pub fenced_to: Option<String>,
}

pub(crate) fn encode_meta(meta: &MetaRecord) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u32(meta.format);
    e.put_u64(meta.object_floor).put_u64(meta.relationship_floor);
    e.put_u32(meta.current_schema.0);
    e.put_varint(meta.rules.len() as u64);
    for rule in &meta.rules {
        encode_transition_rule(&mut e, rule);
    }
    match &meta.last_created {
        Some(v) => {
            e.put_bool(true).put_str(&v.to_string());
        }
        None => {
            e.put_bool(false);
        }
    }
    e.put_u64(meta.version_seq);
    e.put_u64(meta.epoch);
    match &meta.fenced_to {
        Some(addr) => {
            e.put_bool(true).put_str(addr);
        }
        None => {
            e.put_bool(false);
        }
    }
    e.finish()
}

pub(crate) fn decode_meta(bytes: &[u8]) -> SeedResult<MetaRecord> {
    let mut d = Decoder::new(bytes);
    let format = d.get_u32()?;
    if format != FORMAT_VERSION {
        return Err(SeedError::Invalid(format!(
            "unsupported database format {format} (this build reads format {FORMAT_VERSION})"
        )));
    }
    let object_floor = d.get_u64()?;
    let relationship_floor = d.get_u64()?;
    let current_schema = SchemaVersionId(d.get_u32()?);
    let rule_count = d.get_varint()? as usize;
    let mut rules = Vec::with_capacity(rule_count);
    for _ in 0..rule_count {
        rules.push(decode_transition_rule(&mut d)?);
    }
    let last_created = if d.get_bool()? { Some(VersionId::parse(d.get_str()?)?) } else { None };
    let version_seq = d.get_u64()?;
    // Topology fields appended by the failover work: absent on pre-promotion meta records.
    let epoch = if d.is_exhausted() { 0 } else { d.get_u64()? };
    let fenced_to =
        if d.is_exhausted() || !d.get_bool()? { None } else { Some(d.get_str()?.to_string()) };
    Ok(MetaRecord {
        format,
        object_floor,
        relationship_floor,
        current_schema,
        rules,
        last_created,
        version_seq,
        epoch,
        fenced_to,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use seed_schema::figure3_schema;

    #[test]
    fn schema_roundtrips_through_binary_encoding() {
        let schema = figure3_schema();
        let bytes = encode_schema_entry(&schema);
        assert_eq!(decode_schema_entry(&bytes).unwrap(), schema);
    }

    #[test]
    fn values_roundtrip() {
        let values = vec![
            Value::string("Alarms"),
            Value::Integer(-9),
            Value::Real(2.5),
            Value::Boolean(true),
            Value::date(1986, 2, 5).unwrap(),
            Value::symbol("repeat"),
            Value::text("long body"),
            Value::Undefined,
        ];
        for v in values {
            let mut e = Encoder::new();
            encode_value(&mut e, &v);
            let bytes = e.finish();
            let mut d = Decoder::new(&bytes);
            assert_eq!(decode_value(&mut d).unwrap(), v);
        }
    }

    #[test]
    fn object_entry_roundtrips_with_inherits_links() {
        let mut record =
            ObjectRecord::new(ObjectId(7), ClassId(2), ObjectName::parse("Alarms").unwrap(), None);
        record.value = Value::string("x");
        record.is_pattern = false;
        let inherits = vec![ObjectId(3), ObjectId(9)];
        let bytes = encode_object_entry(&record, &inherits);
        let (decoded, links) = decode_object_entry(&bytes).unwrap();
        assert_eq!(decoded, record);
        assert_eq!(links, inherits);
    }

    #[test]
    fn keys_sort_by_id_and_parse_back() {
        assert!(object_key(ObjectId(2)) < object_key(ObjectId(10)));
        assert!(object_key(ObjectId(255)) < object_key(ObjectId(256)));
        let vid = VersionId::parse("1.0.2").unwrap();
        let key = version_delta_key(&vid, ItemId::Object(ObjectId(77)));
        assert!(key.starts_with(&version_delta_prefix(&vid)));
        let (back_vid, back_item) = parse_version_delta_key(&key).unwrap();
        assert_eq!(back_vid, vid);
        assert_eq!(back_item, ItemId::Object(ObjectId(77)));
        let rkey = version_delta_key(&vid, ItemId::Relationship(RelationshipId(5)));
        assert_eq!(
            parse_version_delta_key(&rkey).unwrap().1,
            ItemId::Relationship(RelationshipId(5))
        );
        let dkey = dirty_key(ItemId::Relationship(RelationshipId(12)));
        assert_eq!(parse_dirty_key(&dkey).unwrap(), ItemId::Relationship(RelationshipId(12)));
        assert!(parse_dirty_key(b"d/x123").is_err());
        assert!(parse_version_delta_key(b"v/not-a-key").is_err());
    }

    #[test]
    fn version_info_roundtrips() {
        let info = VersionInfo {
            id: VersionId::parse("2.0").unwrap(),
            parent: Some(VersionId::parse("1.0").unwrap()),
            schema_version: SchemaVersionId(3),
            comment: "second release".to_string(),
            seq: 9,
            delta_size: 4,
        };
        assert_eq!(decode_version_info(&encode_version_info(&info)).unwrap(), info);
    }

    #[test]
    fn meta_roundtrips_and_rejects_unknown_format() {
        let meta = MetaRecord {
            format: FORMAT_VERSION,
            object_floor: 42,
            relationship_floor: 17,
            current_schema: SchemaVersionId(2),
            rules: vec![
                TransitionRule::NoDeletions,
                TransitionRule::FrozenValues { class: "Data".to_string() },
            ],
            last_created: Some(VersionId::parse("3.0").unwrap()),
            version_seq: 11,
            epoch: 3,
            fenced_to: Some("10.0.0.9:7044".to_string()),
        };
        assert_eq!(decode_meta(&encode_meta(&meta)).unwrap(), meta);
        let mut bad = meta.clone();
        bad.format = FORMAT_VERSION + 1;
        assert!(decode_meta(&encode_meta(&bad)).is_err());
    }

    #[test]
    fn meta_without_topology_fields_decodes_with_defaults() {
        // A pre-promotion meta record ends after version_seq; it must still open, reading
        // back as epoch 0 / not fenced.
        let meta = MetaRecord {
            format: FORMAT_VERSION,
            object_floor: 1,
            relationship_floor: 1,
            current_schema: SchemaVersionId(1),
            rules: vec![],
            last_created: None,
            version_seq: 0,
            epoch: 0,
            fenced_to: None,
        };
        let mut bytes = encode_meta(&meta);
        bytes.truncate(bytes.len() - 8 - 1); // drop epoch (u64) and the fenced_to flag
        let decoded = decode_meta(&bytes).unwrap();
        assert_eq!(decoded.epoch, 0);
        assert_eq!(decoded.fenced_to, None);
        assert_eq!(decoded.version_seq, 0);
    }
}
