//! Quickstart: define a schema, store vague information, make it precise, version it, query it.
//!
//! Run with `cargo run --example quickstart`.

use seed_core::{Database, Value};
use seed_query::run as query;
use seed_schema::{figure3_schema, validate_schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A schema: here the paper's Figure 3 schema (Thing ⊒ Data/Action, Access ⊒ Read/Write).
    let schema = figure3_schema();
    assert!(validate_schema(&schema).is_empty());
    println!(
        "schema '{}' with {} classes and {} associations",
        schema.name,
        schema.class_count(),
        schema.association_count()
    );

    // 2. A database over that schema.
    let mut db = Database::new(schema);

    // 3. Vague information first: "there is a thing called Alarms".
    let alarms = db.create_object("Thing", "Alarms")?;
    let sensor = db.create_object("Action", "Sensor")?;
    println!("created {} objects", db.object_count());

    // 4. Knowledge becomes more precise: Alarms is data, accessed by Sensor.
    db.reclassify_object(alarms, "Data")?;
    let access = db.create_relationship("Access", &[("from", alarms), ("by", sensor)])?;

    // 5. Fully precise: an output, written twice, writing repeated on error.
    db.reclassify_object(alarms, "OutputData")?;
    db.reclassify_relationship(access, "Write")?;
    db.set_relationship_attribute(access, "NumberOfWrites", Value::Integer(2))?;
    db.set_relationship_attribute(access, "ErrorHandling", Value::symbol("repeat"))?;

    // 6. Consistency is enforced on every update; completeness only on demand.
    let report = db.completeness_report();
    println!("completeness analysis: {} finding(s)", report.len());

    // 7. Preserve the state as version 1.0, keep working, compare later.
    let v1 = db.create_version("first cut")?;
    let desc = db.create_dependent(sensor, "Description", Value::string("Polls the sensors"))?;
    println!("current description: {}", db.value(desc));
    println!(
        "stored versions: {:?}",
        db.versions().iter().map(|v| v.id.to_string()).collect::<Vec<_>>()
    );

    // 8. Retrieval: by name (the prototype's interface) or with the query language extension.
    println!("by name: {}", db.object_by_name("Alarms")?.name);
    let writers = query(&db, r#"find Action navigate Write.by from "Alarms""#)?;
    println!("who writes Alarms? {:?}", writers.names());
    let _ = v1;
    Ok(())
}
