//! # seed-server
//!
//! The two-level multi-user extension sketched in the paper's *Open problems* section:
//!
//! > "One central server runs the complete database and several clients use the server for
//! > retrieval operations, but take local copies for making updates.  Data that has been copied
//! > to a client for update has a write lock in the central database.  When a client sends an
//! > updated copy back to the server, the server puts the modified data into the central
//! > database in a single transaction.  Versions are kept both locally and globally under
//! > control of the user and the server, respectively."
//!
//! The 1986 authors never built this; we implement it as an in-process simulation — a central
//! [`SeedServer`] owning one [`seed_core::Database`], clients talking to it either by direct
//! method call or over crossbeam channels from their own threads ([`server::ServerHandle`]).
//! The substitution preserves the behaviour of interest (write-lock discipline, single-
//! transaction check-in, conflict rejection, local + global version control) without requiring
//! a network substrate.

pub mod client;
pub mod error;
pub mod lock;
pub mod protocol;
pub mod server;

pub use client::ClientSession;
pub use error::{ServerError, ServerResult};
pub use lock::LockTable;
pub use protocol::{
    AssociationSummary, CheckoutSet, ClassSummary, ClientId, HealthStatus, PersistenceStatus,
    PromotionReceipt, QueryAnswer, RelationshipInfo, ReplicationRole, ReplicationStatus, Request,
    Response, SchemaSummary, Update,
};
pub use server::{Promoter, SeedServer, ServerHandle, DEFAULT_HEALTH_LAG_BUDGET};
