//! Fixed-size slotted pages.
//!
//! A page stores variable-length records behind a slot directory so that records can be moved
//! during compaction without invalidating their slot numbers.  Layout (offsets in bytes):
//!
//! ```text
//! 0..8    page id
//! 8..16   page LSN (last WAL record that touched this page)
//! 16..18  slot count
//! 18..20  free-space pointer (offset of the first free byte after the slot directory grows up,
//!         record heap grows down from PAGE_SIZE)
//! 20..24  reserved
//! 24..    slot directory: 4 bytes per slot (u16 offset, u16 length); offset 0 means "deleted"
//! ...     free space
//! ...PAGE_SIZE  record heap (grows downward)
//! ```

use crate::error::{StorageError, StorageResult};

/// Size of every page in bytes.
pub const PAGE_SIZE: usize = 8192;

/// Size of the fixed page header.
pub const PAGE_HEADER_SIZE: usize = 24;

/// Bytes used by one slot directory entry.
pub const SLOT_SIZE: usize = 4;

/// Largest record that can be stored in a single page.
pub const MAX_RECORD_SIZE: usize = PAGE_SIZE - PAGE_HEADER_SIZE - SLOT_SIZE;

/// Identifier of a page within a page store.
pub type PageId = u64;

/// A single fixed-size page with a slotted record layout.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("id", &self.id())
            .field("lsn", &self.lsn())
            .field("slots", &self.slot_count())
            .field("free", &self.free_space())
            .finish()
    }
}

impl Page {
    /// Creates an empty, formatted page with the given id.
    pub fn new(id: PageId) -> Self {
        let mut page = Self { data: Box::new([0u8; PAGE_SIZE]) };
        page.set_id(id);
        page.set_lsn(0);
        page.set_slot_count(0);
        page.set_heap_start(PAGE_SIZE as u16);
        page
    }

    /// Reconstructs a page from raw bytes (e.g. read from disk).
    pub fn from_bytes(bytes: &[u8]) -> StorageResult<Self> {
        if bytes.len() != PAGE_SIZE {
            return Err(StorageError::Corrupt(format!(
                "page must be {PAGE_SIZE} bytes, got {}",
                bytes.len()
            )));
        }
        let mut data = Box::new([0u8; PAGE_SIZE]);
        data.copy_from_slice(bytes);
        let page = Self { data };
        // Sanity-check the header so corrupt pages are detected at read time.
        let slots = page.slot_count() as usize;
        if PAGE_HEADER_SIZE + slots * SLOT_SIZE > PAGE_SIZE {
            return Err(StorageError::Corrupt(format!(
                "slot count {slots} does not fit into a page"
            )));
        }
        if (page.heap_start() as usize) > PAGE_SIZE {
            return Err(StorageError::Corrupt("heap start beyond page end".to_string()));
        }
        Ok(page)
    }

    /// Raw bytes of the page.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data[..]
    }

    fn read_u64(&self, at: usize) -> u64 {
        u64::from_le_bytes(self.data[at..at + 8].try_into().expect("fixed slice"))
    }

    fn write_u64(&mut self, at: usize, v: u64) {
        self.data[at..at + 8].copy_from_slice(&v.to_le_bytes());
    }

    fn read_u16(&self, at: usize) -> u16 {
        u16::from_le_bytes(self.data[at..at + 2].try_into().expect("fixed slice"))
    }

    fn write_u16(&mut self, at: usize, v: u16) {
        self.data[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Page id stored in the header.
    pub fn id(&self) -> PageId {
        self.read_u64(0)
    }

    fn set_id(&mut self, id: PageId) {
        self.write_u64(0, id);
    }

    /// LSN of the last WAL record applied to this page.
    pub fn lsn(&self) -> u64 {
        self.read_u64(8)
    }

    /// Updates the page LSN.
    pub fn set_lsn(&mut self, lsn: u64) {
        self.write_u64(8, lsn);
    }

    /// Number of slots in the slot directory (including deleted ones).
    pub fn slot_count(&self) -> u16 {
        self.read_u16(16)
    }

    fn set_slot_count(&mut self, n: u16) {
        self.write_u16(16, n);
    }

    fn heap_start(&self) -> u16 {
        self.read_u16(18)
    }

    fn set_heap_start(&mut self, v: u16) {
        self.write_u16(18, v);
    }

    fn slot_dir_end(&self) -> usize {
        PAGE_HEADER_SIZE + self.slot_count() as usize * SLOT_SIZE
    }

    fn slot_entry(&self, slot: u16) -> (u16, u16) {
        let at = PAGE_HEADER_SIZE + slot as usize * SLOT_SIZE;
        (self.read_u16(at), self.read_u16(at + 2))
    }

    fn set_slot_entry(&mut self, slot: u16, offset: u16, len: u16) {
        let at = PAGE_HEADER_SIZE + slot as usize * SLOT_SIZE;
        self.write_u16(at, offset);
        self.write_u16(at + 2, len);
    }

    /// Contiguous free bytes between the slot directory and the record heap.
    pub fn free_space(&self) -> usize {
        self.heap_start() as usize - self.slot_dir_end()
    }

    /// Free bytes that would become available after compaction (includes holes left by
    /// deleted or shrunk records).
    pub fn reclaimable_space(&self) -> usize {
        let live: usize = self.live_slots().map(|(_, len)| len as usize).sum();
        PAGE_SIZE - self.slot_dir_end() - live
    }

    /// Number of live (non-deleted) records in the page.
    pub fn live_record_count(&self) -> usize {
        self.live_slots().count()
    }

    fn live_slots(&self) -> impl Iterator<Item = (u16, u16)> + '_ {
        (0..self.slot_count()).filter_map(move |s| {
            let (off, len) = self.slot_entry(s);
            if off == 0 {
                None
            } else {
                Some((s, len))
            }
        })
    }

    /// Inserts a record, returning its slot number.
    ///
    /// Compacts the page first if the contiguous free region is too small but enough
    /// reclaimable space exists.
    pub fn insert(&mut self, record: &[u8]) -> StorageResult<u16> {
        if record.len() > MAX_RECORD_SIZE {
            return Err(StorageError::RecordTooLarge { size: record.len(), max: MAX_RECORD_SIZE });
        }
        let needed = record.len() + SLOT_SIZE;
        if self.free_space() < needed {
            if self.reclaimable_space() >= needed {
                self.compact();
            }
            if self.free_space() < needed {
                return Err(StorageError::PageFull {
                    page: self.id(),
                    needed,
                    free: self.free_space(),
                });
            }
        }
        // Reuse a deleted slot if one exists, otherwise append a new one.
        let slot =
            (0..self.slot_count()).find(|&s| self.slot_entry(s).0 == 0).unwrap_or_else(|| {
                let s = self.slot_count();
                self.set_slot_count(s + 1);
                self.set_slot_entry(s, 0, 0);
                s
            });
        // After possibly growing the directory the free space may have shrunk by SLOT_SIZE;
        // re-check before writing the payload.
        if self.free_space() < record.len() {
            self.compact();
            if self.free_space() < record.len() {
                return Err(StorageError::PageFull {
                    page: self.id(),
                    needed: record.len(),
                    free: self.free_space(),
                });
            }
        }
        let new_heap = self.heap_start() as usize - record.len();
        self.data[new_heap..new_heap + record.len()].copy_from_slice(record);
        self.set_heap_start(new_heap as u16);
        self.set_slot_entry(slot, new_heap as u16, record.len() as u16);
        Ok(slot)
    }

    /// Returns the record stored in `slot`.
    pub fn get(&self, slot: u16) -> StorageResult<&[u8]> {
        if slot >= self.slot_count() {
            return Err(StorageError::RecordNotFound { page: self.id(), slot });
        }
        let (off, len) = self.slot_entry(slot);
        if off == 0 {
            return Err(StorageError::RecordNotFound { page: self.id(), slot });
        }
        Ok(&self.data[off as usize..off as usize + len as usize])
    }

    /// Deletes the record in `slot`, leaving the slot reusable.
    pub fn delete(&mut self, slot: u16) -> StorageResult<()> {
        if slot >= self.slot_count() || self.slot_entry(slot).0 == 0 {
            return Err(StorageError::RecordNotFound { page: self.id(), slot });
        }
        self.set_slot_entry(slot, 0, 0);
        Ok(())
    }

    /// Replaces the record in `slot` with `record`, compacting or failing if it does not fit.
    pub fn update(&mut self, slot: u16, record: &[u8]) -> StorageResult<()> {
        if slot >= self.slot_count() || self.slot_entry(slot).0 == 0 {
            return Err(StorageError::RecordNotFound { page: self.id(), slot });
        }
        if record.len() > MAX_RECORD_SIZE {
            return Err(StorageError::RecordTooLarge { size: record.len(), max: MAX_RECORD_SIZE });
        }
        let (off, len) = self.slot_entry(slot);
        if record.len() <= len as usize {
            // Overwrite in place; the tail of the old record becomes a hole reclaimed later.
            let off = off as usize;
            self.data[off..off + record.len()].copy_from_slice(record);
            self.set_slot_entry(slot, off as u16, record.len() as u16);
            return Ok(());
        }
        // Need a fresh area: logically delete, then insert into the same slot.
        self.set_slot_entry(slot, 0, 0);
        if self.free_space() < record.len() {
            if self.reclaimable_space() >= record.len() {
                self.compact();
            }
            if self.free_space() < record.len() {
                // Restore the old entry so the caller still sees the previous value.
                self.set_slot_entry(slot, off, len);
                return Err(StorageError::PageFull {
                    page: self.id(),
                    needed: record.len(),
                    free: self.free_space(),
                });
            }
        }
        let new_heap = self.heap_start() as usize - record.len();
        self.data[new_heap..new_heap + record.len()].copy_from_slice(record);
        self.set_heap_start(new_heap as u16);
        self.set_slot_entry(slot, new_heap as u16, record.len() as u16);
        Ok(())
    }

    /// Iterates over `(slot, record)` pairs for live records.
    pub fn records(&self) -> impl Iterator<Item = (u16, &[u8])> + '_ {
        (0..self.slot_count()).filter_map(move |s| {
            let (off, len) = self.slot_entry(s);
            if off == 0 {
                None
            } else {
                Some((s, &self.data[off as usize..off as usize + len as usize]))
            }
        })
    }

    /// Rewrites the record heap to remove holes left by deletions and shrinking updates.
    pub fn compact(&mut self) {
        let live: Vec<(u16, Vec<u8>)> =
            self.records().map(|(slot, rec)| (slot, rec.to_vec())).collect();
        // Clear the heap and re-insert from the top.
        let mut heap = PAGE_SIZE;
        for (slot, rec) in &live {
            heap -= rec.len();
            self.data[heap..heap + rec.len()].copy_from_slice(rec);
            self.set_slot_entry(*slot, heap as u16, rec.len() as u16);
        }
        self.set_heap_start(heap as u16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_page_is_empty() {
        let p = Page::new(7);
        assert_eq!(p.id(), 7);
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.live_record_count(), 0);
        assert_eq!(p.free_space(), PAGE_SIZE - PAGE_HEADER_SIZE);
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut p = Page::new(1);
        let s1 = p.insert(b"hello").unwrap();
        let s2 = p.insert(b"world!").unwrap();
        assert_ne!(s1, s2);
        assert_eq!(p.get(s1).unwrap(), b"hello");
        assert_eq!(p.get(s2).unwrap(), b"world!");
        assert_eq!(p.live_record_count(), 2);
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let mut p = Page::new(1);
        let s1 = p.insert(b"alpha").unwrap();
        let _s2 = p.insert(b"beta").unwrap();
        p.delete(s1).unwrap();
        assert!(p.get(s1).is_err());
        let s3 = p.insert(b"gamma").unwrap();
        assert_eq!(s3, s1, "deleted slot should be reused");
        assert_eq!(p.get(s3).unwrap(), b"gamma");
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut p = Page::new(1);
        let s = p.insert(b"short").unwrap();
        p.update(s, b"tiny").unwrap();
        assert_eq!(p.get(s).unwrap(), b"tiny");
        p.update(s, b"a considerably longer record body").unwrap();
        assert_eq!(p.get(s).unwrap(), b"a considerably longer record body");
    }

    #[test]
    fn record_too_large_rejected() {
        let mut p = Page::new(1);
        let huge = vec![0u8; PAGE_SIZE];
        assert!(matches!(p.insert(&huge), Err(StorageError::RecordTooLarge { .. })));
    }

    #[test]
    fn page_fills_up_then_rejects() {
        let mut p = Page::new(1);
        let rec = vec![0xAAu8; 1000];
        let mut inserted = 0;
        loop {
            match p.insert(&rec) {
                Ok(_) => inserted += 1,
                Err(StorageError::PageFull { .. }) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(inserted >= 7, "expected at least 7 x 1000-byte records, got {inserted}");
        assert_eq!(p.live_record_count(), inserted);
    }

    #[test]
    fn compaction_reclaims_deleted_space() {
        let mut p = Page::new(1);
        let rec = vec![0x55u8; 1500];
        let mut slots = Vec::new();
        while let Ok(s) = p.insert(&rec) {
            slots.push(s);
        }
        // Delete every other record, then insert a large record that only fits after compaction.
        for s in slots.iter().step_by(2) {
            p.delete(*s).unwrap();
        }
        let big = vec![0x77u8; 2000];
        let s = p.insert(&big).expect("compaction should make room");
        assert_eq!(p.get(s).unwrap(), &big[..]);
    }

    #[test]
    fn compaction_preserves_contents() {
        let mut p = Page::new(1);
        let s1 = p.insert(b"one").unwrap();
        let s2 = p.insert(b"two").unwrap();
        let s3 = p.insert(b"three").unwrap();
        p.delete(s2).unwrap();
        p.compact();
        assert_eq!(p.get(s1).unwrap(), b"one");
        assert_eq!(p.get(s3).unwrap(), b"three");
        assert!(p.get(s2).is_err());
    }

    #[test]
    fn from_bytes_roundtrip() {
        let mut p = Page::new(42);
        p.insert(b"persisted").unwrap();
        p.set_lsn(99);
        let bytes = p.as_bytes().to_vec();
        let q = Page::from_bytes(&bytes).unwrap();
        assert_eq!(q.id(), 42);
        assert_eq!(q.lsn(), 99);
        assert_eq!(q.get(0).unwrap(), b"persisted");
    }

    #[test]
    fn from_bytes_rejects_wrong_length_and_corrupt_header() {
        assert!(Page::from_bytes(&[0u8; 10]).is_err());
        let mut bytes = vec![0u8; PAGE_SIZE];
        // Absurd slot count.
        bytes[16] = 0xFF;
        bytes[17] = 0xFF;
        assert!(Page::from_bytes(&bytes).is_err());
    }

    #[test]
    fn get_on_out_of_range_slot_errors() {
        let p = Page::new(1);
        assert!(p.get(0).is_err());
        assert!(p.get(100).is_err());
    }

    #[test]
    fn update_missing_slot_errors() {
        let mut p = Page::new(1);
        assert!(p.update(0, b"x").is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    /// Operations mirror a model HashMap<slot, Vec<u8>>; the page must agree with the model.
    #[derive(Debug, Clone)]
    enum Op {
        Insert(Vec<u8>),
        Delete(usize),
        Update(usize, Vec<u8>),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            proptest::collection::vec(any::<u8>(), 0..300).prop_map(Op::Insert),
            any::<usize>().prop_map(Op::Delete),
            (any::<usize>(), proptest::collection::vec(any::<u8>(), 0..300))
                .prop_map(|(i, d)| Op::Update(i, d)),
        ]
    }

    proptest! {
        #[test]
        fn page_matches_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
            let mut page = Page::new(1);
            let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
            let mut known_slots: Vec<u16> = Vec::new();
            for op in ops {
                match op {
                    Op::Insert(data) => {
                        if let Ok(slot) = page.insert(&data) {
                            model.insert(slot, data);
                            if !known_slots.contains(&slot) {
                                known_slots.push(slot);
                            }
                        }
                    }
                    Op::Delete(i) => {
                        if known_slots.is_empty() { continue; }
                        let slot = known_slots[i % known_slots.len()];
                        let in_model = model.remove(&slot).is_some();
                        let res = page.delete(slot);
                        prop_assert_eq!(res.is_ok(), in_model);
                    }
                    Op::Update(i, data) => {
                        if known_slots.is_empty() { continue; }
                        let slot = known_slots[i % known_slots.len()];
                        if let std::collections::hash_map::Entry::Occupied(mut e) = model.entry(slot) {
                            if page.update(slot, &data).is_ok() {
                                e.insert(data);
                            }
                        } else {
                            prop_assert!(page.update(slot, &data).is_err());
                        }
                    }
                }
                // Invariant: every model entry is readable and equal.
                for (slot, data) in &model {
                    prop_assert_eq!(page.get(*slot).unwrap(), data.as_slice());
                }
                prop_assert_eq!(page.live_record_count(), model.len());
            }
        }
    }
}
