//! Figure 4 of the paper, executable: versions 1.0, 2.0 and Current of the AlarmHandler
//! structure, reconstructed views, history navigation and an alternative.
//!
//! Run with `cargo run --example design_versions`.

use seed_core::{Database, NameSegment, Value, VersionId};
use seed_schema::figure3_schema;

fn show(db: &Database, label: &str) -> Result<(), Box<dyn std::error::Error>> {
    println!("--- {label} ------------------------------------------------");
    match db.object_by_name("AlarmHandler.Description") {
        Ok(desc) => println!("AlarmHandler.Description = {}", desc.value),
        Err(_) => println!("AlarmHandler.Description does not exist in this version"),
    }
    match db.object_by_name("AlarmHandler.Revised") {
        Ok(rev) => println!("AlarmHandler.Revised     = {}", rev.value),
        Err(_) => println!("AlarmHandler.Revised     does not exist in this version"),
    }
    match db.object_by_name("OperatorAlert") {
        Ok(_) => println!("OperatorAlert exists"),
        Err(_) => println!("OperatorAlert does not exist in this version"),
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new(figure3_schema());

    // Version 1.0: AlarmHandler "Handles alarms", revised 1985.
    let handler = db.create_object("Action", "AlarmHandler")?;
    let desc = db.create_dependent_named(
        handler,
        "Description",
        NameSegment::plain("Description"),
        Value::string("Handles alarms"),
    )?;
    let revised = db.create_dependent_named(
        handler,
        "Revised",
        NameSegment::plain("Revised"),
        Value::date(1985, 6, 1).unwrap(),
    )?;
    let process = db.create_object("InputData", "ProcessData")?;
    db.create_relationship("Read", &[("from", process), ("by", handler)])?;
    let v10 = db.create_version("document finished")?;
    println!("created version {v10}");

    // Version 2.0: the description is revised.
    db.set_value(desc, Value::string("Handles alarms derived from ProcessData"))?;
    db.set_value(revised, Value::date(1985, 11, 20).unwrap())?;
    let v20 = db.create_version("after review")?;
    println!("created version {v20}");

    // Current: further work, a new object appears (like Figure 4b's richer current state).
    db.set_value(
        desc,
        Value::string("Generates alarms from process data, triggers Operator Alert"),
    )?;
    db.set_value(revised, Value::date(1986, 2, 5).unwrap())?;
    db.create_object("Action", "OperatorAlert")?;

    // The three views of Figure 4: Current (4b), 2.0 and 1.0 (4c).
    show(&db, "Current version (Figure 4b)")?;
    db.select_version(Some(v20.clone()))?;
    show(&db, "Version 2.0")?;
    db.select_version(Some(v10.clone()))?;
    show(&db, "Version 1.0 (Figure 4c)")?;
    db.select_version(None)?;

    // History retrieval: "find all versions of object 'AlarmHandler', beginning with version 2.0".
    println!("--- history of AlarmHandler.Description, beginning with 2.0 ---");
    for (version, record) in db.versions_of_object(desc, Some(&VersionId::parse("2.0")?)) {
        println!("  {version}: {}", record.value);
    }
    println!();

    // Alternatives: branch from 1.0, explore, file it as 1.0.1, return to the current version.
    println!("--- exploring an alternative based on 1.0 -------------------");
    db.checkout_alternative(v10.clone())?;
    db.set_value(desc, Value::string("Alternative: alarms handled by a dedicated coprocessor"))?;
    let alt = db.create_version("coprocessor alternative")?;
    db.return_to_current()?;
    println!("alternative filed as {alt}; current work is untouched:");
    show(&db, "Current version after the excursion")?;

    println!("version tree:");
    for info in db.versions() {
        let parent = info.parent.as_ref().map(|p| p.to_string()).unwrap_or_else(|| "-".into());
        println!(
            "  {}  (parent {}, {} changed items) {}",
            info.id, parent, info.delta_size, info.comment
        );
    }
    Ok(())
}
