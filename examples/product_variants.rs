//! Figure 5 of the paper, executable: patterns, inheritance, and a variants family.
//!
//! "An example of variants is a set of system configurations that share most of the software
//! modules, but differ in some hardware dependent modules."  The common part is connected to
//! pattern objects by pattern relationships; every variant inherits those patterns and therefore
//! has the same relationships to the common part.
//!
//! Run with `cargo run --example product_variants`.

use seed_core::{Database, Value, VariantFamily};
use seed_schema::{Cardinality, SchemaBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small configuration-management schema: modules, configurations, and a 'Uses'
    // relationship between configurations and modules.
    let schema = SchemaBuilder::new("Configurations")
        .class("Module", |c| {
            c.dependent("Deadline", Cardinality::optional(), Some(seed_schema::Domain::String))
        })
        .class("Configuration", |c| c)
        .association("Uses", "component", "Module", "0..*", "in", "Configuration", "0..*", |a| a)
        .build()?;
    let mut db = Database::new(schema);

    // The common part: modules every configuration shares.
    let kernel = db.create_object("Module", "Kernel")?;
    let scheduler = db.create_object("Module", "Scheduler")?;

    // Pattern objects PO1/PO2 stand for "whatever configuration inherits me"; the pattern
    // relationships PR1/PR2 connect them to the common part.
    let po1 = db.create_pattern_object("Configuration", "PO1")?;
    let po2 = db.create_pattern_object("Configuration", "PO2")?;
    db.create_pattern_relationship("Uses", &[("component", kernel), ("in", po1)])?;
    db.create_pattern_relationship("Uses", &[("component", scheduler), ("in", po2)])?;

    // Variant parts: two hardware-specific configurations; both inherit the patterns.
    let variant_a = db.create_object("Configuration", "ConfigVAX")?;
    let variant_b = db.create_object("Configuration", "ConfigM68k")?;
    for v in [variant_a, variant_b] {
        db.inherit_pattern(v, po1)?;
        db.inherit_pattern(v, po2)?;
    }
    // Each variant also has its own hardware-dependent module.
    let vax_driver = db.create_object("Module", "VaxDriver")?;
    let m68k_driver = db.create_object("Module", "M68kDriver")?;
    db.create_relationship("Uses", &[("component", vax_driver), ("in", variant_a)])?;
    db.create_relationship("Uses", &[("component", m68k_driver), ("in", variant_b)])?;

    let mut family = VariantFamily::new("AlarmSystemConfigurations");
    family.common_part.extend([kernel, scheduler]);
    family.patterns.extend([po1, po2]);
    family.variants.insert("VAX".into(), vec![variant_a]);
    family.variants.insert("M68k".into(), vec![variant_b]);
    assert!(family.check_uniform_inheritance(db.store()).is_empty());

    for (variant, id) in [("ConfigVAX", variant_a), ("ConfigM68k", variant_b)] {
        println!("{variant} uses:");
        for module in db.related(id, "Uses", "in", "component")? {
            println!("    {}", module.name);
        }
    }

    // "pattern information cannot be updated in the context of the inheritors, but only in the
    // pattern itself.  Conversely, any update of a pattern automatically propagates."
    println!();
    println!("--- pattern semantics ---------------------------------------");
    let pr1 = db.relationships(variant_a).into_iter().find(|r| r.is_inherited()).unwrap().record.id;
    match db.assert_updatable_in_context(variant_a, pr1) {
        Err(e) => println!("updating inherited information in ConfigVAX is rejected: {e}"),
        Ok(()) => println!("BUG: inherited information was updatable"),
    }

    // A shared deadline managed through a pattern: changing the pattern changes every inheritor.
    let deadline_pattern = db.create_pattern_object("Module", "StandardDeadline")?;
    db.create_dependent(deadline_pattern, "Deadline", Value::string("1986-06-30"))?;
    db.inherit_pattern(vax_driver, deadline_pattern)?;
    db.inherit_pattern(m68k_driver, deadline_pattern)?;
    for driver in [vax_driver, m68k_driver] {
        let children = db.children(driver);
        let inherited_deadline = children
            .iter()
            .find(|c| c.inherited_from.is_some())
            .map(|c| c.record.value.clone())
            .unwrap_or(Value::Undefined);
        println!("{} deadline (inherited): {}", db.object(driver)?.name, inherited_deadline);
    }
    Ok(())
}
